"""Benchmark scripts for the LBTrust reproduction.

Each module registers its workloads with :mod:`repro.bench` at import
time (the ``repro bench`` CLI imports this whole package to discover
them) and stays runnable standalone::

    python benchmarks/bench_fig2_auth_overhead.py --quick
    python benchmarks/fig2_sweep.py          # the original table output

The pytest-benchmark entry points remain for interactive use
(``pytest benchmarks/ --benchmark-only``); CI and perf PRs use
``repro bench`` for machine-readable artifacts.  pytest itself is an
optional dependency: scripts import it through :func:`optional_pytest`
so ``repro bench`` works in a bare ``pip install -e .`` environment.
"""


def optional_pytest():
    """The real pytest module, or a stub whose ``mark.benchmark`` is a
    no-op decorator (enough for the module-level marks in bench_*.py)."""
    try:
        import pytest
        return pytest
    except ImportError:  # bare runtime install: harness-only usage
        class _Mark:
            @staticmethod
            def benchmark(**_kwargs):
                def decorate(func):
                    return func
                return decorate

        class _PytestStub:
            mark = _Mark()

        return _PytestStub()
