"""A9 — async overlap: BSP barriers vs overlapped scheduling.

The PR-4 tentpole workload: the *same* distributed reachability program
under the unified runtime's two scheduling modes.  ``bsp`` closes a
global barrier every round — the whole cluster waits for its slowest
link; ``async`` re-enters semi-naive at each node the moment a delta
batch arrives.  One deliberately slow link makes the difference visible
on the virtual clock: the barrier pays the slow link every round, the
overlapped scheduler only on the chains that actually cross it.

Figures of merit:

* ``bsp_rounds`` / ``async_depth`` — virtual-clock rounds: BSP's round
  count *is* its causal depth, so depth-to-rounds is the apples-to-apples
  comparison; the acceptance bar is ``async_depth <= bsp_rounds``;
* ``bsp_convergence`` / ``async_convergence`` — virtual time at which
  each mode went quiet (async must not be later);
* ``bsp_elapsed`` vs the measured wall time of the async run;
* ``fixpoint_equal`` — bit-identical union-of-shards, every time.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import random
from time import perf_counter

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.cluster import Cluster, Partitioner
from repro.net.network import SimulatedNetwork

REACHABILITY = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""

#: One link is this much slower than the rest: the barrier scheduler
#: pays it every round, the overlapped scheduler only per crossing chain.
SLOW_LINK_LATENCY = 4.0


def build_cluster(nodes, vertices, mode, degree=2, seed=7):
    names = [f"node{i}" for i in range(nodes)]
    partitioner = Partitioner(names)
    partitioner.hash_partition("edge", column=0)
    partitioner.hash_partition("reach", column=1)
    network = SimulatedNetwork(default_latency=1.0)
    for name in names:
        network.add_node(name)
    if nodes > 1:
        network.set_latency(names[0], names[1], SLOW_LINK_LATENCY)
    cluster = Cluster(names, network=network, partitioner=partitioner,
                      mode=mode)
    cluster.load(REACHABILITY)
    rng = random.Random(seed)
    for v in range(vertices):
        for t in rng.sample(range(vertices), degree):
            if t != v:
                cluster.assert_fact("edge", (v, t))
    return cluster


@benchmark("async_overlap", group="cluster",
           quick=[{"nodes": n, "vertices": 36} for n in (2, 4)],
           full=[{"nodes": n, "vertices": 120} for n in (2, 4, 8)])
def async_overlap(case, nodes, vertices):
    """Same fixpoint, two schedulers: barrier rounds vs overlapped."""
    bsp = build_cluster(nodes, vertices, "bsp")
    started = perf_counter()
    bsp_report = bsp.run()
    bsp_elapsed = perf_counter() - started
    bsp_fixpoint = bsp.tuples("reach")

    overlapped = build_cluster(nodes, vertices, "async")
    for node in overlapped.nodes.values():
        case.watch(node.stats)
    with case.measure():
        async_report = overlapped.run()
    case.record(
        nodes=nodes,
        fixpoint_equal=overlapped.tuples("reach") == bsp_fixpoint,
        reach_facts=len(bsp_fixpoint),
        bsp_rounds=bsp_report.rounds,
        bsp_depth=bsp_report.depth,
        bsp_convergence=bsp_report.convergence_time,
        bsp_messages=bsp_report.messages,
        bsp_elapsed=bsp_elapsed,
        async_depth=async_report.depth,
        async_convergence=async_report.convergence_time,
        async_messages=async_report.messages,
        overlap_round_win=bsp_report.rounds - async_report.depth,
        overlap_clock_win=bsp_report.convergence_time
        - async_report.convergence_time,
    )


def _bench(benchmark, nodes, mode, vertices=36):
    def setup():
        return (build_cluster(nodes, vertices, mode),), {}

    def target(cluster):
        cluster.run()

    benchmark.pedantic(target, setup=setup, rounds=2, iterations=1)


@pytest.mark.benchmark(group="async-overlap")
def test_overlap_bsp_4(benchmark):
    _bench(benchmark, 4, "bsp")


@pytest.mark.benchmark(group="async-overlap")
def test_overlap_async_4(benchmark):
    _bench(benchmark, 4, "async")


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
