"""A8 — cluster shard scaling: distributed reachability on 1/2/4/8 nodes.

The PR-3 tentpole workload: hash-partitioned transitive closure where
the recursive join is co-located by placement (``edge`` sharded by
source, ``reach`` by destination) and every derived ``reach`` fact ships
to its owner in a batched, round-stamped delta message.  The figures of
merit besides wall time:

* ``max_node_derivations`` — the per-shard load, which must *decrease*
  as nodes are added while ``reach_facts`` (the fixpoint) stays exactly
  the single-node value;
* ``messages`` / ``bytes`` — batched traffic (one size-capped envelope
  per node pair per round);
* ``virtual_time`` — convergence time on the simulated network's clock.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import random

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.cluster import Cluster, Partitioner

REACHABILITY = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""


def build_cluster(nodes, vertices, degree=2, seed=7):
    names = [f"node{i}" for i in range(nodes)]
    partitioner = Partitioner(names)
    # edge sharded by source, reach by *destination*: the recursive join
    # reach(X,Y), edge(Y,Z) is then co-located at owner(Y), and each
    # derived reach(X,Z) is emitted to owner(Z).
    partitioner.hash_partition("edge", column=0)
    partitioner.hash_partition("reach", column=1)
    cluster = Cluster(names, partitioner=partitioner)
    cluster.load(REACHABILITY)
    rng = random.Random(seed)
    for v in range(vertices):
        for t in rng.sample(range(vertices), degree):
            if t != v:
                cluster.assert_fact("edge", (v, t))
    return cluster


@benchmark("cluster_shard_scaling", group="cluster",
           quick=[{"nodes": n, "vertices": 48} for n in (1, 2, 4)],
           full=[{"nodes": n, "vertices": 150} for n in (1, 2, 4, 8)])
def cluster_shard_scaling(case, nodes, vertices):
    """Distributed TC to quiescence: per-node load vs cluster size."""
    cluster = build_cluster(nodes, vertices)
    for node in cluster.nodes.values():
        case.watch(node.stats)
    with case.measure():
        report = cluster.run()
    case.record(
        nodes=nodes,
        rounds=report.rounds,
        messages=report.messages,
        batched_facts=report.batched_facts,
        bytes=report.bytes,
        virtual_time=report.virtual_time,
        convergence_time=report.convergence_time,
        reach_facts=len(cluster.tuples("reach")),
        max_node_derivations=report.max_node_derivations(),
        per_node_derivations=[n.derivations for n in report.per_node],
    )


def _bench(benchmark, nodes, vertices=48):
    def setup():
        return (build_cluster(nodes, vertices),), {}

    def target(cluster):
        cluster.run()

    benchmark.pedantic(target, setup=setup, rounds=2, iterations=1)


@pytest.mark.benchmark(group="cluster-shard-scaling")
def test_cluster_1(benchmark):
    _bench(benchmark, 1)


@pytest.mark.benchmark(group="cluster-shard-scaling")
def test_cluster_2(benchmark):
    _bench(benchmark, 2)


@pytest.mark.benchmark(group="cluster-shard-scaling")
def test_cluster_4(benchmark):
    _bench(benchmark, 4)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
