"""A6 — crypto micro-benchmarks: the constant factors behind Figure 2.

Per-operation sign/verify cost for 1024-bit RSA and HMAC-SHA1 over the
same canonical rule text.  The RSA/HMAC per-message gap here should
account for (most of) the scheme gap measured in E1.
"""

import pytest

from repro.crypto import rsa
from repro.crypto.hmac_sha1 import hmac_sha1, verify_hmac_sha1

MESSAGE = b'access("carol","report.txt","read").'
KEY_1024 = rsa.generate_keypair(1024, seed=3)
SECRET = b"s" * 32


@pytest.mark.benchmark(group="crypto-sign")
def test_rsa_1024_sign(benchmark):
    benchmark(rsa.sign, MESSAGE, KEY_1024)


@pytest.mark.benchmark(group="crypto-sign")
def test_hmac_sha1_sign(benchmark):
    benchmark(hmac_sha1, SECRET, MESSAGE)


@pytest.mark.benchmark(group="crypto-verify")
def test_rsa_1024_verify(benchmark):
    signature = rsa.sign(MESSAGE, KEY_1024)
    public = KEY_1024.public()
    result = benchmark(rsa.verify, MESSAGE, signature, public)
    assert result


@pytest.mark.benchmark(group="crypto-verify")
def test_hmac_sha1_verify(benchmark):
    tag = hmac_sha1(SECRET, MESSAGE)
    result = benchmark(verify_hmac_sha1, SECRET, MESSAGE, tag)
    assert result


@pytest.mark.benchmark(group="crypto-keygen")
def test_rsa_1024_keygen(benchmark):
    counter = iter(range(10_000))

    def generate():
        return rsa.generate_keypair(1024, seed=next(counter))

    benchmark.pedantic(generate, rounds=3, iterations=1)
