"""A6 — crypto micro-benchmarks: the constant factors behind Figure 2.

Per-operation sign/verify cost for RSA and HMAC-SHA1 over the same
canonical rule text.  The RSA/HMAC per-message gap here should account
for (most of) the scheme gap measured in E1.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.crypto import rsa
from repro.crypto.hmac_sha1 import hmac_sha1, verify_hmac_sha1

MESSAGE = b'access("carol","report.txt","read").'
SECRET = b"s" * 32

_KEYS: dict = {}


def rsa_key(bits: int = 1024):
    """Seeded keypair, generated lazily so importing this module is cheap."""
    key = _KEYS.get(bits)
    if key is None:
        key = _KEYS[bits] = rsa.generate_keypair(bits, seed=3)
    return key


@benchmark("crypto_primitives", group="crypto",
           quick=[{"op": "hmac_sign", "iterations": 200},
                  {"op": "hmac_verify", "iterations": 200},
                  {"op": "rsa_sign", "rsa_bits": 512, "iterations": 5},
                  {"op": "rsa_verify", "rsa_bits": 512, "iterations": 20}],
           full=[{"op": "hmac_sign", "iterations": 2000},
                 {"op": "hmac_verify", "iterations": 2000},
                 {"op": "rsa_sign", "rsa_bits": 1024, "iterations": 10},
                 {"op": "rsa_verify", "rsa_bits": 1024, "iterations": 50}])
def crypto_primitives(case, op, iterations, rsa_bits=1024):
    """Per-operation sign/verify cost under each authentication scheme."""
    if op.startswith("rsa"):
        key = rsa_key(rsa_bits)
        signature = rsa.sign(MESSAGE, key)
        public = key.public()
        if op == "rsa_sign":
            def step():
                rsa.sign(MESSAGE, key)
        else:
            def step():
                assert rsa.verify(MESSAGE, signature, public)
    else:
        tag = hmac_sha1(SECRET, MESSAGE)
        if op == "hmac_sign":
            def step():
                hmac_sha1(SECRET, MESSAGE)
        else:
            def step():
                assert verify_hmac_sha1(SECRET, MESSAGE, tag)
    with case.measure():
        for _ in range(iterations):
            step()
    case.record(per_op_us=case.elapsed / iterations * 1e6)


@pytest.mark.benchmark(group="crypto-sign")
def test_rsa_1024_sign(benchmark):
    benchmark(rsa.sign, MESSAGE, rsa_key(1024))


@pytest.mark.benchmark(group="crypto-sign")
def test_hmac_sha1_sign(benchmark):
    benchmark(hmac_sha1, SECRET, MESSAGE)


@pytest.mark.benchmark(group="crypto-verify")
def test_rsa_1024_verify(benchmark):
    key = rsa_key(1024)
    signature = rsa.sign(MESSAGE, key)
    public = key.public()
    result = benchmark(rsa.verify, MESSAGE, signature, public)
    assert result


@pytest.mark.benchmark(group="crypto-verify")
def test_hmac_sha1_verify(benchmark):
    tag = hmac_sha1(SECRET, MESSAGE)
    result = benchmark(verify_hmac_sha1, SECRET, MESSAGE, tag)
    assert result


@pytest.mark.benchmark(group="crypto-keygen")
def test_rsa_1024_keygen(benchmark):
    counter = iter(range(10_000))

    def generate():
        return rsa.generate_keypair(1024, seed=next(counter))

    benchmark.pedantic(generate, rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
