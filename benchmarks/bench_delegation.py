"""A4 — ablation: delegation machinery cost vs chain depth.

Measures setting up a delegation chain of length N with depth budgets:
every hop triggers del1 code generation, dd2b budget inference, and a
says-propagated budget message — the full meta-programming path.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro import LBTrustSystem
from repro.bench import benchmark

CHAIN = 6


def build_chain(length):
    system = LBTrustSystem(auth="plaintext", seed=9, delegation=True)
    principals = [system.create_principal(f"p{i}") for i in range(length + 1)]
    for principal in principals:
        principal.load("perm(A) -> string(A).")
    return system, principals


def run_chain(system, principals):
    for i in range(len(principals) - 1):
        principals[i].delegate(principals[i + 1].name, "perm",
                               depth=len(principals) - 2 - i)
        system.run()
    # the last link's budget must be 0
    last = principals[-1]
    assert any(row[3] == 0 for row in last.tuples("inferredDelDepth"))


@benchmark("delegation_chain", group="delegation",
           quick=[{"length": 3}],
           full=[{"length": 3}, {"length": CHAIN}])
def delegation_chain(case, length):
    """Full meta-programming path: delegate hop-by-hop with depth budgets."""
    system, principals = build_chain(length)
    for principal in principals:
        case.watch(principal.workspace.stats)
    with case.measure():
        run_chain(system, principals)
    case.record(hops=length)


@pytest.mark.benchmark(group="delegation-chain")
def test_delegation_chain(benchmark):
    def setup():
        return (build_chain(CHAIN),), {}

    def target(args):
        system, principals = args
        run_chain(system, principals)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="delegation-chain")
def test_delegated_fact_flow(benchmark):
    """After a chain exists: cost of one delegated verdict flowing up."""
    def setup():
        system, principals = build_chain(2)
        principals[0].delegate(principals[1].name, "perm")
        system.run()
        return (system, principals), {}

    def target(system, principals):
        principals[1].says(principals[0].name, 'perm("subject").')
        system.run()
        assert ("subject",) in principals[0].tuples("perm")

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
