"""A1 — ablation: naive vs semi-naive evaluation (section 3.1).

LogicBlox "utilizes a bottom-up semi-naive fixpoint execution model"; this
bench quantifies why, on transitive closure over chain and grid graphs.
Semi-naive avoids re-deriving old facts each round, turning the quadratic
re-derivation blowup into work linear in the output.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.naive import evaluate_naive
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."
RULES = [s for s in parse_statements(TC) if isinstance(s, Rule)]

CHAIN = 60
GRID = 8


def chain_db(size: int = None) -> Database:
    db = Database()
    for i in range(size if size is not None else CHAIN):
        db.add("e", (i, i + 1))
    return db


def grid_db(size: int = None) -> Database:
    size = size if size is not None else GRID
    db = Database()
    for x in range(size):
        for y in range(size):
            if x + 1 < size:
                db.add("e", ((x, y), (x + 1, y)))
            if y + 1 < size:
                db.add("e", ((x, y), (x, y + 1)))
    return db


@benchmark("eval_strategies", group="engine",
           quick=[{"strategy": "seminaive", "graph": "chain", "size": 40},
                  {"strategy": "naive", "graph": "chain", "size": 40}],
           full=[{"strategy": "seminaive", "graph": "chain", "size": CHAIN},
                 {"strategy": "naive", "graph": "chain", "size": CHAIN},
                 {"strategy": "seminaive", "graph": "grid", "size": GRID},
                 {"strategy": "naive", "graph": "grid", "size": GRID}])
def eval_strategies(case, strategy, graph, size):
    """Naive vs semi-naive transitive closure (section 3.1 ablation)."""
    evaluator = evaluate if strategy == "seminaive" else evaluate_naive
    db = chain_db(size) if graph == "chain" else grid_db(size)
    context = EvalContext(stats=case.stats)
    with case.measure():
        evaluator(RULES, db, context, stats=case.stats)
    case.record(closure_size=len(db.tuples("r")))


def _run(benchmark, evaluator, make_db):
    def setup():
        return (make_db(),), {}

    def target(db):
        evaluator(RULES, db, EvalContext())

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="eval-chain")
def test_seminaive_chain(benchmark):
    _run(benchmark, evaluate, chain_db)


@pytest.mark.benchmark(group="eval-chain")
def test_naive_chain(benchmark):
    _run(benchmark, evaluate_naive, chain_db)


@pytest.mark.benchmark(group="eval-grid")
def test_seminaive_grid(benchmark):
    _run(benchmark, evaluate, grid_db)


@pytest.mark.benchmark(group="eval-grid")
def test_naive_grid(benchmark):
    _run(benchmark, evaluate_naive, grid_db)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
