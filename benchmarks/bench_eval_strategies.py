"""A1 — ablation: naive vs semi-naive evaluation (section 3.1).

LogicBlox "utilizes a bottom-up semi-naive fixpoint execution model"; this
bench quantifies why, on transitive closure over chain and grid graphs.
Semi-naive avoids re-deriving old facts each round, turning the quadratic
re-derivation blowup into work linear in the output.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.naive import evaluate_naive
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."
RULES = [s for s in parse_statements(TC) if isinstance(s, Rule)]

CHAIN = 60
GRID = 8


def chain_db() -> Database:
    db = Database()
    for i in range(CHAIN):
        db.add("e", (i, i + 1))
    return db


def grid_db() -> Database:
    db = Database()
    for x in range(GRID):
        for y in range(GRID):
            if x + 1 < GRID:
                db.add("e", ((x, y), (x + 1, y)))
            if y + 1 < GRID:
                db.add("e", ((x, y), (x, y + 1)))
    return db


def _run(benchmark, evaluator, make_db):
    def setup():
        return (make_db(),), {}

    def target(db):
        evaluator(RULES, db, EvalContext())

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="eval-chain")
def test_seminaive_chain(benchmark):
    _run(benchmark, evaluate, chain_db)


@pytest.mark.benchmark(group="eval-chain")
def test_naive_chain(benchmark):
    _run(benchmark, evaluate_naive, chain_db)


@pytest.mark.benchmark(group="eval-grid")
def test_seminaive_grid(benchmark):
    _run(benchmark, evaluate, grid_db)


@pytest.mark.benchmark(group="eval-grid")
def test_naive_grid(benchmark):
    _run(benchmark, evaluate_naive, grid_db)
