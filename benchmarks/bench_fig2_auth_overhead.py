"""E1 — the paper's Figure 2: execution time vs authentication scheme.

Paper setup: two principals export and import authenticated facts from
each other's context; each message costs one signature generation and one
verification.  The paper reports (at 10k messages, on 2009 hardware)
roughly 300s for RSA, with HMAC a slight increase over Plaintext.

These pytest-benchmark points fix k = LBTRUST_BENCH_MESSAGES (default
100) per direction and compare schemes; ``fig2_sweep.py`` regenerates the
full series over k.  The *shape* claims under test:

* RSA ≫ HMAC > Plaintext per message,
* HMAC is only a slight increase over Plaintext,
* time grows linearly in the number of messages.
"""

import pytest

from .workloads import BENCH_MESSAGES, make_fig2_system, run_fig2_exchange


def _bench(benchmark, auth):
    def setup():
        return make_fig2_system(auth), {}

    def target(system, alice, bob):
        run_fig2_exchange(system, alice, bob, BENCH_MESSAGES)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig2-auth-overhead")
def test_fig2_plaintext(benchmark):
    _bench(benchmark, "plaintext")


@pytest.mark.benchmark(group="fig2-auth-overhead")
def test_fig2_hmac(benchmark):
    _bench(benchmark, "hmac")


@pytest.mark.benchmark(group="fig2-auth-overhead")
def test_fig2_rsa(benchmark):
    _bench(benchmark, "rsa")
