"""E1 — the paper's Figure 2: execution time vs authentication scheme.

Paper setup: two principals export and import authenticated facts from
each other's context; each message costs one signature generation and one
verification.  The paper reports (at 10k messages, on 2009 hardware)
roughly 300s for RSA, with HMAC a slight increase over Plaintext.

These pytest-benchmark points fix k = LBTRUST_BENCH_MESSAGES (default
100) per direction and compare schemes; ``fig2_sweep.py`` regenerates the
full series over k.  The *shape* claims under test:

* RSA ≫ HMAC > Plaintext per message,
* HMAC is only a slight increase over Plaintext,
* time grows linearly in the number of messages.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks import optional_pytest

pytest = optional_pytest()

from benchmarks.workloads import (
    BENCH_MESSAGES,
    make_fig2_system,
    run_fig2_exchange,
)
from repro.bench import benchmark as bench_workload


@bench_workload("fig2_auth_overhead", group="fig2-auth-overhead",
                quick=[{"auth": "plaintext", "k": 25},
                       {"auth": "hmac", "k": 25},
                       {"auth": "rsa", "k": 10, "rsa_bits": 512}],
                full=[{"auth": "plaintext", "k": BENCH_MESSAGES},
                      {"auth": "hmac", "k": BENCH_MESSAGES},
                      {"auth": "rsa", "k": BENCH_MESSAGES}])
def fig2_auth_overhead(case, auth, k, rsa_bits=None):
    """The paper's Figure 2 point: k signed+verified messages per direction."""
    system, alice, bob = make_fig2_system(auth, rsa_bits)
    case.watch(alice.workspace.stats)
    case.watch(bob.workspace.stats)
    with case.measure():
        run_fig2_exchange(system, alice, bob, k)
    case.record(messages=2 * k, per_message_us=case.elapsed / (2 * k) * 1e6)


def _bench(benchmark, auth):
    def setup():
        return make_fig2_system(auth), {}

    def target(system, alice, bob):
        run_fig2_exchange(system, alice, bob, BENCH_MESSAGES)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig2-auth-overhead")
def test_fig2_plaintext(benchmark):
    _bench(benchmark, "plaintext")


@pytest.mark.benchmark(group="fig2-auth-overhead")
def test_fig2_hmac(benchmark):
    _bench(benchmark, "hmac")


@pytest.mark.benchmark(group="fig2-auth-overhead")
def test_fig2_rsa(benchmark):
    _bench(benchmark, "rsa")


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
