"""A3 — ablation: incremental maintenance vs recompute-from-scratch.

"When predicate data is modified, the active rules are incrementally
recomputed" (section 3.1).  Workload: maintain transitive closure while a
stream of edges arrives; the incremental path pays per-delta, the
recompute path pays the whole fixpoint on every change.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import evaluate, normalize_rules, propagate_insertions
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.stratify import stratify
from repro.datalog.terms import Rule

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."
RULES = normalize_rules([s for s in parse_statements(TC) if isinstance(s, Rule)])

BASE = 40       # pre-existing chain length
STREAM = 15     # edges arriving one at a time


def base_edges():
    return [(i, i + 1) for i in range(BASE)]


def stream_edges():
    return [(BASE + i, BASE + i + 1) for i in range(STREAM)]


@pytest.mark.benchmark(group="incremental-stream")
def test_incremental_insertions(benchmark):
    def setup():
        db = Database()
        for edge in base_edges():
            db.add("e", edge)
        context = EvalContext()
        evaluate(RULES, db, context)
        return (db, context, stratify(RULES)), {}

    def target(db, context, strata):
        for edge in stream_edges():
            db.add("e", edge)
            propagate_insertions(strata, db, context, {"e": {edge}},
                                 edb_facts=lambda p: set())

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="incremental-stream")
def test_recompute_from_scratch(benchmark):
    def setup():
        edges = list(base_edges())
        return (edges,), {}

    def target(edges):
        context = EvalContext()
        for edge in stream_edges():
            edges.append(edge)
            db = Database()
            for e in edges:
                db.add("e", e)
            evaluate(RULES, db, context)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)
