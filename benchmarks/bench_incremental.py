"""A3 — ablation: incremental maintenance vs recompute-from-scratch.

"When predicate data is modified, the active rules are incrementally
recomputed" (section 3.1).  Workload: maintain transitive closure while a
stream of edges arrives; the incremental path pays per-delta, the
recompute path pays the whole fixpoint on every change.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.datalog.database import Database
from repro.datalog.engine import evaluate, normalize_rules, propagate_insertions
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.stratify import stratify
from repro.datalog.terms import Rule

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- r(X,Y), e(Y,Z)."
RULES = normalize_rules([s for s in parse_statements(TC) if isinstance(s, Rule)])

BASE = 40       # pre-existing chain length
STREAM = 15     # edges arriving one at a time


def base_edges(base=None):
    return [(i, i + 1) for i in range(base if base is not None else BASE)]


def stream_edges(base=None, stream=None):
    base = base if base is not None else BASE
    stream = stream if stream is not None else STREAM
    return [(base + i, base + i + 1) for i in range(stream)]


@benchmark("incremental_maintenance", group="engine",
           quick=[{"mode": "incremental", "base": 30, "stream": 10},
                  {"mode": "recompute", "base": 30, "stream": 10}],
           full=[{"mode": "incremental", "base": BASE, "stream": STREAM},
                 {"mode": "recompute", "base": BASE, "stream": STREAM}])
def incremental_maintenance(case, mode, base, stream):
    """Per-delta maintenance vs whole-fixpoint recompute on an edge stream."""
    if mode == "incremental":
        db = Database()
        for edge in base_edges(base):
            db.add("e", edge)
        # Setup fixpoint runs on a stats-free context so the recorded
        # counters cover only the measured propagation below.
        evaluate(RULES, db, EvalContext())
        context = EvalContext(stats=case.stats)
        strata = stratify(RULES)
        with case.measure():
            for edge in stream_edges(base, stream):
                db.add("e", edge)
                propagate_insertions(strata, db, context, {"e": {edge}},
                                     edb_facts=lambda p: set(),
                                     stats=case.stats)
        case.record(closure_size=len(db.tuples("r")))
    else:
        edges = list(base_edges(base))
        context = EvalContext(stats=case.stats)
        with case.measure():
            for edge in stream_edges(base, stream):
                edges.append(edge)
                db = Database()
                for e in edges:
                    db.add("e", e)
                evaluate(RULES, db, context, stats=case.stats)
        case.record(closure_size=len(db.tuples("r")))


@pytest.mark.benchmark(group="incremental-stream")
def test_incremental_insertions(benchmark):
    def setup():
        db = Database()
        for edge in base_edges():
            db.add("e", edge)
        context = EvalContext()
        evaluate(RULES, db, context)
        return (db, context, stratify(RULES)), {}

    def target(db, context, strata):
        for edge in stream_edges():
            db.add("e", edge)
            propagate_insertions(strata, db, context, {"e": {edge}},
                                 edb_facts=lambda p: set())

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="incremental-stream")
def test_recompute_from_scratch(benchmark):
    def setup():
        edges = list(base_edges())
        return (edges,), {}

    def target(edges):
        context = EvalContext()
        for edge in stream_edges():
            edges.append(edge)
            db = Database()
            for e in edges:
                db.add("e", e)
            evaluate(RULES, db, context)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
