"""Join microbenchmark: interned id-space joins vs value-tuple joins.

The storage layer interns every ground term to a dense int id at the
relation boundary, so the hot join path hashes and compares small ints
instead of heterogeneous value tuples (clorm's join benchmarks make the
same comparison for its indexed ASP fact bases).  This workload isolates
that effect on a single equijoin

    out(K, X, Y) <- left(K, X), right(K, Y).

sweeping fact count x key selectivity x join machinery.  The first three
modes run the *same* kernel — build/fetch a hash index on the join
column, probe it per outer row, emit with a novelty check — so the only
variable is the storage representation and index availability:

* ``id_indexed``   — the engine's actual structures: interned id rows
  (:class:`Relation`) probed through ``Relation.index_for`` id buckets;
* ``value_hash``   — the identical kernel over raw value tuples with a
  dict-of-lists index (what the join cost before interning);
* ``value_scan``   — the no-index straw man: nested-loop over value
  tuples, what every join degrades to without an index.

``engine`` runs the full evaluator end-to-end (parse-time plan, flat
join core, relation store-back, value materialization at the boundary)
for pipeline context; it pays the id<->value boundary once, which a
single non-recursive join cannot amortize — the fixpoint workloads
(``eval_strategies``) show where that trade wins.

``selectivity`` is the distinct-key fraction: ``keys = max(1, n *
selectivity)``, so small values mean fat buckets (many matches per
probe) and large values mean selective probes that mostly miss.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import random

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule

JOIN = "out(K,X,Y) <- left(K,X), right(K,Y)."
RULES = [s for s in parse_statements(JOIN) if isinstance(s, Rule)]

SEED = 11


def build_sides(n: int, selectivity: float) -> tuple[list, list]:
    """Two n-fact relations joined on a key column drawn from a domain
    of ``n * selectivity`` distinct values.

    Join keys are compound principal-style terms (the shape LBTrust
    predicates actually carry), built fresh per row the way parsed or
    wire-decoded facts arrive: value-tuple joins hash and compare the
    whole structure on every probe, while interned storage collapses
    each distinct key to one dense int at load time.
    """
    keys = max(1, int(n * selectivity))
    rng = random.Random(SEED)

    def key(i: int) -> tuple:
        return ("principal", f"p{i}.example.org")

    left = [(key(rng.randrange(keys)), f"l{i}") for i in range(n)]
    right = [(key(rng.randrange(keys)), f"r{i}") for i in range(n)]
    return left, right


def loaded_db(left: list, right: list) -> Database:
    db = Database()
    for fact in left:
        db.add("left", fact)
    for fact in right:
        db.add("right", fact)
    return db


def join_kernel(rows0, bucket_get, existing: set) -> set:
    """The shared probe-and-emit loop: one index probe per outer row,
    novelty check per solution — the flat join core's inner shape,
    representation-agnostic (rows may hold interned ids or raw values)."""
    produced = set()
    for row0 in rows0:
        bucket = bucket_get(row0[0])
        if bucket is None:
            continue
        key, left_term = row0
        for row1 in bucket:
            out = (key, left_term, row1[1])
            if out not in existing:
                produced.add(out)
    return produced


_SWEEP = [(n, selectivity)
          for n in (1000, 4000) for selectivity in (0.01, 0.1, 0.5)]


# value_scan is O(n^2) whatever the selectivity, so it sweeps smaller
# fact counts than the indexed modes — its axis is index availability,
# not scale.
@benchmark("join_micro", group="engine", warmup=2, repeats=7,
           quick=[{"mode": "id_indexed", "n": 2000, "selectivity": 0.1},
                  {"mode": "value_hash", "n": 2000, "selectivity": 0.1},
                  {"mode": "value_scan", "n": 1000, "selectivity": 0.1},
                  {"mode": "engine", "n": 2000, "selectivity": 0.1}],
           full=[{"mode": mode, "n": n, "selectivity": selectivity}
                 for mode in ("id_indexed", "value_hash")
                 for n, selectivity in _SWEEP]
                + [{"mode": "value_scan", "n": n, "selectivity": 0.1}
                   for n in (1000, 2000)]
                + [{"mode": "engine", "n": 4000, "selectivity": 0.1}])
def join_micro(case, mode, n, selectivity):
    """Single equijoin: id-space indexed vs value-tuple hash/scan joins."""
    left, right = build_sides(n, selectivity)
    if mode == "id_indexed":
        db = loaded_db(left, right)          # interning is load-time work
        rows0 = db.rel("left").rows
        relation1 = db.rel("right")
        with case.measure():                 # index built on first use
            produced = join_kernel(rows0, relation1.index_for((0,)).get,
                                   set())
        out_size = len(produced)
    elif mode == "value_hash":
        rows0, rows1 = set(left), set(right)
        with case.measure():
            index: dict = {}
            for row in rows1:
                bucket = index.get(row[0])
                if bucket is None:
                    index[row[0]] = [row]
                else:
                    bucket.append(row)
            produced = join_kernel(rows0, index.get, set())
        out_size = len(produced)
    elif mode == "value_scan":
        rows0, rows1 = set(left), set(right)
        with case.measure():
            produced = set()
            for k, x in rows0:
                for k2, y in rows1:
                    if k == k2:
                        produced.add((k, x, y))
        out_size = len(produced)
    elif mode == "engine":
        db = loaded_db(left, right)
        context = EvalContext(stats=case.stats)
        with case.measure():
            evaluate(RULES, db, context, stats=case.stats)
        out_size = len(db.tuples("out"))
    else:  # pragma: no cover - registry passes only the params above
        raise ValueError(f"unknown mode {mode!r}")
    case.record(result_size=out_size,
                distinct_keys=max(1, int(n * selectivity)))


@pytest.mark.benchmark(group="join-micro")
def test_join_micro_id_indexed(benchmark):
    left, right = build_sides(1000, 0.1)

    def setup():
        return (loaded_db(left, right),), {}

    def target(db):
        evaluate(RULES, db, EvalContext())

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
