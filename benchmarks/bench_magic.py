"""A2 — ablation: the section 7 optimizer conjecture.

"Magic-sets can potentially bridge the top-down evaluation approach used
in access control, versus the typical bottom-up continuous evaluation."

Workload: a selective point query reach("n0", X) over a random graph with
a large component irrelevant to the query.  Full bottom-up computes
everything; magic-sets and tabled top-down only touch what the query
needs.
"""

import random

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.magic import query_magic
from repro.datalog.parser import parse_atom, parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule
from repro.datalog.topdown import query_topdown

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- e(X,Y), r(Y,Z)."
RULES = [s for s in parse_statements(TC) if isinstance(s, Rule)]
QUERY = parse_atom('r("q0",X)')

RELEVANT = 30      # nodes reachable from the query source
IRRELEVANT = 400   # nodes in a component the query never touches


def make_db() -> Database:
    rng = random.Random(5)
    db = Database()
    for i in range(RELEVANT - 1):
        db.add("e", (f"q{i}", f"q{i + 1}"))
    irrelevant = [f"x{i}" for i in range(IRRELEVANT)]
    for _ in range(IRRELEVANT * 3):
        db.add("e", (rng.choice(irrelevant), rng.choice(irrelevant)))
    return db


@pytest.mark.benchmark(group="magic-point-query")
def test_full_bottomup(benchmark):
    def setup():
        return (make_db(),), {}

    def target(db):
        evaluate(RULES, db, EvalContext())
        return {t for t in db.tuples("r") if t[0] == "q0"}

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="magic-point-query")
def test_magic_sets(benchmark):
    def setup():
        return (make_db(),), {}

    def target(db):
        return query_magic(RULES, db, QUERY)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="magic-point-query")
def test_tabled_topdown(benchmark):
    def setup():
        return (make_db(),), {}

    def target(db):
        return query_topdown(RULES, db, QUERY)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)
