"""A2 — ablation: the section 7 optimizer conjecture.

"Magic-sets can potentially bridge the top-down evaluation approach used
in access control, versus the typical bottom-up continuous evaluation."

Workload: a selective point query reach("n0", X) over a random graph with
a large component irrelevant to the query.  Full bottom-up computes
everything; magic-sets and tabled top-down only touch what the query
needs.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import random

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.magic import query_magic
from repro.datalog.parser import parse_atom, parse_statements
from repro.datalog.runtime import EvalContext
from repro.datalog.terms import Rule
from repro.datalog.topdown import query_topdown

TC = "r(X,Y) <- e(X,Y). r(X,Z) <- e(X,Y), r(Y,Z)."
RULES = [s for s in parse_statements(TC) if isinstance(s, Rule)]
QUERY = parse_atom('r("q0",X)')

RELEVANT = 30      # nodes reachable from the query source
IRRELEVANT = 400   # nodes in a component the query never touches


def make_db(relevant=None, irrelevant=None) -> Database:
    relevant = relevant if relevant is not None else RELEVANT
    irrelevant = irrelevant if irrelevant is not None else IRRELEVANT
    rng = random.Random(5)
    db = Database()
    for i in range(relevant - 1):
        db.add("e", (f"q{i}", f"q{i + 1}"))
    nodes = [f"x{i}" for i in range(irrelevant)]
    for _ in range(irrelevant * 3):
        db.add("e", (rng.choice(nodes), rng.choice(nodes)))
    return db


@benchmark("magic_point_query", group="engine",
           quick=[{"strategy": "bottomup", "relevant": 20, "irrelevant": 150},
                  {"strategy": "magic", "relevant": 20, "irrelevant": 150},
                  {"strategy": "topdown", "relevant": 20, "irrelevant": 150}],
           full=[{"strategy": "bottomup", "relevant": RELEVANT,
                  "irrelevant": IRRELEVANT},
                 {"strategy": "magic", "relevant": RELEVANT,
                  "irrelevant": IRRELEVANT},
                 {"strategy": "topdown", "relevant": RELEVANT,
                  "irrelevant": IRRELEVANT}])
def magic_point_query(case, strategy, relevant, irrelevant):
    """Selective point query: full bottom-up vs magic-sets vs tabled top-down."""
    db = make_db(relevant, irrelevant)
    with case.measure():
        if strategy == "bottomup":
            evaluate(RULES, db, EvalContext(stats=case.stats),
                     stats=case.stats)
            answers = {t for t in db.tuples("r") if t[0] == "q0"}
        elif strategy == "magic":
            answers = query_magic(RULES, db, QUERY)
        else:
            answers = query_topdown(RULES, db, QUERY)
    case.record(answers=len(answers))


@pytest.mark.benchmark(group="magic-point-query")
def test_full_bottomup(benchmark):
    def setup():
        return (make_db(),), {}

    def target(db):
        evaluate(RULES, db, EvalContext())
        return {t for t in db.tuples("r") if t[0] == "q0"}

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="magic-point-query")
def test_magic_sets(benchmark):
    def setup():
        return (make_db(),), {}

    def target(db):
        return query_magic(RULES, db, QUERY)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="magic-point-query")
def test_tabled_topdown(benchmark):
    def setup():
        return (make_db(),), {}

    def target(db):
        return query_topdown(RULES, db, QUERY)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
