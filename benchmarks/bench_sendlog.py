"""A7 — SeNDlog convergence: messages and virtual time vs network size.

The section 5.2 reachability protocol on rings of growing size; reports
wall time through pytest-benchmark, and the messages/virtual-time scaling
is printed by ``sendlog_scaling.py`` for EXPERIMENTS.md.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro import LBTrustSystem
from repro.bench import benchmark
from repro.languages.sendlog import install_sendlog

REACHABILITY = """
At S:
s1: reachable(S,D) :- neighbor(S,D).
s1b: reachable(S,D)@S :- neighbor(S,D).
s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
"""


def build_ring(size, auth="hmac"):
    system = LBTrustSystem(auth=auth, seed=11)
    names = [f"n{i}" for i in range(size)]
    principals = {n: system.create_principal(n) for n in names}
    install_sendlog(system, REACHABILITY)
    for i in range(size):
        a, b = names[i], names[(i + 1) % size]
        principals[a].assert_fact("neighbor", (a, b))
        principals[b].assert_fact("neighbor", (b, a))
    return system, principals


def converge(system, principals):
    system.run(max_rounds=80)
    size = len(principals)
    for name, principal in principals.items():
        reached = {d for (s, d) in principal.tuples("reachable") if s == name}
        assert len(reached | {name}) == size


@benchmark("sendlog_ring", group="sendlog",
           quick=[{"size": 4}],
           full=[{"size": 4}, {"size": 6}, {"size": 8}])
def sendlog_ring(case, size):
    """SeNDlog reachability to convergence on an hmac-authenticated ring."""
    system, principals = build_ring(size)
    for principal in principals.values():
        case.watch(principal.workspace.stats)
    with case.measure():
        converge(system, principals)
    case.record(messages=system.network.total.messages,
                bytes=system.network.total.bytes)


def _bench(benchmark, size):
    def setup():
        return (build_ring(size),), {}

    def target(args):
        system, principals = args
        converge(system, principals)

    benchmark.pedantic(target, setup=setup, rounds=2, iterations=1)


@pytest.mark.benchmark(group="sendlog-ring")
def test_ring_4(benchmark):
    _bench(benchmark, 4)


@pytest.mark.benchmark(group="sendlog-ring")
def test_ring_6(benchmark):
    _bench(benchmark, 6)


@pytest.mark.benchmark(group="sendlog-ring")
def test_ring_8(benchmark):
    _bench(benchmark, 8)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
