"""A10 — serve latency: point requests against the online service.

Everything else in this suite measures *batch* throughput: build a
workload, run to fixpoint, stop the clock.  This workload measures the
PR-6 serving plane the way SAFE-style deployments are judged — per-request
latency under a sustained update:query mix:

* N client connections round-robin requests against one long-lived
  :class:`TrustServer` (open-loop pacing to a target QPS on the socket
  transport; the simulated transport runs unpaced — its clock is virtual);
* updates alternate assert/retract so every cycle exercises semi-naive
  insertion *and* DRed deletion maintenance;
* queries reuse one binding shape, so after the first request the
  magic-program cache answers them (``magic_cache_hits`` in the watched
  stats);
* recorded metrics: ``p50_ms`` / ``p99_ms`` per-request latency, achieved
  ``qps``, and the update/query split.  The CI compare gate checks
  ``p99_ms`` in addition to best-of-N wall time, so serve-latency
  regressions fail the build like throughput regressions do.

Client calls are synchronous RPCs driven from one thread — the "N
clients" are N live connections with interleaved traffic, not N OS
threads; that keeps the measurement free of GIL scheduling noise.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import threading
import time

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.core.system import LBTrustSystem
from repro.net import SimulatedNetwork, SocketNetwork
from repro.serve import ServeClient, ServeRouter, TrustServer
from repro.serve.cli import POLICY, SERVE_PRINCIPAL
from repro.serve.metrics import latency_summary


def parse_mix(mix: str) -> tuple:
    """``"1:4"`` → one update then four queries per request cycle."""
    updates, queries = (int(part) for part in mix.split(":"))
    return updates, queries


def build_served_system(auth: str = "plaintext") -> LBTrustSystem:
    system = LBTrustSystem(auth=auth, seed=7)
    system.create_principal(SERVE_PRINCIPAL).load(POLICY)
    return system


def drive(clients, requests, mix, qps, paced) -> dict:
    """Round-robin ``requests`` calls over the client connections.

    Per client, updates alternate assert (a fresh subject) and retract
    (the subject just asserted); queries probe the latest live subject
    with a constant binding shape.  Returns the latency summary dict.
    """
    update_slots, query_slots = parse_mix(mix)
    cycle = update_slots + query_slots
    asserted = [0] * len(clients)  # per-client next subject ordinal
    live = [None] * len(clients)   # per-client retractable subject
    latencies = []
    updates = queries = 0
    started = time.monotonic()
    for j in range(requests):
        client = clients[j % len(clients)]
        index = j % len(clients)
        if paced and qps > 0:
            scheduled = started + j / qps
            delay = scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        begin = time.monotonic()
        if j % cycle < update_slots:
            if live[index] is None:
                subject = f"u{index}_{asserted[index]}"
                asserted[index] += 1
                client.assert_fact("good", (subject,))
                live[index] = subject
            else:
                client.retract_fact("good", (live[index],))
                live[index] = None
            updates += 1
        else:
            subject = live[index] or f"u{index}_{max(asserted[index] - 1, 0)}"
            client.query(f'access("{subject}",O,"read")')
            queries += 1
        latencies.append(time.monotonic() - begin)
    elapsed = time.monotonic() - started
    summary = latency_summary(latencies, elapsed)
    summary["updates"] = updates
    summary["queries"] = queries
    return summary


_QUICK = [
    {"transport": "simulated", "clients": 2, "qps": 0, "mix": "1:3",
     "requests": 120},
    {"transport": "socket", "clients": 2, "qps": 500, "mix": "1:3",
     "requests": 120},
]
_FULL = [
    {"transport": "simulated", "clients": 4, "qps": 0, "mix": "1:3",
     "requests": 600},
    {"transport": "socket", "clients": 4, "qps": 500, "mix": "1:3",
     "requests": 600},
    {"transport": "socket", "clients": 4, "qps": 500, "mix": "3:1",
     "requests": 600},
]


@benchmark("serve_latency", group="serve", quick=_QUICK, full=_FULL)
def serve_latency(case, transport, clients, qps, mix, requests):
    """Per-request p50/p99 latency of the online authorization service."""
    system = build_served_system()
    workspace = system.principal(SERVE_PRINCIPAL).workspace
    case.watch(workspace.stats)
    if transport == "socket":
        server_net = SocketNetwork()
        server = TrustServer(system, server_net, poll_interval=0.005)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server_net.port_of(server.node)
        nets = [SocketNetwork() for _ in range(clients)]
        conns = [ServeClient(net, f"client{i}", timeout=30.0)
                 for i, net in enumerate(nets)]
        try:
            for conn in conns:
                conn.connect(server_host="127.0.0.1", server_port=port)
            with case.measure():
                summary = drive(conns, requests, mix, qps, paced=True)
            conns[0].shutdown()
            thread.join(timeout=30.0)
        finally:
            for net in nets:
                net.close()
            server_net.close()
    else:
        network = SimulatedNetwork()
        server = TrustServer(system, network)
        router = ServeRouter(network, server)
        conns = [ServeClient(network, f"client{i}", router=router,
                             timeout=30.0) for i in range(clients)]
        for conn in conns:
            conn.connect()
        with case.measure():
            summary = drive(conns, requests, mix, qps, paced=False)
        conns[0].shutdown()
    case.record(
        transport=transport,
        clients=clients,
        target_qps=qps,
        mix=mix,
        p50_ms=round(summary["p50_ms"], 4),
        p99_ms=round(summary["p99_ms"], 4),
        qps=round(summary["qps"], 2),
        requests=summary["requests"],
        updates=summary["updates"],
        queries=summary["queries"],
    )


def _bench(benchmark, transport, clients=2, requests=60):
    def setup():
        system = build_served_system()
        network = SimulatedNetwork()
        server = TrustServer(system, network)
        router = ServeRouter(network, server)
        conns = [ServeClient(network, f"client{i}", router=router)
                 for i in range(clients)]
        for conn in conns:
            conn.connect()
        return (conns,), {}

    def target(conns):
        drive(conns, requests, "1:3", 0, paced=False)

    benchmark.pedantic(target, setup=setup, rounds=2, iterations=1)


@pytest.mark.benchmark(group="serve-latency")
def test_serve_simulated(benchmark):
    _bench(benchmark, "simulated")


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
