"""A8 — COW snapshot/rollback cost vs database size.

The workspace's transactional constraint enforcement snapshots the whole
database at every transaction start and restores it on rollback.  With
copy-on-write relations both operations cost O(changed relations), not
O(total facts), so transaction overhead stays flat as the fact base
grows.  Two modes:

* ``database`` — raw ``Database.snapshot()``/``restore()`` cycles over a
  wide database where each transaction touches a single relation;
* ``workspace`` — full transaction rollbacks (constraint violation) on a
  workspace carrying a large EDB, the paper's section 3.2 admission
  scenario: a big policy base rejecting a bad batch should pay for the
  batch, not for the base.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.datalog.database import Database
from repro.datalog.errors import ConstraintViolation
from repro.workspace.workspace import Workspace

RELATIONS = 50    # relations in the wide database
FACTS = 200       # facts per relation
TXNS = 40         # snapshot/mutate/rollback cycles measured


def wide_database(relations: int, facts: int) -> Database:
    db = Database()
    for r in range(relations):
        name = f"rel{r}"
        for i in range(facts):
            db.add(name, (i, i + 1))
        db.rel(name).lookup((0,), (0,))  # a maintained index per relation
    return db


def loaded_workspace(facts: int) -> Workspace:
    ws = Workspace("bench", "bench")
    ws.load('edge(X,Y) -> .  bad(X) -> .  bad(X) -> nosuch(X).')
    ws.assert_facts("edge", [(i, i + 1) for i in range(facts)])
    return ws


@benchmark("snapshot_rollback", group="engine",
           quick=[{"mode": "database", "relations": 30, "facts": 100,
                   "txns": 20},
                  {"mode": "workspace", "facts": 300, "txns": 10}],
           full=[{"mode": "database", "relations": RELATIONS, "facts": FACTS,
                  "txns": TXNS},
                 {"mode": "workspace", "facts": 2000, "txns": TXNS}])
def snapshot_rollback(case, mode, facts, txns, relations=None):
    """COW snapshot/restore cycles: cost tracks the delta, not the database."""
    if mode == "database":
        db = wide_database(relations, facts)
        with case.measure():
            for t in range(txns):
                snapshot = db.snapshot()
                hot = f"rel{t % relations}"
                for i in range(10):
                    db.add(hot, ("txn", t, i))
                db.restore(snapshot)
        case.record(total_facts=db.total_facts())
    else:
        ws = loaded_workspace(facts)
        case.watch(ws.stats)
        rejected = 0
        with case.measure():
            for t in range(txns):
                try:
                    with ws.transaction():
                        ws.assert_fact("edge", (facts + t, facts + t + 1))
                        ws.assert_fact("bad", (t,))
                except ConstraintViolation:
                    rejected += 1
        case.record(rejected=rejected, edb_facts=len(ws.edb.get("edge", ())))


@pytest.mark.benchmark(group="snapshot")
def test_snapshot_rollback_database(benchmark):
    def setup():
        return (wide_database(30, 100),), {}

    def target(db):
        for t in range(20):
            snapshot = db.snapshot()
            db.add(f"rel{t % 30}", ("txn", t))
            db.restore(snapshot)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
