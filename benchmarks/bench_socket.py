"""A9 — socket transport: the same distributed exchange, real TCP.

PR-5's tentpole made the cluster runtime transport-agnostic: the same
BSP/async schedulers drive delta batches over the virtual-clock
:class:`SimulatedNetwork` or over real loopback TCP frames
(:class:`SocketNetwork`).  This workload runs the shard-scaling
reachability job on both transports and records what the wire costs:

* ``reach_facts`` must be identical across transports (the fixpoint is
  transport-invariant — the PR-5 acceptance bar);
* ``messages`` / ``bytes`` — batched traffic, comparable across
  transports because both count payload bytes;
* wall time on the socket transport includes real kernel round-trips,
  so the simulated/socket delta is the true cost of leaving the virtual
  clock.

The multiprocess launcher is exercised by the test suite and the
``socket-smoke`` CI job rather than here: process spawn time would
swamp a timing measurement.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

import random

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.cluster import Cluster, Partitioner
from repro.net import SimulatedNetwork, SocketNetwork

REACHABILITY = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""


def build_cluster(network, nodes, vertices, mode, degree=2, seed=7):
    names = [f"node{i}" for i in range(nodes)]
    partitioner = Partitioner(names)
    partitioner.hash_partition("edge", column=0)
    partitioner.hash_partition("reach", column=1)
    cluster = Cluster(names, network=network, partitioner=partitioner,
                      mode=mode)
    cluster.load(REACHABILITY)
    rng = random.Random(seed)
    for v in range(vertices):
        for t in rng.sample(range(vertices), degree):
            if t != v:
                cluster.assert_fact("edge", (v, t))
    return cluster


_QUICK = [{"transport": t, "mode": m, "nodes": 3, "vertices": 48}
          for t in ("simulated", "socket") for m in ("bsp", "async")]
_FULL = [{"transport": t, "mode": m, "nodes": 4, "vertices": 150}
         for t in ("simulated", "socket") for m in ("bsp", "async")]


@benchmark("socket_transport", group="cluster",
           quick=_QUICK, full=_FULL)
def socket_transport(case, transport, mode, nodes, vertices):
    """Distributed TC to quiescence over virtual-clock vs real TCP."""
    if transport == "socket":
        network = SocketNetwork()
    else:
        network = SimulatedNetwork()
    try:
        cluster = build_cluster(network, nodes, vertices, mode)
        for node in cluster.nodes.values():
            case.watch(node.stats)
        with case.measure():
            report = cluster.run()
        case.record(
            transport=transport,
            mode=mode,
            nodes=nodes,
            rounds=report.rounds,
            depth=report.depth,
            messages=report.messages,
            batched_facts=report.batched_facts,
            bytes=report.bytes,
            reach_facts=len(cluster.tuples("reach")),
        )
    finally:
        if transport == "socket":
            network.close()


def _bench(benchmark, transport, mode, nodes=3, vertices=48):
    def setup():
        network = SocketNetwork() if transport == "socket" \
            else SimulatedNetwork()
        return (build_cluster(network, nodes, vertices, mode),), {}

    def target(cluster):
        cluster.run()
        if isinstance(cluster.network, SocketNetwork):
            cluster.network.close()

    benchmark.pedantic(target, setup=setup, rounds=2, iterations=1)


@pytest.mark.benchmark(group="socket-transport")
def test_socket_bsp(benchmark):
    _bench(benchmark, "socket", "bsp")


@pytest.mark.benchmark(group="socket-transport")
def test_simulated_bsp(benchmark):
    _bench(benchmark, "simulated", "bsp")


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
