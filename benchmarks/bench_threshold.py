"""A5 — ablation: threshold (k-of-n) aggregation scaling (section 4.2.2).

Cost of the wd2 count as the bureau group grows: n bureaus each vouch for
m subjects; the bank's aggregate recomputes per batch.
"""

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks import optional_pytest

pytest = optional_pytest()

from repro.bench import benchmark
from repro.core.delegation import install_threshold
from repro.datalog.parser import parse_rule
from repro.meta.registry import RuleRegistry
from repro.workspace.workspace import Workspace

SUBJECTS = 20
K = 3


def make_bank(bureaus):
    registry = RuleRegistry()
    workspace = Workspace("bank", registry=registry)
    install_threshold(workspace, "creditOK", "creditBureau", K,
                      result="approved")
    with workspace.transaction():
        for i in range(bureaus):
            workspace.assert_fact("pringroup", (f"b{i}", "creditBureau"))
    refs = [registry.intern(parse_rule(f'creditOK("c{j}").'))
            for j in range(SUBJECTS)]
    return workspace, refs, bureaus


def vote_all(workspace, refs, bureaus):
    with workspace.transaction():
        for i in range(bureaus):
            for ref in refs:
                workspace.assert_fact("says", (f"b{i}", "bank", ref))
    assert len(workspace.tuples("approved")) == SUBJECTS


@benchmark("threshold_scaling", group="threshold",
           quick=[{"bureaus": 4}],
           full=[{"bureaus": 4}, {"bureaus": 8}, {"bureaus": 16}])
def threshold_scaling(case, bureaus):
    """k-of-n aggregate recompute cost as the vouching group grows."""
    workspace, refs, n = make_bank(bureaus)
    case.watch(workspace.stats)
    with case.measure():
        vote_all(workspace, refs, n)
    case.record(subjects=SUBJECTS)


def _bench(benchmark, bureaus):
    def setup():
        return (make_bank(bureaus),), {}

    def target(args):
        workspace, refs, n = args
        vote_all(workspace, refs, n)

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="threshold-scaling")
def test_threshold_4_bureaus(benchmark):
    _bench(benchmark, 4)


@pytest.mark.benchmark(group="threshold-scaling")
def test_threshold_8_bureaus(benchmark):
    _bench(benchmark, 8)


@pytest.mark.benchmark(group="threshold-scaling")
def test_threshold_16_bureaus(benchmark):
    _bench(benchmark, 16)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
