#!/usr/bin/env python
"""Regenerate the full Figure 2 series: time vs #messages per scheme.

Usage:
    python benchmarks/fig2_sweep.py            # k = 0..2000 (quick)
    python benchmarks/fig2_sweep.py --full     # k = 0..10000 (paper scale)

Prints the same series the paper plots (execution time over number of
messages for RSA / HMAC / Plaintext) plus a linearity check and the
per-message cost ratios, and appends nothing anywhere — copy the table
into EXPERIMENTS.md when refreshing results.
"""

from __future__ import annotations

import sys
import time

if __package__ in (None, ""):  # running as a script
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks.workloads import make_fig2_system, run_fig2_exchange  # noqa: E402
from repro.bench import benchmark  # noqa: E402

SCHEMES = ("plaintext", "hmac", "rsa")


def measure(auth: str, k: int) -> float:
    system, alice, bob = make_fig2_system(auth)
    start = time.perf_counter()
    run_fig2_exchange(system, alice, bob, k)
    return time.perf_counter() - start


@benchmark("fig2_sweep", group="fig2-auth-overhead", repeats=2,
           quick=[{"auth": "plaintext", "k": 250},
                  {"auth": "hmac", "k": 250}],
           full=[{"auth": auth, "k": k}
                 for auth in SCHEMES for k in (250, 1000, 2000)])
def fig2_sweep(case, auth, k):
    """One point of the Figure 2 series: time vs number of messages."""
    system, alice, bob = make_fig2_system(auth, rsa_bits=512)
    case.watch(alice.workspace.stats)
    case.watch(bob.workspace.stats)
    with case.measure():
        run_fig2_exchange(system, alice, bob, k)
    case.record(messages=2 * k, per_message_us=case.elapsed / (2 * k) * 1e6)


def main() -> None:
    full = "--full" in sys.argv
    points = [0, 1000, 2000, 4000, 6000, 8000, 10000] if full else \
             [0, 250, 500, 1000, 1500, 2000]
    print(f"# Figure 2 reproduction: execution time (s) over number of "
          f"messages per direction")
    header = "k".rjust(7) + "".join(s.rjust(12) for s in SCHEMES)
    print(header)
    series: dict[str, list] = {s: [] for s in SCHEMES}
    for k in points:
        row = f"{k:7d}"
        for scheme in SCHEMES:
            elapsed = measure(scheme, k)
            series[scheme].append((k, elapsed))
            row += f"{elapsed:12.3f}"
        print(row, flush=True)

    print("\n# per-message cost (µs, from the largest point) and ratios")
    largest = points[-1]
    costs = {}
    for scheme in SCHEMES:
        k, elapsed = series[scheme][-1]
        base_k, base_t = series[scheme][0]
        costs[scheme] = (elapsed - base_t) / max(k - base_k, 1) * 1e6
        print(f"  {scheme:10s} {costs[scheme]:10.1f} µs/message")
    print(f"  RSA/HMAC ratio:      {costs['rsa'] / costs['hmac']:.1f}x")
    print(f"  HMAC/Plaintext ratio: {costs['hmac'] / costs['plaintext']:.2f}x")

    print("\n# linearity check (R^2 of least-squares fit per scheme)")
    for scheme in SCHEMES:
        ks = [k for k, _ in series[scheme]]
        ts = [t for _, t in series[scheme]]
        n = len(ks)
        mean_k, mean_t = sum(ks) / n, sum(ts) / n
        cov = sum((k - mean_k) * (t - mean_t) for k, t in zip(ks, ts))
        var_k = sum((k - mean_k) ** 2 for k in ks)
        slope = cov / var_k if var_k else 0.0
        intercept = mean_t - slope * mean_k
        ss_res = sum((t - (slope * k + intercept)) ** 2
                     for k, t in zip(ks, ts))
        ss_tot = sum((t - mean_t) ** 2 for t in ts)
        r2 = 1 - ss_res / ss_tot if ss_tot else 1.0
        print(f"  {scheme:10s} R^2 = {r2:.4f}  "
              f"(slope {slope * 1e3:.3f} ms/message)")


if __name__ == "__main__":
    main()
