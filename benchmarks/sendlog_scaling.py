#!/usr/bin/env python
"""A7 standalone harness: SeNDlog convergence vs network size.

Prints, per ring size: rounds to converge, messages, bytes, and virtual
time under the simulated latency model.  Feeds the A7 row of
EXPERIMENTS.md.

Usage:  python benchmarks/sendlog_scaling.py [max_size]
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, ".")

from benchmarks.bench_sendlog import build_ring  # noqa: E402


def main() -> None:
    max_size = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print("# SeNDlog reachability on rings (hmac-authenticated)")
    print(f"{'nodes':>6} {'rounds':>7} {'messages':>9} {'bytes':>9} "
          f"{'vtime':>7} {'wall(s)':>8}")
    for size in range(3, max_size + 1):
        system, principals = build_ring(size)
        start = time.perf_counter()
        report = system.run(max_rounds=100)
        wall = time.perf_counter() - start
        for name, principal in principals.items():
            reached = {d for (s, d) in principal.tuples("reachable")
                       if s == name}
            assert len(reached | {name}) == size, (name, reached)
        print(f"{size:6d} {report.rounds:7d} "
              f"{system.network.total.messages:9d} "
              f"{system.network.total.bytes:9d} "
              f"{report.virtual_time:7.1f} {wall:8.2f}")


if __name__ == "__main__":
    main()
