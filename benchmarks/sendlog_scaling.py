#!/usr/bin/env python
"""A7 standalone harness: SeNDlog convergence vs network size.

Prints, per ring size: rounds to converge, messages, bytes, and virtual
time under the simulated latency model.  Feeds the A7 row of
EXPERIMENTS.md.

Usage:  python benchmarks/sendlog_scaling.py [max_size]
"""

from __future__ import annotations

import sys
import time

if __package__ in (None, ""):  # running as a script
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from benchmarks.bench_sendlog import build_ring  # noqa: E402
from repro.bench import benchmark  # noqa: E402


@benchmark("sendlog_convergence", group="sendlog", repeats=2,
           quick=[{"size": 4}, {"size": 6}],
           full=[{"size": size} for size in range(3, 11)])
def sendlog_convergence(case, size):
    """Rounds/messages/bytes/virtual-time to converge a reachability ring."""
    system, principals = build_ring(size)
    for principal in principals.values():
        case.watch(principal.workspace.stats)
    with case.measure():
        report = system.run(max_rounds=100)
    for name, principal in principals.items():
        reached = {d for (s, d) in principal.tuples("reachable") if s == name}
        assert len(reached | {name}) == size, (name, reached)
    case.record(rounds=report.rounds,
                messages=system.network.total.messages,
                bytes=system.network.total.bytes,
                virtual_time=report.virtual_time)


def main() -> None:
    max_size = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print("# SeNDlog reachability on rings (hmac-authenticated)")
    print(f"{'nodes':>6} {'rounds':>7} {'messages':>9} {'bytes':>9} "
          f"{'vtime':>7} {'wall(s)':>8}")
    for size in range(3, max_size + 1):
        system, principals = build_ring(size)
        start = time.perf_counter()
        report = system.run(max_rounds=100)
        wall = time.perf_counter() - start
        for name, principal in principals.items():
            reached = {d for (s, d) in principal.tuples("reachable")
                       if s == name}
            assert len(reached | {name}) == size, (name, reached)
        print(f"{size:6d} {report.rounds:7d} "
              f"{system.network.total.messages:9d} "
              f"{system.network.total.bytes:9d} "
              f"{report.virtual_time:7.1f} {wall:8.2f}")


if __name__ == "__main__":
    main()
