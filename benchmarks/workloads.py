"""Shared benchmark workloads.

The headline workload is the paper's Figure 2 micro-benchmark: two Binder
principals, alice and bob, each exporting and importing k authenticated
facts from the other's context, every message signed on export and
verified on import under the configured scheme.

Environment knobs:

* ``LBTRUST_BENCH_MESSAGES`` — messages per direction for the
  pytest-benchmark points (default 100);
* ``LBTRUST_BENCH_RSA_BITS`` — RSA modulus size (default 1024, the
  paper's).
"""

from __future__ import annotations

import os

if __package__ in (None, ""):  # running as a script
    import sys
    from pathlib import Path
    _root = Path(__file__).resolve().parent.parent
    sys.path[:0] = [str(_root), str(_root / "src")]

from repro import LBTrustSystem
from repro.bench import benchmark

BENCH_MESSAGES = int(os.environ.get("LBTRUST_BENCH_MESSAGES", "100"))
BENCH_RSA_BITS = int(os.environ.get("LBTRUST_BENCH_RSA_BITS", "1024"))


def make_fig2_system(auth: str, rsa_bits: int = None):
    """An alice/bob pair with Binder consumer rules (untimed setup)."""
    system = LBTrustSystem(auth=auth,
                           rsa_bits=rsa_bits or BENCH_RSA_BITS, seed=7)
    alice = system.create_principal("alice")
    bob = system.create_principal("bob")
    alice.load("gotB(X) <- pong(X).")   # Binder rule consuming imports
    bob.load("gotA(X) <- ping(X).")
    return system, alice, bob


def run_fig2_exchange(system, alice, bob, k: int) -> None:
    """The timed region: sign, export, transfer, import, verify, activate."""
    with alice.workspace.transaction():
        for i in range(k):
            ref = alice.intern(f'ping("m{i}").')
            alice.workspace.assert_fact("says", ("alice", "bob", ref))
    with bob.workspace.transaction():
        for i in range(k):
            ref = bob.intern(f'pong("m{i}").')
            bob.workspace.assert_fact("says", ("bob", "alice", ref))
    system.run()
    assert len(bob.tuples("gotA")) == k
    assert len(alice.tuples("gotB")) == k


def fig2_point(auth: str, k: int, rsa_bits: int = None) -> None:
    system, alice, bob = make_fig2_system(auth, rsa_bits)
    run_fig2_exchange(system, alice, bob, k)


@benchmark("fig2_single_message", group="fig2-auth-overhead",
           quick=[{"auth": "plaintext"}, {"auth": "hmac"}],
           full=[{"auth": "plaintext"}, {"auth": "hmac"},
                 {"auth": "rsa", "rsa_bits": 512}])
def fig2_single_message(case, auth, rsa_bits=None):
    """Constant per-exchange overhead: one authenticated message each way."""
    system, alice, bob = make_fig2_system(auth, rsa_bits or 512)
    case.watch(alice.workspace.stats)
    case.watch(bob.workspace.stats)
    with case.measure():
        run_fig2_exchange(system, alice, bob, 1)
    case.record(messages=2)


if __name__ == "__main__":
    from repro.bench import standalone
    raise SystemExit(standalone(__file__))
