#!/usr/bin/env python
"""The paper's demonstration (section 9): a distributed file system whose
access control combines Binder authentication with D1LP delegation.

Walks all three Figure 3 workflows:

* (a) direct:    Requester → FileStore → FileOwner → permission table;
* (b) delegated: FileOwner defers to an AccessManager, with a depth-0
  restriction (the manager may not re-delegate);
* (c) threshold: a read needs the concurrence of 2 of 3 AccessManagers.

Every arrow is an authenticated `says`; every decision is a Datalog rule.

Run:  python examples/binder_filesystem.py
"""

from repro.apps.filesystem import AccessDenied, DistributedFileSystem
from repro.datalog.errors import ConstraintViolation


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def direct_workflow() -> None:
    banner("Figure 3(a): direct owner decision")
    fs = DistributedFileSystem(auth="hmac", seed=101)
    fs.add_store("filestore")
    fs.add_owner("olivia", mode="direct")
    fs.add_requester("rob")
    fs.add_requester("eve")
    fs.create_file("design.doc", owner="olivia", store="filestore",
                   data="the master plan")
    fs.grant("olivia", "rob", "design.doc", "read")

    print("rob reads:", fs.read("rob", "design.doc", "filestore"))
    try:
        fs.read("eve", "design.doc", "filestore")
    except AccessDenied as denial:
        print("eve:", denial)


def delegated_workflow() -> None:
    banner("Figure 3(b): delegation to an AccessManager (depth 0)")
    fs = DistributedFileSystem(auth="hmac", seed=102)
    fs.add_store("filestore")
    fs.add_owner("olivia", mode="delegated")
    fs.add_requester("rob")
    fs.add_manager("marie")
    fs.owner_trusts_manager("olivia", "marie", delegate=True, depth=0)
    fs.create_file("notes.txt", owner="olivia", store="filestore",
                   data="delegated content")

    # marie (not olivia) now makes the access decision
    fs.manager_grant("marie", "rob", "notes.txt", "read")
    print("rob reads via marie:", fs.read("rob", "notes.txt", "filestore"))

    # the depth-0 restriction: marie cannot re-delegate `permitted`
    marie = fs.managers["marie"]
    marie.load("permitted(A,B,C) -> prin(A), string(B), string(C).")
    try:
        marie.delegate("rob", "permitted")
    except ConstraintViolation:
        print("marie's re-delegation blocked by dd4 (depth 0)")

    # rob writes, authorized by marie
    fs.manager_grant("marie", "rob", "notes.txt", "write")
    fs.write("rob", "notes.txt", "filestore", "edited by rob")
    print("after write, rob reads:", fs.read("rob", "notes.txt", "filestore"))

    # a requester vouching for itself is rejected by the mayWrite
    # meta-constraint and lands in the audit log
    fs.add_requester("mallory")
    fs.requesters["mallory"].says("olivia",
                                  'permitted("mallory","notes.txt","read").')
    report = fs.system.run()
    print(f"mallory's self-vouch: {report.rejected} message(s) rejected")


def threshold_workflow() -> None:
    banner("Threshold: 2-of-3 AccessManagers must concur")
    fs = DistributedFileSystem(auth="hmac", seed=103)
    fs.add_store("filestore")
    fs.add_owner("olivia", mode="threshold", threshold=2)
    fs.add_requester("rob")
    for name in ("m1", "m2", "m3"):
        fs.add_manager(name)
        fs.owner_trusts_manager("olivia", name, delegate=False)
    fs.create_file("vault.key", owner="olivia", store="filestore",
                   data="super secret")

    fs.manager_grant("m1", "rob", "vault.key", "read")
    try:
        fs.read("rob", "vault.key", "filestore")
    except AccessDenied:
        print("1 of 2 required verdicts: denied")
    fs.manager_grant("m2", "rob", "vault.key", "read")
    print("2 of 2 required verdicts:",
          fs.read("rob", "vault.key", "filestore"))


def main() -> None:
    direct_workflow()
    delegated_workflow()
    threshold_workflow()
    print("\nall three workflows complete.")


if __name__ == "__main__":
    main()
