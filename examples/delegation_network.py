#!/usr/bin/env python
"""Delegation constructs end-to-end (section 4.2): the credit-check story.

* a bank trusts a customer's credit when **3 of n** credit bureaus concur
  (wd0-wd2), then the **weighted** variant with reliability factors;
* a certificate-authority chain with a **depth** restriction (dd0-dd4):
  root → intermediate is fine, intermediate → leaf is fine, leaf → anyone
  violates the inferred budget — including a *late* restriction landing on
  a pre-existing delegation (the section 4.2.1 scenario);
* a **width** restriction keeping delegation inside an allowed set.

Run:  python examples/delegation_network.py
"""

from repro import ConstraintViolation, LBTrustSystem
from repro.core.delegation import install_threshold, install_weighted_threshold
from repro.languages.d1lp import run_statement


def thresholds() -> None:
    print("=== k-of-n threshold (wd0-wd2) ===")
    system = LBTrustSystem(auth="hmac", seed=201)
    bank = system.create_principal("bank")
    bureaus = [system.create_principal(f"bureau{i}") for i in range(4)]
    install_threshold(bank.workspace, "creditOK", "creditBureau", 3,
                      result="approved", channel="heard")
    for bureau in bureaus:
        bank.assert_fact("pringroup", (bureau.name, "creditBureau"))

    for count, bureau in enumerate(bureaus[:3], start=1):
        bureau.says(bank, 'creditOK("acme").')
        system.run()
        verdict = "approved" if bank.tuples("approved") else "pending"
        print(f"  {count} bureau(s) vouch for acme -> {verdict}")

    print("=== weighted threshold (total >= 5) ===")
    system = LBTrustSystem(auth="hmac", seed=202)
    bank = system.create_principal("bank")
    weights = {"moodys": 4, "spx": 3, "corner-shop": 1}
    install_weighted_threshold(bank.workspace, "creditOK", "creditBureau",
                               5, result="approved", channel="heard")
    for name, weight in weights.items():
        system.create_principal(name)
        bank.assert_fact("pringroup", (name, "creditBureau"))
        bank.assert_fact("weight", (name, weight))
    system.principal("corner-shop").says(bank, 'creditOK("globex").')
    system.run()
    print(f"  corner-shop (w=1): {'approved' if bank.tuples('approved') else 'pending'}")
    system.principal("moodys").says(bank, 'creditOK("globex").')
    system.run()
    print(f"  + moodys (w=4, total 5): "
          f"{'approved' if bank.tuples('approved') else 'pending'}")


def depth_chain() -> None:
    print("\n=== delegation depth (dd0-dd4) ===")
    system = LBTrustSystem(auth="hmac", seed=203, delegation=True)
    names = ["root-ca", "intermediate", "leaf", "outsider"]
    principals = {n: system.create_principal(n) for n in names}
    for principal in principals.values():
        principal.load("certify(C) -> string(C).")

    principals["root-ca"].delegate("intermediate", "certify", depth=1)
    system.run()
    print("  root-ca -> intermediate (budget 1)")
    principals["intermediate"].delegate("leaf", "certify")
    system.run()
    print("  intermediate -> leaf (budget now 0)")
    try:
        principals["leaf"].delegate("outsider", "certify")
    except ConstraintViolation:
        print("  leaf -> outsider blocked by dd4 (chain budget exhausted)")

    # section 4.2.1: the restriction arrives *after* a delegation exists
    system2 = LBTrustSystem(auth="plaintext", seed=204, delegation=True)
    a, b, c = (system2.create_principal(n) for n in ("a", "b", "c"))
    for principal in (a, b, c):
        principal.load("certify(C) -> string(C).")
    b.delegate(c, "certify")                  # non-conforming, pre-existing
    system2.run()
    a.delegate(b, "certify", depth=0)         # restriction lands late
    report = system2.run()
    print(f"  late depth-0 restriction: {report.rejected} budget message "
          f"rejected at b (b is non-conforming); a remains unaware — "
          f"exactly the paper's section 4.2.1 observation")


def width() -> None:
    print("\n=== delegation width (D1LP statement) ===")
    system = LBTrustSystem(auth="plaintext", seed=205, delegation=True)
    alice = system.create_principal("alice")
    for name in ("auditor1", "auditor2", "freelancer"):
        system.create_principal(name)
    for principal in system.principals.values():
        principal.load("audit(C) -> string(C).")
    run_statement(alice, "delegate audit to auditor1 width auditor1, auditor2")
    print("  alice -> auditor1 (width: auditor1, auditor2) ok")
    try:
        alice.delegate("freelancer", "audit")
    except ConstraintViolation:
        print("  alice -> freelancer blocked (outside the allowed set)")


def main() -> None:
    thresholds()
    depth_chain()
    width()
    print("\ndone.")


if __name__ == "__main__":
    main()
