#!/usr/bin/env python
"""Quickstart: authenticated facts between two principals, reconfigured live.

Demonstrates the paper's core loop in ~40 lines:

1. two principals with RSA-signed `says` (Binder-style certificates);
2. a Datalog access policy consuming imported facts;
3. the section 4.1.2 move — swapping RSA for HMAC by replacing two rules,
   with every policy untouched.

Run:  python examples/quickstart.py
"""

from repro import LBTrustSystem


def main() -> None:
    system = LBTrustSystem(auth="rsa", rsa_bits=512, seed=7)
    alice = system.create_principal("alice")
    bob = system.create_principal("bob")

    # Bob's local policy (paper rule b1, with its type guard).
    bob.load("""
        object("report.txt"). object("budget.xls").
        access(P,O,"read") <- good(P), object(O).
    """)

    # Alice vouches for carol; the fact is RSA-signed, shipped, verified,
    # and activated in bob's context (says0/says1, exp0-exp3).
    alice.says(bob, 'good("carol").')
    report = system.run()
    print(f"[rsa]   delivered={report.delivered} bytes={report.bytes}")
    for row in sorted(bob.tuples("access")):
        print(f"        bob grants access{row}")

    # Reconfigure: RSA -> HMAC.  Two rules change; policies do not.
    system.reconfigure_auth("hmac")
    alice.says(bob, 'good("dave").')
    report = system.run()
    print(f"[hmac]  delivered={report.delivered} bytes={report.bytes}")
    for row in sorted(bob.tuples("access")):
        print(f"        bob grants access{row}")

    # A forged certificate (no valid signature) is rejected and audited.
    from repro import ConstraintViolation
    forged = alice.intern('good("mallory").')
    try:
        bob.assert_fact("says", ("alice", "bob", forged))
    except ConstraintViolation:
        print("[sec]   forged certificate rejected by exp3'")
    assert not any(row[0] == "mallory" for row in bob.tuples("access"))
    print("done.")


if __name__ == "__main__":
    main()
