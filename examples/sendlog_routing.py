#!/usr/bin/env python
"""SeNDlog (section 5.2): secure declarative networking.

Runs two authenticated protocols over the simulated network:

* the paper's s1/s2 reachability program (with the self-announcement
  bootstrap), on a small ring-with-chord topology;
* an authenticated path-vector protocol — the "more complex secure
  networking protocol" the paper says is easy to construct — with
  loop-freedom via path membership checks.

Prints per-node routing state plus network traffic statistics, and shows
location transparency: re-placing two principals onto one physical host
changes traffic, not results.

Run:  python examples/sendlog_routing.py
"""

from repro import LBTrustSystem
from repro.languages.sendlog import install_sendlog

REACHABILITY = """
At S:
s1: reachable(S,D) :- neighbor(S,D).
s1b: reachable(S,D)@S :- neighbor(S,D).
s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
"""

PATH_VECTOR = """
At S:
p1: path(S,D,P) :- neighbor(S,D), list_nil(E), list_cons(D,E,P0),
    list_cons(S,P0,P).
p1b: path(S,D,P)@S :- path(S,D,P).
p2: path(Z,D,P2)@Z :- neighbor(S,Z), W says path(S,D,P),
    list_not_member(Z,P), list_cons(Z,P,P2).
"""

TOPOLOGY = [("n0", "n1"), ("n1", "n2"), ("n2", "n3"), ("n3", "n0"),
            ("n0", "n2")]  # ring + one chord


def build(program: str, colocate: bool = False) -> tuple:
    system = LBTrustSystem(auth="hmac", seed=11)
    names = sorted({n for edge in TOPOLOGY for n in edge})
    principals = {}
    for name in names:
        node = "host0" if colocate and name in ("n0", "n1") else name
        principals[name] = system.create_principal(name, node=node)
    install_sendlog(system, program)
    for source, target in TOPOLOGY:
        principals[source].assert_fact("neighbor", (source, target))
        principals[target].assert_fact("neighbor", (target, source))
    report = system.run(max_rounds=60)
    return system, principals, report


def main() -> None:
    print("=== authenticated reachability (paper s1/s2) ===")
    system, principals, report = build(REACHABILITY)
    for name in sorted(principals):
        reached = sorted(d for (s, d) in principals[name].tuples("reachable")
                         if s == name and d != name)
        print(f"  {name} reaches {reached}")
    print(f"  convergence: {report.rounds} rounds, "
          f"{system.network.total.messages} messages, "
          f"{system.network.total.bytes} bytes, "
          f"virtual time {report.virtual_time:.1f}")

    print("\n=== authenticated path-vector ===")
    system, principals, report = build(PATH_VECTOR)
    n3_paths = sorted(
        (d, p) for (s, d, p) in principals["n3"].tuples("path") if s == "n3"
    )
    for destination, path in n3_paths:
        print(f"  n3 -> {destination} via {'-'.join(path)}")
    print(f"  convergence: {report.rounds} rounds, "
          f"{system.network.total.messages} messages")

    print("\n=== location transparency: n0,n1 colocated on host0 ===")
    system, principals, report = build(REACHABILITY, colocate=True)
    reached = sorted(d for (s, d) in principals["n0"].tuples("reachable")
                     if s == "n0" and d != "n0")
    local_link = system.network.link_stats("host0", "host0")
    print(f"  n0 reaches {reached} (same answer)")
    print(f"  host0-local messages (zero latency): {local_link.messages}")


if __name__ == "__main__":
    main()
