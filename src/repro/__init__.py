"""LBTrust: declarative reconfigurable trust management (CIDR 2009).

A from-scratch reproduction of Marczak et al., *Declarative Reconfigurable
Trust Management*: a LogicBlox-style Datalog engine (semi-naive fixpoint,
constraints, meta-programming with quoted code, meta-constraints,
partitioning, distribution) and, on top of it, the LBTrust security
machinery — ``says`` authentication with swappable schemes, authorization
meta-constraints, delegation with depth/width/threshold restrictions — and
the paper's case studies (Binder, SeNDlog, the file-system demo).

Quickstart::

    from repro import LBTrustSystem

    system = LBTrustSystem(auth="rsa")
    alice = system.create_principal("alice")
    bob = system.create_principal("bob")
    bob.load('object("f1"). access(P,O,"read") <- good(P), object(O).')
    alice.says(bob, 'good("carol").')
    system.run()
    assert ("carol", "f1", "read") in bob.tuples("access")

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-versus-measured results.
"""

from .cluster import Cluster, ClusterReport, Partitioner
from .core.principal import Principal
from .core.system import LBTrustSystem, RunReport
from .datalog.errors import (
    ActivationLimitError,
    ClusterError,
    ConstraintViolation,
    CryptoError,
    ParseError,
    ReproError,
    SafetyError,
    StratificationError,
    WorkspaceError,
)
from .workspace.workspace import Workspace

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterReport",
    "LBTrustSystem",
    "Partitioner",
    "Principal",
    "RunReport",
    "Workspace",
    "ReproError",
    "ParseError",
    "SafetyError",
    "StratificationError",
    "ClusterError",
    "ConstraintViolation",
    "ActivationLimitError",
    "CryptoError",
    "WorkspaceError",
    "__version__",
]
