"""``python -m repro`` — the interactive LBTrust shell."""

import sys

from .cli import main

sys.exit(main())
