"""Static program analysis for LBTrust programs (``repro check``).

A unified diagnostic framework over parsed programs: stable codes
(``R001``…), severities, and ``file:line:col`` source spans, produced by
a pipeline of passes that reuse the engine's own safety, stratification,
catalog, and placement machinery.  Surfaced three ways: the ``repro
check`` CLI, the :meth:`Workspace.load` / :meth:`Cluster.load` gates, and
the serve plane's ``load`` operation.
"""

from .diagnostics import (
    CODES,
    SCHEMA,
    Diagnostic,
    dumps_report,
    failed,
    render_text,
    report_from_json,
    report_to_json,
    summarize,
)
from .pipeline import (
    DEFAULT_PASSES,
    GATE_PASSES,
    AnalysisContext,
    analyze_source,
    analyze_statements,
    detect_dialect,
    raise_for_errors,
    run_passes,
)

__all__ = [
    "AnalysisContext",
    "CODES",
    "DEFAULT_PASSES",
    "Diagnostic",
    "GATE_PASSES",
    "SCHEMA",
    "analyze_source",
    "analyze_statements",
    "detect_dialect",
    "dumps_report",
    "failed",
    "raise_for_errors",
    "render_text",
    "report_from_json",
    "report_to_json",
    "run_passes",
    "summarize",
]
