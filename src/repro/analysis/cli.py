"""``repro check`` — static analysis over program files and paper listings.

Examples::

    repro check examples/sendlog_routing.py
    repro check --strict --format json program.dl
    repro check --paper-listings --strict
    repro check --nodes 4 --partition link=0 --replicate cost program.dl

Inputs are either program files (any extension; the surface dialect —
core Datalog, Binder, SeNDlog — is auto-detected per program, or forced
with ``--dialect``) or ``.py`` files, from which embedded programs are
extracted: module-level ``ALL_CAPS = \"...\"`` string assignments and
string arguments to ``load`` / ``says`` / ``install_sendlog`` /
``add_rule`` / ``add_constraint`` calls.  Diagnostics from embedded
programs are relocated so they point into the ``.py`` file itself.

``--nodes N`` (with optional ``--partition PRED[=COL]`` / ``--replicate
PRED`` placements) additionally dry-runs the cluster placement checks —
without constructing a cluster.

Exit status: 0 when the report is clean (info findings never fail, and
warnings only fail under ``--strict``), 1 when it is not, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, Optional, TextIO

from .diagnostics import (
    Diagnostic,
    dumps_report,
    failed,
    partition_suppressed,
    render_text,
    scan_suppressions,
    sort_key,
)
from .pipeline import DIALECTS, analyze_source, default_builtins

#: Call targets whose string arguments are treated as embedded programs.
_PROGRAM_CALLS = frozenset({
    "load", "says", "install_sendlog", "add_rule", "add_constraint",
})


def looks_like_program(text: str) -> bool:
    """Heuristic: is this Python string literal a Datalog-family program?"""
    stripped = text.strip()
    if "(" not in stripped:
        return False
    if any(arrow in stripped for arrow in ("<-", ":-", "->")):
        return True
    return stripped.endswith(".")


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def extract_programs(source: str) -> list[tuple[str, int, str]]:
    """Embedded programs in a ``.py`` source: ``(label, line_offset, text)``.

    ``line_offset`` relocates the program's internal line numbers onto the
    embedding file (``shifted`` on the resulting diagnostics): line 1 of
    the program text is the line the string literal starts on.
    """
    tree = ast.parse(source)
    programs: list[tuple[str, int, str]] = []
    seen: set[int] = set()

    def add(label: str, node: ast.Constant) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node.value, str) and looks_like_program(node.value):
            programs.append((label, node.lineno - 1, node.value))

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value,
                                                       ast.Constant):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.isupper():
                    add(target.id, node.value)
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _PROGRAM_CALLS:
                for arg in node.args:
                    if isinstance(arg, ast.Constant):
                        add(name, arg)
    return programs


def build_placement(nodes: int, partitions: Iterable[str],
                    replicas: Iterable[str]):
    """A :class:`~repro.cluster.partition.Partitioner` for the dry run."""
    from ..cluster.partition import Partitioner

    partitioner = Partitioner([f"n{i}" for i in range(nodes)])
    for spec in partitions:
        pred, _, column = spec.partition("=")
        if not pred:
            raise ValueError(f"bad --partition spec {spec!r}")
        partitioner.hash_partition(pred, int(column) if column else 0)
    for pred in replicas:
        partitioner.replicate(pred)
    return partitioner


def check_python_file(path: Path, source: str, *, dialect: str,
                      builtins=None, placement=None, passes=None,
                      collect_suppressed: Optional[list] = None
                      ) -> list[Diagnostic]:
    """Analyze every embedded program of a ``.py`` file.

    Diagnostics are relocated onto the embedding file and sorted by
    (file, line, col, code) — extraction order must never leak into the
    report, or ``--format json`` diffs churn across runs.  Suppression
    pragmas work at both levels: ``%# check: ignore[...]`` inside the
    embedded program text, and ``# check: ignore[...]`` on the ``.py``
    line the finding lands on.
    """
    diagnostics: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    try:
        programs = extract_programs(source)
    except SyntaxError as exc:
        from ..datalog.terms import Span

        span = Span(exc.lineno or 1, exc.offset or 1)
        return [Diagnostic("R000", f"embedding file does not parse: "
                           f"{exc.msg}", file=str(path), span=span)]
    for _, offset, text in programs:
        inner_suppressed: list[Diagnostic] = []
        for diagnostic in analyze_source(
                text, dialect=dialect, builtins=builtins,
                placement=placement, passes=passes,
                collect_suppressed=inner_suppressed):
            diagnostics.append(diagnostic.shifted(offset, str(path)))
        suppressed.extend(d.shifted(offset, str(path))
                          for d in inner_suppressed)
    # Second suppression level: pragmas written in the .py file itself.
    py_suppressions = scan_suppressions(source)
    if py_suppressions:
        diagnostics, py_suppressed = partition_suppressed(
            diagnostics, py_suppressions)
        suppressed.extend(py_suppressed)
    if collect_suppressed is not None:
        collect_suppressed.extend(sorted(suppressed, key=sort_key))
    return sorted(diagnostics, key=sort_key)


def check_file(path: Path, *, dialect: str = "auto", builtins=None,
               placement=None, passes=None,
               collect_suppressed: Optional[list] = None
               ) -> tuple[list[Diagnostic], Optional[str]]:
    """Analyze one file; returns (sorted diagnostics, source)."""
    source = path.read_text(encoding="utf-8")
    if path.suffix == ".py":
        return (check_python_file(path, source, dialect=dialect,
                                  builtins=builtins, placement=placement,
                                  passes=passes,
                                  collect_suppressed=collect_suppressed),
                source)
    diagnostics = analyze_source(source, file=str(path), dialect=dialect,
                                 builtins=builtins, placement=placement,
                                 passes=passes,
                                 collect_suppressed=collect_suppressed)
    return sorted(diagnostics, key=sort_key), source


def check_paper_listings(*, builtins=None, placement=None, passes=None,
                         collect_suppressed: Optional[list] = None
                         ) -> tuple[list[Diagnostic], dict]:
    """Analyze the embedded paper-listing corpus (sorted report)."""
    from .corpus import iter_corpus

    diagnostics: list[Diagnostic] = []
    sources: dict[str, str] = {}
    for name, dialect, source in iter_corpus():
        label = f"<listing {name}>"
        sources[label] = source
        diagnostics.extend(analyze_source(
            source, file=label, dialect=dialect, builtins=builtins,
            placement=placement, passes=passes,
            collect_suppressed=collect_suppressed))
    return sorted(diagnostics, key=sort_key), sources


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Static analysis for LBTrust programs "
                    "(safety, stratification, types, dead code, "
                    "attribution, placement, authority flow, "
                    "delegation depth, static cost)",
    )
    parser.add_argument("files", nargs="*", metavar="FILE",
                        help="program files; .py files have embedded "
                             "programs extracted")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail (info findings never do)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="report rendering (default: text)")
    parser.add_argument("--dialect", choices=DIALECTS, default="auto",
                        help="surface syntax (default: auto-detect "
                             "per program)")
    parser.add_argument("--passes", metavar="NAMES",
                        help="comma-separated pass subset (default: all)")
    parser.add_argument("--paper-listings", action="store_true",
                        help="also check the embedded paper-listing corpus")
    parser.add_argument("--nodes", type=int, default=0, metavar="N",
                        help="dry-run the placement checks for an N-node "
                             "cluster")
    parser.add_argument("--partition", action="append", default=[],
                        metavar="PRED[=COL]",
                        help="hash-partition PRED on column COL "
                             "(default 0); repeatable")
    parser.add_argument("--replicate", action="append", default=[],
                        metavar="PRED", help="replicate PRED; repeatable")
    return parser


def main(argv: Optional[list] = None,
         out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    try:
        args = parser.parse_args(list(argv) if argv is not None else None)
    except SystemExit as exc:
        return int(exc.code or 0)
    if not args.files and not args.paper_listings:
        print("repro check: no input (give FILEs or --paper-listings)",
              file=sys.stderr)
        return 2
    if (args.partition or args.replicate) and args.nodes <= 0:
        print("repro check: --partition/--replicate need --nodes N",
              file=sys.stderr)
        return 2

    passes = None
    if args.passes:
        passes = tuple(name.strip() for name in args.passes.split(",")
                       if name.strip())
    placement = None
    if args.nodes > 0:
        try:
            placement = build_placement(args.nodes, args.partition,
                                        args.replicate)
        except ValueError as exc:
            print(f"repro check: {exc}", file=sys.stderr)
            return 2

    builtins = default_builtins()
    diagnostics: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    sources: dict[str, str] = {}
    for name in args.files:
        path = Path(name)
        if not path.is_file():
            print(f"repro check: no such file {name!r}", file=sys.stderr)
            return 2
        try:
            file_diags, source = check_file(path, dialect=args.dialect,
                                            builtins=builtins,
                                            placement=placement,
                                            passes=passes,
                                            collect_suppressed=suppressed)
        except ValueError as exc:  # unknown pass / dialect
            print(f"repro check: {exc}", file=sys.stderr)
            return 2
        diagnostics.extend(file_diags)
        if source is not None:
            sources[str(path)] = source
    if args.paper_listings:
        try:
            listing_diags, listing_sources = check_paper_listings(
                builtins=builtins, placement=placement, passes=passes,
                collect_suppressed=suppressed)
        except ValueError as exc:
            print(f"repro check: {exc}", file=sys.stderr)
            return 2
        diagnostics.extend(listing_diags)
        sources.update(listing_sources)

    diagnostics.sort(key=sort_key)
    suppressed.sort(key=sort_key)
    if args.fmt == "json":
        print(dumps_report(diagnostics, strict=args.strict,
                           suppressed=suppressed), file=out)
    else:
        print(render_text(diagnostics, sources, suppressed=suppressed),
              file=out)
    return 1 if failed(diagnostics, strict=args.strict) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
