"""The paper's rule listings as an analyzable corpus.

Every listing printed in the paper, in executable text form.  The
test-suite pins each one to parse + compile (``tests/test_paper_listings``
imports :data:`LISTINGS` from here), and the ``check-smoke`` CI job runs
``repro check --paper-listings --strict`` over the whole corpus — the
analyzer must find no errors and no warnings in the paper's own programs
(informational findings are allowed: the printed listings do contain
benign singleton variables, e.g. ``W`` in ls2).

Where the printed listing has a known defect, the corrected form is used
and the deviation is documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Iterator

#: listing name → core-dialect source text (section 2–9 listings).
LISTINGS = {
    # -- section 2.2: Binder --------------------------------------------------
    "b1 (with the §3.2 type guard)":
        'access(P,O,"read") <- good(P), object(O).',
    "b2 (as bex1' translation)":
        'access(P,O,"read") <- says(bob,me,[|access(P,O,read)|]), '
        'pubkey(bob,"rsa:3:c1ebab5d").',
    # -- section 3.2: constraints ------------------------------------------------
    "fail-form example": "fail() <- access(P,O,M), !principal(P).",
    "positive form": "access(P,O,M) -> principal(P).",
    "full type declaration":
        "access(P,O,M) -> principal(P), object(O), mode(M).",
    # -- section 3.3: meta-model and meta-constraints ----------------------------
    "owner declaration": "owner(R,P) -> rule(R), principal(P).",
    "access declaration":
        "access(U,P,M) -> principal(U), predicate(P), mode(M).",
    "owner/access meta-constraint":
        'owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,"read").',
    "translated meta-constraint":
        "owner(U,R1), rule(R1), body(R1,A1), atom(A1), functor(A1,P) -> "
        'access(U,P,"read").',
    # -- section 3.4/3.5: partitioning and distribution ---------------------------
    "currying rewrite": "p'[X1](X2,X3) <- p(X1,X2,X3).",
    "predNode declaration": "predNode(P,N) -> predicate(P), node(N).",
    "locX1 declaration": "locX1(X1,N) -> t1(X1), node(N).",
    "placement rule": "predNode(p'[X1],N) <- locX1(X1,N).",
    # -- section 4.1: says -----------------------------------------------------
    "says0": "says0: says(U1,U2,R) -> prin(U1), prin(U2), rule(R).",
    "says1": "says1: active(R) <- says(_,me,R).",
    "mayRead meta-constraint":
        "says(U,me,[| A <- P(T2*), A*. |]) -> mayRead(U,P).",
    "mayWrite meta-constraint":
        "says(U,me,[| P(T2*) <- A*. |]) -> mayWrite(U,P).",
    # -- section 4.1.1: authenticated communication -----------------------------
    "exp0": "exp0: export[U1](U2,R,S) -> prin(U1), prin(U2), rule(R), "
            "string(S).",
    "exp1": "exp1: export[U2](me,R,S) <- says(me,U2,R), rsasign(R,S,K), "
            "rsaprivkey(me,K).",
    "exp2": "exp2: says(U,me,R) <- export[me](U,R,S).",
    "exp3": "exp3: says(U,me,R) -> export[me](U,R,S), rsapubkey(U,K), "
            "rsaverify(R,S,K).",
    # -- section 4.1.2: the HMAC alternative -------------------------------------
    "exp1'": "exp1': export[U2](me,R,S) <- says(me,U2,R), hmacsign(R,K,S), "
             "sharedsecret(me,U2,K).",
    "exp3'": "exp3': says(U,me,R) -> export[me](U,R,S), "
             "sharedsecret(me,U,K), hmacverify(R,S,K).",
    # -- section 4.2: delegation --------------------------------------------------
    "sf0": "sf0: active(R) <- says(bob,me,R).",
    "del0": "del0: delegates(U1,U2,P) -> prin(U1), prin(U2), predicate(P).",
    "del1 (P as meta-variable; printed listing's lowercase p is a typo)":
        "del1: active([| active(R) <- says(U2,me,R), "
        "R = [| P(T*) <- A*. |]. |]) <- delegates(me,U2,P).",
    # -- section 4.2.1: depth -------------------------------------------------------
    "dd0": "dd0: delDepth(U1,U2,P,N) -> prin(U1), prin(U2), predicate(P), "
           "int(N).",
    "dd1": "dd1: inferredDelDepth(U1,U2,P,N) -> prin(U1), prin(U2), "
           "predicate(P), int(N).",
    "dd2": "dd2: inferredDelDepth(me,U,P,N) <- delDepth(me,U,P,N).",
    "dd3 (as printed; see DESIGN.md for the chaining correction)":
        "dd3: says(me,U,[| inferredDelDepth(me,U,P,N-1). |]) <- "
        "inferredDelDepth(me,U,P,N), delegates(me,U,P), N > 0.",
    "dd4": "dd4: inferredDelDepth(_,me,P,0) -> !delegates(me,_,P).",
    # -- section 4.2.2: thresholds ---------------------------------------------------
    "wd0": "wd0: creditOK(C) -> customer(C).",
    "wd1": "wd1: creditOK(C) <- creditOKCount(C,N), N >= 3.",
    "wd2": 'wd2: creditOKCount(C,N) <- agg<<N = count(U)>> '
           'pringroup(U,creditBureau), says(U,me,[| creditOK(C). |]).',
    # -- section 5.1: Binder pull rewrite ---------------------------------------------
    "pull0": "pull0: says(me,X,[| request(R). |]) <- "
             "active([| A <- says(X,me,R), A*. |]), X != me.",
    # -- section 5.2: SeNDlog --------------------------------------------------------
    "lc1": "lc1: neighbor(S,D) -> prin(S), prin(D).",
    "lc2": "lc2: reachable(S,D) -> prin(S), prin(D).",
    "ls1": "ls1: reachable(me,D) <- neighbor(me,D).",
    "ls2": "ls2: says(me,Z,[| reachable(Z,D). |]) <- neighbor(me,Z), "
           "says(W,me,[| reachable(me,D). |]).",
    "ld1": "ld1: loc(P,N) -> prin(P), node(N).",
    "ld2": "ld2: predNode(export[P],N) <- loc(P,N).",
    # -- section 9: the file system ----------------------------------------------------
    "f2": "f2: filename(F,S) -> file(F), string(S).",
    "f6": "f6: file(F) -> filename(F,_), filedata(F,_), fileowner(F,_), "
          "filestore(F,_).",
    "m2 (qualified predicate names)":
        "m2: message:id(M,N) -> message(M), int(N).",
    "dfs1": "dfs1: permission(P,X,F,M) -> prin(P), prin(X), file(F), "
            "mode(M).",
}

#: SeNDlog surface-syntax listings (section 5.2), compiled through the
#: ``At X:`` block front-end rather than pre-translated to the core.
SENDLOG_LISTINGS = {
    "section 5.2 reachability (s1/s2, At-block surface form)": """
At S:
s1: reachable(S,D) :- neighbor(S,D).
s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).
""",
}

#: Binder surface-syntax listings (section 2.2, D1LP-style ``says``
#: imports), compiled through the Binder front-end.
BINDER_LISTINGS = {
    "section 2.2 access policy (b1/b2, surface form)": """
access(P,O,"read") :- good(P), object(O).
access(P,O,"read") :- bob says access(P,O,"read").
""",
}


def iter_corpus() -> Iterator[tuple]:
    """Yield ``(name, dialect, source)`` for every corpus program."""
    for name, source in sorted(LISTINGS.items()):
        yield name, "core", source
    for name, source in sorted(BINDER_LISTINGS.items()):
        yield name, "binder", source
    for name, source in sorted(SENDLOG_LISTINGS.items()):
        yield name, "sendlog", source
