"""Monotone dataflow analysis over the predicate dependency graph.

The paper's central claim is that trust policies are *programs*; this
module treats them as such and brings classic dataflow machinery to
bear.  A :func:`solve` call runs a monotone framework to fixpoint: each
pass supplies a join-semilattice (:class:`Lattice`), a set of
:class:`FlowEquation` s (one per rule head, body reads as incoming
edges), and optionally a transfer function; the solver iterates
SCC-by-SCC (reusing the engine's own
:func:`~repro.datalog.stratify.tarjan_sccs`) so acyclic programs finish
in one sweep and recursive components converge locally, with widening
as a safety valve for infinite-height lattices.

Three pass families are built on the framework:

* **authority flow** (R601-R603) — a taint lattice over
  ``{edb, attributed, unattributed}``: plainly-loaded EDB facts and
  unattributed ``says`` imports are sources; flow follows rule bodies
  (including the says-stripped import semantics of
  :mod:`repro.core.says`); authorization-decision predicates reachable
  from unattributed input are flagged, as are says-exported predicates
  whose bodies read untrusted relations;
* **delegation depth** (R611-R613) — recursion through delegation
  predicates with no depth-bounding guard column, reported with the
  offending cycle spelled out exactly like
  :func:`~repro.datalog.stratify.find_negative_cycle` does;
* **static cost** (R701-R704) — cardinality/selectivity estimates
  propagated from declared types (and the cluster placement when one is
  supplied, e.g. ``repro check --nodes N``), flagging Cartesian-prone
  bodies and cross-shard join explosions before the runtime cost model
  ever sees them.

All diagnostics preserve source spans; severities follow the analyzer
convention (warnings by default — an authority leak only *rejects*
under ``--strict`` or a strict gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..datalog.stratify import DepGraph, cycle_path, tarjan_sccs
from ..datalog.terms import (
    Comparison,
    Constant,
    Constraint,
    Literal,
    Quote,
    Rule,
    Variable,
)
from .diagnostics import Diagnostic

__all__ = [
    "FlowEdge",
    "FlowEquation",
    "Lattice",
    "SYSTEM_PREDS",
    "Solution",
    "TaintLattice",
    "CardinalityLattice",
    "authority_pass",
    "cost_pass",
    "delegation_pass",
    "quoted_functors",
    "solve",
]

#: Predicates provided by the trust-management machinery itself; they are
#: derivable even when a program fragment does not define them.
SYSTEM_PREDS = frozenset({
    "says", "active", "export", "request", "predNode", "loc", "node",
})


def _meta_preds() -> frozenset:
    from ..meta.model import ALL_META_PREDS
    return ALL_META_PREDS


def quoted_functors(atom) -> set:
    """Concrete predicate names quoted inside an atom's arguments."""
    functors: set = set()
    for term in atom.all_args:
        if isinstance(term, Quote):
            for head in term.pattern.heads:
                if isinstance(head.functor, str):
                    functors.add(head.functor)
    return functors


def _quoted_patterns(atom) -> list:
    """Head :class:`AtomPattern` s quoted inside an atom's arguments."""
    patterns: list = []
    for term in atom.all_args:
        if isinstance(term, Quote):
            patterns.extend(term.pattern.heads)
    return patterns


def _is_anon(name: str) -> bool:
    return name.startswith("_")


def _atom_var_names(atom) -> set:
    return {v.name for v in atom.variables() if not _is_anon(v.name)}


def _label(rule: Rule) -> Optional[str]:
    return rule.label


# ---------------------------------------------------------------------------
# The framework
# ---------------------------------------------------------------------------

class Lattice:
    """Join-semilattice protocol for :func:`solve`.

    Implementations supply a least element, a join, and (for lattices of
    unbounded height, like cardinalities) a widening operator applied
    once a component exceeds its round budget.
    """

    def bottom(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def widen(self, old, new):
        """Accelerate past ``new`` when a component fails to stabilize."""
        return new


class TaintLattice(Lattice):
    """Powerset of taint marks under union (finite height — no widening)."""

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b


class CardinalityLattice(Lattice):
    """Row estimates under max, widened to ``cap`` on divergence."""

    def __init__(self, cap: float = 1e12) -> None:
        self.cap = cap

    def bottom(self):
        return 0.0

    def join(self, a, b):
        return max(a, b)

    def widen(self, old, new):
        return self.cap if new > old else new


@dataclass(frozen=True)
class FlowEdge:
    """One incoming contribution of a :class:`FlowEquation`.

    ``pred`` pulls the current value of another predicate; ``seed``
    injects a constant lattice value (an EDB source, a says import);
    either may be None.  ``note`` is a human rendering of the source for
    witness chains; ``span`` points at the body item responsible.
    """

    pred: Optional[str] = None
    seed: Optional[object] = None
    kind: str = "body"  # body | import | broken-import | seed
    note: str = ""
    span: Optional[object] = None


@dataclass(frozen=True)
class FlowEquation:
    """``head := transfer(reads)`` for one rule head (or seed)."""

    head: str
    reads: tuple
    rule: Optional[Rule] = None
    kind: str = "derive"  # derive | export | seed


@dataclass
class Solution:
    """A fixpoint: predicate values plus the equations that produced it."""

    lattice: Lattice
    values: dict
    by_head: dict
    graph: DepGraph
    unstable: frozenset = frozenset()

    def value(self, pred: str):
        return self.values.get(pred, self.lattice.bottom())


def _join_reads(lattice: Lattice, equation: FlowEquation, values: dict):
    value = lattice.bottom()
    for edge in equation.reads:
        if edge.seed is not None:
            value = lattice.join(value, edge.seed)
        if edge.pred is not None:
            value = lattice.join(
                value, values.get(edge.pred, lattice.bottom()))
    return value


def solve(equations: Iterable[FlowEquation], lattice: Lattice,
          transfer: Optional[Callable] = None,
          max_rounds: int = 12) -> Solution:
    """Run the monotone framework to fixpoint, SCC by SCC.

    ``transfer(equation, values) -> value`` computes one equation's
    contribution from the current environment; the default joins the
    equation's reads.  Components that have not stabilized after
    ``max_rounds`` sweeps are widened (:meth:`Lattice.widen`) and their
    predicates reported in :attr:`Solution.unstable`.
    """
    equations = list(equations)
    if transfer is None:
        def transfer(equation, values):
            return _join_reads(lattice, equation, values)

    graph = DepGraph()
    by_head: dict[str, list] = {}
    for equation in equations:
        graph.add_pred(equation.head)
        by_head.setdefault(equation.head, []).append(equation)
        for edge in equation.reads:
            if edge.pred is not None:
                graph.add_edge(edge.pred, equation.head, negative=False)

    values = {pred: lattice.bottom() for pred in graph.preds}
    unstable: set = set()
    # Tarjan emits SCCs in reverse topological order (dependents first);
    # process them reversed so sources settle before their readers.
    for component in reversed(tarjan_sccs(graph)):
        members = sorted(component)
        local = [eq for pred in members for eq in by_head.get(pred, ())]
        if not local:
            continue
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            widening = rounds > max_rounds
            for equation in local:
                old = values[equation.head]
                new = lattice.join(old, transfer(equation, values))
                if widening and new != old:
                    new = lattice.widen(old, new)
                    if new != old:
                        unstable.add(equation.head)
                if new != old:
                    values[equation.head] = new
                    changed = True
    return Solution(lattice=lattice, values=values, by_head=by_head,
                    graph=graph, unstable=frozenset(unstable))


# ---------------------------------------------------------------------------
# Shared program shape harvesting
# ---------------------------------------------------------------------------

@dataclass
class _Shape:
    """Syntactic facts about a program fragment that every pass needs."""

    rules: list = field(default_factory=list)       # non-fact rules
    fact_counts: dict = field(default_factory=dict)  # pred -> #facts
    derived: set = field(default_factory=set)        # non-says head preds
    declared: set = field(default_factory=set)       # constraint preds
    exported: set = field(default_factory=set)       # says-head functors
    imported: set = field(default_factory=set)       # says-body functors
    read: set = field(default_factory=set)           # positive body preds

    @property
    def shipped_only(self) -> set:
        """Predicates that only ever arrive through says (cf. R401)."""
        return self.imported - self.derived - self.declared


def _harvest_shape(ctx) -> _Shape:
    shape = _Shape()
    for statement in ctx.statements:
        if isinstance(statement, Constraint):
            for side in (statement.lhs, statement.rhs):
                for alternative in side:
                    for item in alternative:
                        if isinstance(item, Literal):
                            shape.declared.add(item.atom.pred)
            continue
        if not isinstance(statement, Rule):
            continue
        if statement.is_fact():
            for head in statement.heads:
                shape.fact_counts[head.pred] = \
                    shape.fact_counts.get(head.pred, 0) + 1
                shape.derived.add(head.pred)
            continue
        shape.rules.append(statement)
        for head in statement.heads:
            if head.pred == "says":
                shape.exported |= quoted_functors(head)
            else:
                shape.derived.add(head.pred)
        for item in statement.body:
            if not isinstance(item, Literal) or item.negated:
                continue
            if item.atom.pred == "says":
                shape.imported |= quoted_functors(item.atom)
            else:
                shape.read.add(item.atom.pred)
    return shape


def _is_builtin(ctx, pred: str) -> bool:
    return ctx.builtins.lookup(pred) is not None


# ---------------------------------------------------------------------------
# Authority flow — R601 / R602 / R603
# ---------------------------------------------------------------------------

TAINT_EDB = "edb"
TAINT_ATTRIBUTED = "attributed"
TAINT_UNATTRIBUTED = "unattributed"

#: Substrings that mark a predicate as an authorization decision.
_AUTH_MARKERS = ("authoriz", "access", "grant", "permit", "allow",
                 "permission", "acl")


def is_auth_sink(pred: str) -> bool:
    """Heuristic: does this predicate name an authorization decision?"""
    lowered = pred.lower()
    if any(marker in lowered for marker in _AUTH_MARKERS):
        return True
    # mayRead / mayWrite style capability predicates.
    return (pred.startswith("may") and len(pred) > 3
            and pred[3].isupper())


def _speaker_attributed(atom) -> bool:
    """Does a ``says(...)`` body literal name its speaker?

    A constant (including ``me``) or a named variable carries the
    speaker through to the rule; an anonymous ``_`` discards it — the
    paper's says1 deliberately does this, which is exactly why authority
    reaching a decision through such an import deserves a diagnostic.
    """
    args = atom.all_args
    if not args:
        return False
    speaker = args[0]
    if isinstance(speaker, Variable):
        return not _is_anon(speaker.name)
    return True  # constants (me, "bob", ...) are concrete principals


def _authority_equations(ctx, shape: _Shape) -> tuple[list, bool]:
    """Flow equations for the taint lattice, plus a says-import flag."""
    equations: list[FlowEquation] = []
    has_says_import = False
    shipped_only = shape.shipped_only
    exempt = SYSTEM_PREDS | _meta_preds()

    # EDB sources: program facts and read-but-underived predicates.
    for pred, count in sorted(shape.fact_counts.items()):
        equations.append(FlowEquation(pred, (FlowEdge(
            seed=frozenset({TAINT_EDB}), kind="seed",
            note=f"EDB fact {pred!r}"),), kind="seed"))
    for pred in sorted(shape.read - shape.derived - exempt):
        if _is_builtin(ctx, pred) or pred in shipped_only:
            continue
        equations.append(FlowEquation(pred, (FlowEdge(
            seed=frozenset({TAINT_EDB}), kind="seed",
            note=f"EDB relation {pred!r}"),), kind="seed"))

    for rule in shape.rules:
        reads: list[FlowEdge] = []
        for item in rule.body:
            if not isinstance(item, Literal) or item.negated:
                continue
            pred = item.atom.pred
            if pred == "says":
                has_says_import = True
                if _speaker_attributed(item.atom):
                    taint, who = TAINT_ATTRIBUTED, "attributed"
                else:
                    taint, who = TAINT_UNATTRIBUTED, "unattributed"
                reads.append(FlowEdge(
                    seed=frozenset({taint}), kind="import",
                    note=f"{who} says import", span=item.span))
                continue
            if _is_builtin(ctx, pred):
                continue
            seed = None
            note = ""
            kind = "body"
            if pred in shipped_only:
                # A plain read of a says-shipped predicate drops the
                # attribution chain (R401's finding, as a taint source).
                seed = frozenset({TAINT_UNATTRIBUTED})
                kind = "broken-import"
                note = f"plain read of says-shipped {pred!r}"
            reads.append(FlowEdge(pred=pred, seed=seed, kind=kind,
                                  note=note, span=item.span))
        frozen = tuple(reads)
        for head in rule.heads:
            if head.pred == "says":
                for functor in sorted(quoted_functors(head)):
                    equations.append(FlowEquation(
                        functor, frozen, rule=rule, kind="export"))
            else:
                equations.append(FlowEquation(
                    head.pred, frozen, rule=rule, kind="derive"))
    return equations, has_says_import


def _taint_source_chain(solution: Solution, sink: str, bit: str) -> str:
    """Shortest witness ``source -> ... -> sink`` carrying ``bit``."""
    seen = {sink}
    queue: list[tuple[str, list]] = [(sink, [sink])]
    while queue:
        pred, path = queue.pop(0)
        for equation in solution.by_head.get(pred, ()):
            for edge in equation.reads:
                if edge.seed is not None and bit in edge.seed:
                    return " -> ".join(
                        [edge.note or "input"] + list(reversed(path)))
        for equation in solution.by_head.get(pred, ()):
            for edge in equation.reads:
                if (edge.pred is not None and edge.pred not in seen
                        and bit in solution.value(edge.pred)):
                    seen.add(edge.pred)
                    queue.append((edge.pred, path + [edge.pred]))
    return sink  # pragma: no cover - a carrier always has a source


def authority_pass(ctx) -> list[Diagnostic]:
    """Taint analysis: who may influence authorization decisions.

    * R601 — an authorization-decision predicate (``authorize``,
      ``access``, ``grant``, ``mayRead`` ...) is derivable from
      unattributed input: an anonymous says import (``says(_,me,R)``) or
      a plain read of a says-shipped relation;
    * R602 — a says-exported predicate is derived from unattributed
      input, so downstream peers will attribute hearsay to this
      principal's say-so;
    * R603 — the program imports via says somewhere, yet an
      authorization decision consults no attributed input at all.
    """
    shape = _harvest_shape(ctx)
    equations, has_says_import = _authority_equations(ctx, shape)
    if not equations:
        return []
    solution = solve(equations, TaintLattice())

    diagnostics: list[Diagnostic] = []
    lattice = solution.lattice

    sinks = sorted(pred for pred in shape.derived
                   if is_auth_sink(pred) and not shape.fact_counts.get(pred))
    for sink in sinks:
        value = solution.value(sink)
        if TAINT_UNATTRIBUTED in value:
            culprit = None
            for equation in solution.by_head.get(sink, ()):
                if equation.rule is None:
                    continue
                contributed = _join_reads(lattice, equation, solution.values)
                if TAINT_UNATTRIBUTED in contributed:
                    culprit = equation
                    break
            chain = _taint_source_chain(solution, sink, TAINT_UNATTRIBUTED)
            diagnostics.append(Diagnostic(
                "R601",
                f"authorization decision {sink!r} is derivable from "
                f"unattributed input ({chain}); require an attributed "
                f"says import or guard the decision",
                file=ctx.file,
                span=culprit.rule.span if culprit is not None else None,
                rule_label=_label(culprit.rule) if culprit is not None
                else None,
                pred=sink))
        elif (has_says_import and value
              and TAINT_ATTRIBUTED not in value):
            culprit = next((eq for eq in solution.by_head.get(sink, ())
                            if eq.rule is not None), None)
            diagnostics.append(Diagnostic(
                "R603",
                f"authorization decision {sink!r} consults no attributed "
                f"input although this program imports via says — the "
                f"decision ignores every speaker",
                file=ctx.file,
                span=culprit.rule.span if culprit is not None else None,
                rule_label=_label(culprit.rule) if culprit is not None
                else None,
                pred=sink))

    seen_exports: set = set()
    for equations_for in solution.by_head.values():
        for equation in equations_for:
            if equation.kind != "export":
                continue
            contributed = _join_reads(lattice, equation, solution.values)
            if TAINT_UNATTRIBUTED not in contributed:
                continue
            key = (id(equation.rule), equation.head)
            if key in seen_exports:
                continue
            seen_exports.add(key)
            chain = _taint_source_chain(solution, equation.head,
                                        TAINT_UNATTRIBUTED)
            diagnostics.append(Diagnostic(
                "R602",
                f"says-exported predicate {equation.head!r} is derived "
                f"from unattributed input ({chain}); peers receiving it "
                f"will attribute hearsay to this principal",
                file=ctx.file,
                span=equation.rule.span if equation.rule is not None
                else None,
                rule_label=_label(equation.rule)
                if equation.rule is not None else None,
                pred=equation.head))
    return diagnostics


# ---------------------------------------------------------------------------
# Delegation depth — R611 / R612 / R613
# ---------------------------------------------------------------------------

#: Substrings that mark a predicate as part of a delegation chain.
_DELEGATION_MARKERS = ("deleg", "deldepth")

#: Comparison operators that can bound a decreasing depth column.
_BOUNDING_OPS = frozenset({"<", "<=", ">", ">="})


def is_delegation_pred(pred: str) -> bool:
    lowered = pred.lower()
    return any(marker in lowered for marker in _DELEGATION_MARKERS)


@dataclass(frozen=True)
class _DepEdge:
    source: str
    target: str
    kind: str  # derive | export | import
    rule: Rule


def _delegation_edges(ctx, shape: _Shape) -> list[_DepEdge]:
    """Body→head dependencies, including flow through the says channel:
    a says export feeds its quoted functor, a says import feeds the
    local head — the cross-principal edges dd3-style propagation rides."""
    edges: list[_DepEdge] = []
    for rule in shape.rules:
        body_preds: list[str] = []
        import_functors: list[str] = []
        for item in rule.body:
            if not isinstance(item, Literal) or item.negated:
                continue
            if item.atom.pred == "says":
                import_functors.extend(sorted(quoted_functors(item.atom)))
            elif not _is_builtin(ctx, item.atom.pred):
                body_preds.append(item.atom.pred)
        for head in rule.heads:
            if head.pred == "says":
                for functor in sorted(quoted_functors(head)):
                    for pred in body_preds:
                        edges.append(_DepEdge(pred, functor, "export", rule))
                    for pred in import_functors:
                        edges.append(_DepEdge(pred, functor, "export", rule))
            else:
                for pred in body_preds:
                    edges.append(_DepEdge(pred, head.pred, "derive", rule))
                for pred in import_functors:
                    edges.append(_DepEdge(pred, head.pred, "import", rule))
    return edges


def _cycle_read_vars(rule: Rule, component: frozenset) -> set:
    """Variables bound by reading a cycle predicate in ``rule``'s body
    (plain literals, or quoted patterns inside a says import)."""
    names: set = set()
    for item in rule.body:
        if not isinstance(item, Literal) or item.negated:
            continue
        if item.atom.pred in component:
            names |= _atom_var_names(item.atom)
        if item.atom.pred == "says":
            for pattern in _quoted_patterns(item.atom):
                if pattern.functor in component:
                    for arg in pattern.args:
                        if isinstance(arg, Variable) \
                                and not _is_anon(arg.name):
                            names.add(arg.name)
    return names


def _guard_vars(rule: Rule, component: frozenset) -> set:
    """Cycle-read variables bounded by a comparison in ``rule``."""
    cycle_vars = _cycle_read_vars(rule, component)
    if not cycle_vars:
        return set()
    guarded: set = set()
    for item in rule.body:
        if isinstance(item, Comparison) and item.op in _BOUNDING_OPS:
            names = {v.name for v in item.variables()}
            guarded |= names & cycle_vars
    return guarded


def _recursive_occurrences(rule: Rule, component: frozenset) -> list:
    """``(body_args, head_args)`` pairs for cycle predicates that appear
    in both the body (read) and the head (re-derived or re-exported)."""
    body_args: dict[str, tuple] = {}
    for item in rule.body:
        if not isinstance(item, Literal) or item.negated:
            continue
        if item.atom.pred in component and item.atom.pred not in body_args:
            body_args[item.atom.pred] = tuple(item.atom.all_args)
        if item.atom.pred == "says":
            for pattern in _quoted_patterns(item.atom):
                if (pattern.functor in component
                        and pattern.functor not in body_args):
                    body_args[pattern.functor] = tuple(pattern.args)
    pairs: list = []
    for head in rule.heads:
        if head.pred in body_args:
            pairs.append((body_args[head.pred], tuple(head.all_args)))
        if head.pred == "says":
            for pattern in _quoted_patterns(head):
                if pattern.functor in body_args:
                    pairs.append((body_args[pattern.functor],
                                  tuple(pattern.args)))
    return pairs


def _decreases_guarded_column(rule: Rule, component: frozenset,
                              guarded: set) -> bool:
    """Does any recursive head occurrence rewrite a guarded column?

    dd2b passes ``N-1`` where its body read ``N`` — the head term at a
    guarded variable's position differs from the body term, so the
    chain provably shrinks.  Identical argument tuples never do.
    """
    for body_args, head_args in _recursive_occurrences(rule, component):
        if len(body_args) != len(head_args):
            return True  # shape change: cannot prove non-decrease
        for position, body_term in enumerate(body_args):
            if not isinstance(body_term, Variable):
                continue
            if body_term.name not in guarded:
                continue
            if head_args[position] != body_term:
                return True
    return False


def _render_cycle(edges: list[_DepEdge], component: frozenset,
                  anchor: str) -> str:
    graph = DepGraph()
    for edge in edges:
        graph.add_edge(edge.source, edge.target, negative=False)
    successors = sorted(graph.positive.get(anchor, set()) & component)
    if not successors:  # pragma: no cover - cyclic SCCs always have one
        return anchor
    path = cycle_path(graph, successors[0], anchor, component)
    return " -> ".join([anchor] + path)


def delegation_pass(ctx) -> list[Diagnostic]:
    """Unbounded recursion through delegation predicates.

    * R611 — a delegation predicate recurses with no depth-bounding
      guard column anywhere in the cycle;
    * R612 — the cycle carries a guard, but no participating rule ever
      decreases the guarded column, so the bound never bites;
    * R613 — as R611, but the cycle crosses the says boundary, so a
      remote peer can extend the chain indefinitely.
    """
    shape = _harvest_shape(ctx)
    edges = _delegation_edges(ctx, shape)
    if not edges:
        return []
    graph = DepGraph()
    for edge in edges:
        graph.add_edge(edge.source, edge.target, negative=False)

    diagnostics: list[Diagnostic] = []
    for component in sorted(tarjan_sccs(graph), key=min):
        internal = [e for e in edges if e.source in component
                    and e.target in component]
        cyclic = len(component) > 1 or any(
            e.source == e.target for e in internal)
        if not cyclic:
            continue
        delegation = sorted(p for p in component if is_delegation_pred(p))
        if not delegation:
            continue
        anchor = delegation[0]
        participating: list[Rule] = []
        seen_rules: set = set()
        for edge in internal:
            if id(edge.rule) not in seen_rules:
                seen_rules.add(id(edge.rule))
                participating.append(edge.rule)

        guarded_rules = [(rule, _guard_vars(rule, component))
                         for rule in participating]
        guarded_rules = [(rule, guards) for rule, guards in guarded_rules
                         if guards]
        rendered = _render_cycle(internal, component, anchor)
        culprit = min(
            participating,
            key=lambda r: (r.span.line if r.span else 0,
                           r.span.column if r.span else 0))

        if not guarded_rules:
            crosses = any(e.kind in ("export", "import") for e in internal)
            code = "R613" if crosses else "R611"
            where = (" and the cycle crosses the says boundary, so a "
                     "remote peer can extend the chain indefinitely"
                     if crosses else "")
            diagnostics.append(Diagnostic(
                code,
                f"delegation through {anchor!r} recurses without a "
                f"depth bound ({rendered}){where}; add a decreasing "
                f"guard column (dd2b-style N > 0 with N-1 in the head)",
                file=ctx.file, span=culprit.span,
                rule_label=_label(culprit), pred=anchor))
        elif not any(_decreases_guarded_column(rule, component, guards)
                     for rule, guards in guarded_rules):
            rule = guarded_rules[0][0]
            diagnostics.append(Diagnostic(
                "R612",
                f"delegation cycle through {anchor!r} carries a depth "
                f"guard but never decreases the guarded column "
                f"({rendered}); the recursion stays unbounded",
                file=ctx.file, span=rule.span,
                rule_label=_label(rule), pred=anchor))
    return diagnostics


# ---------------------------------------------------------------------------
# Static cost — R701 / R702 / R703 / R704
# ---------------------------------------------------------------------------

#: Estimated distinct values per declared column type (the paper's
#: policies are small; these are deliberately coarse order-of-magnitude
#: figures — only *ratios* between estimates matter to the verdicts).
_TYPE_WIDTH = {
    "int": 1000.0, "float": 1000.0, "number": 1000.0, "string": 1000.0,
    "prin": 100.0, "principal": 100.0, "node": 16.0, "mode": 8.0,
    "rule": 200.0, "predicate": 50.0, "bool": 2.0,
}
_DEFAULT_WIDTH = 100.0
#: Cap on any single EDB relation's estimated cardinality.
_EDB_CAP = 1e4
#: Row estimate at which a Cartesian-prone body becomes an R701 warning.
CARTESIAN_THRESHOLD = 1e7
#: Row estimate at which a rule touching exchanged predicates warns (R702).
EXCHANGE_THRESHOLD = 1e6
#: Widening cap — estimates at or above this are "does not stabilize".
_COST_CAP = 1e12


def _type_width(type_name: Optional[str]) -> float:
    if type_name is None:
        return _DEFAULT_WIDTH
    return _TYPE_WIDTH.get(type_name, _DEFAULT_WIDTH)


def _column_widths(catalog, pred: str, arity: int) -> list[float]:
    info = catalog.get(pred)
    if info is None:
        return [_DEFAULT_WIDTH] * arity
    return [_type_width(info.arg_types[i]
                        if i < len(info.arg_types) else None)
            for i in range(arity)]


def edb_estimate(catalog, pred: str, arity: int) -> float:
    """Estimated cardinality of an EDB relation from its declared types."""
    if arity <= 0:
        return 1.0
    rows = 1.0
    for width in _column_widths(catalog, pred, arity):
        rows *= width
    return min(rows, _EDB_CAP)


def _rule_var_widths(rule: Rule, catalog) -> dict:
    """Per-variable distinct-value estimate: the most selective declared
    column type the variable is bound at (min over its positions)."""
    widths: dict[str, float] = {}
    for item in rule.body:
        if not isinstance(item, Literal) or item.negated:
            continue
        atom = item.atom
        columns = _column_widths(catalog, atom.pred, len(atom.all_args))
        for position, term in enumerate(atom.all_args):
            if isinstance(term, Variable) and not _is_anon(term.name):
                width = columns[position]
                widths[term.name] = min(
                    widths.get(term.name, width), width)
    return widths


def estimate_rule(ctx, rule: Rule, values: dict, catalog
                  ) -> tuple[float, list]:
    """``(row estimate, Cartesian-prone literals)`` for one rule body.

    Standard System-R style arithmetic: literals multiply in their
    cardinality, each equi-join variable divides by its distinct-value
    width, constants select one value out of their column's width.  A
    positive literal sharing no variable with everything bound before it
    is Cartesian-prone.
    """
    rows = 1.0
    bound: set = set()
    first = True
    cartesian: list = []
    var_widths = _rule_var_widths(rule, catalog)
    for item in rule.body:
        if not isinstance(item, Literal) or item.negated:
            continue
        atom = item.atom
        pred = atom.pred
        if pred == "says" or _is_builtin(ctx, pred):
            continue
        arity = len(atom.all_args)
        card = values.get(pred)
        if card is None or card <= 0.0:
            card = edb_estimate(catalog, pred, arity)
        columns = _column_widths(catalog, pred, arity)
        names: set = set()
        for position, term in enumerate(atom.all_args):
            if isinstance(term, Variable):
                if not _is_anon(term.name):
                    names.add(term.name)
            elif isinstance(term, Constant):
                card /= max(columns[position], 1.0)
        card = max(card, 1.0)
        shared = names & bound
        if not first and not shared and card > 1.0:
            cartesian.append(item)
        rows *= card
        for name in sorted(shared):
            rows /= max(var_widths.get(name, _DEFAULT_WIDTH), 1.0)
        rows = max(rows, 1.0)
        bound |= names
        first = False
    return min(rows, _COST_CAP), cartesian


def _cost_catalog(ctx):
    """Harvest declared types; shape errors are the types pass's job."""
    from ..datalog.errors import WorkspaceError
    from ..workspace.catalog import Catalog

    catalog = Catalog()
    for statement in ctx.statements:
        try:
            if isinstance(statement, Rule):
                catalog.observe_rule(statement)
            elif isinstance(statement, Constraint):
                catalog.observe_constraint(statement)
        except WorkspaceError:
            continue
    return catalog


def cost_pass(ctx) -> list[Diagnostic]:
    """Cardinality propagation: Cartesian products and shard explosions.

    * R701 — a body joins literals with no shared variable and the
      estimate crosses :data:`CARTESIAN_THRESHOLD`;
    * R702 — under a multi-node placement, a rule touching exchanged
      predicates estimates above :data:`EXCHANGE_THRESHOLD` rows per
      round of network exchange;
    * R703 — Cartesian-prone body below the R701 threshold (info);
    * R704 — a recursive component's estimate fails to stabilize even
      with widening (info).
    """
    shape = _harvest_shape(ctx)
    if not shape.rules and not shape.fact_counts:
        return []
    catalog = _cost_catalog(ctx)
    exempt = {"says"}

    equations: list[FlowEquation] = []
    arities: dict[str, int] = {}
    for rule in shape.rules:
        for item in rule.body:
            if isinstance(item, Literal):
                arities.setdefault(item.atom.pred, len(item.atom.all_args))
    for pred, count in sorted(shape.fact_counts.items()):
        equations.append(FlowEquation(pred, (FlowEdge(
            seed=float(count), kind="seed"),), kind="seed"))
    for pred in sorted(shape.read - shape.derived - exempt):
        if _is_builtin(ctx, pred):
            continue
        equations.append(FlowEquation(pred, (FlowEdge(
            seed=edb_estimate(catalog, pred, arities.get(pred, 1)),
            kind="seed"),), kind="seed"))
    rule_equations: list[FlowEquation] = []
    for rule in shape.rules:
        reads = tuple(
            FlowEdge(pred=item.atom.pred, span=item.span)
            for item in rule.body
            if isinstance(item, Literal) and not item.negated
            and item.atom.pred != "says"
            and not _is_builtin(ctx, item.atom.pred))
        for head in rule.heads:
            if head.pred == "says":
                continue
            equation = FlowEquation(head.pred, reads, rule=rule)
            equations.append(equation)
            rule_equations.append(equation)

    lattice = CardinalityLattice(cap=_COST_CAP)

    def transfer(equation, values):
        if equation.kind == "seed":
            return _join_reads(lattice, equation, values)
        return estimate_rule(ctx, equation.rule, values, catalog)[0]

    solution = solve(equations, lattice, transfer=transfer, max_rounds=6)

    diagnostics: list[Diagnostic] = []
    seen_rules: set = set()
    placement = ctx.placement
    multi_node = placement is not None and len(placement.nodes) > 1
    for equation in rule_equations:
        rule = equation.rule
        if id(rule) in seen_rules:
            continue
        seen_rules.add(id(rule))
        estimate, cartesian = estimate_rule(ctx, rule, solution.values,
                                            catalog)
        if cartesian:
            literal = cartesian[0]
            if estimate >= CARTESIAN_THRESHOLD:
                diagnostics.append(Diagnostic(
                    "R701",
                    f"body of {equation.head!r} joins "
                    f"{literal.atom.pred!r} with no shared variable; the "
                    f"Cartesian product is estimated at ~{estimate:.0e} "
                    f"rows — bind a join variable or split the rule",
                    file=ctx.file, span=literal.span or rule.span,
                    rule_label=_label(rule), pred=equation.head))
            else:
                diagnostics.append(Diagnostic(
                    "R703",
                    f"body of {equation.head!r} joins "
                    f"{literal.atom.pred!r} with no shared variable "
                    f"(Cartesian-prone; ~{estimate:.0e} rows estimated)",
                    file=ctx.file, span=literal.span or rule.span,
                    rule_label=_label(rule), pred=equation.head))
        if multi_node and estimate >= EXCHANGE_THRESHOLD:
            from ..cluster.placement_check import exchanged_rule_preds

            touched = exchanged_rule_preds(rule, placement)
            if touched:
                diagnostics.append(Diagnostic(
                    "R702",
                    f"rule for {equation.head!r} is estimated at "
                    f"~{estimate:.0e} rows against exchanged "
                    f"predicate(s) {sorted(touched)} on a "
                    f"{len(placement.nodes)}-node placement; every "
                    f"derivation round ships that volume across shards",
                    file=ctx.file, span=rule.span,
                    rule_label=_label(rule), pred=equation.head))

    # A recursive component whose estimate climbs to the cap "converged"
    # only because the lattice is capped — that is non-stabilization too,
    # whether widening forced it there or plain iteration did.
    cyclic_preds: set = set()
    for component in tarjan_sccs(solution.graph):
        if len(component) > 1 or any(
                p in solution.graph.positive.get(p, ())
                for p in component):
            cyclic_preds |= set(component)
    runaway = set(solution.unstable)
    for equation in rule_equations:
        if (equation.head in cyclic_preds
                and solution.value(equation.head) >= _COST_CAP):
            runaway.add(equation.head)
    for pred in sorted(runaway):
        culprit = next((eq.rule for eq in solution.by_head.get(pred, ())
                        if eq.rule is not None), None)
        diagnostics.append(Diagnostic(
            "R704",
            f"recursive cardinality estimate for {pred!r} does not "
            f"stabilize (≥ {_COST_CAP:.0e} rows after widening); add a "
            f"depth bound or a key constraint to make the recursion "
            f"converge",
            file=ctx.file,
            span=culprit.span if culprit is not None else None,
            rule_label=_label(culprit) if culprit is not None else None,
            pred=pred))
    return diagnostics
