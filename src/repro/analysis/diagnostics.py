"""Diagnostics: stable codes, severities, spans, and two renderings.

Every static finding the analyzer produces is a :class:`Diagnostic` with a
stable code (``R201``), a severity, and — when the parser attached a
:class:`~repro.datalog.terms.Span` — a precise ``file:line:col`` location.
Codes are grouped in families of one hundred:

========  =========  ==================================================
family    severity   meaning
========  =========  ==================================================
R0xx      error      parse / safety (range restriction, schedulability)
R1xx      error      stratification (negation/aggregation in a cycle)
R2xx      mixed      catalog: arity clashes (error), type conflicts (warn)
R3xx      info       dead code: underivable preds, singletons, dead rules
R4xx      warning    attribution: says-shipped predicates read plainly
R5xx      error      placement: join co-location, distributability
R6xx      mixed      dataflow: authority taint (warn), delegation depth
R7xx      mixed      static cost: Cartesian/shard explosions (warn/info)
========  =========  ==================================================

Severity drives exit codes and the load-time gates: *errors* always
reject, *warnings* reject only under ``--strict``, *info* findings never
reject (the paper's own listings contain benign singletons).

A diagnostic can be suppressed in place with an inline pragma on the
offending line — ``%# check: ignore[R302]`` in program syntax (``%``
starts a comment in every dialect), ``# check: ignore[R302]`` in a
``.py`` embedding, ``ignore[]`` for every code.  Suppressed findings are
never silently dropped: they are partitioned out
(:func:`partition_suppressed`) and counted in the JSON report under
``suppressed``.

The JSON rendering is schema-versioned (``repro-check/v1``) following the
``repro-bench/v1`` convention, so CI jobs and external tooling can consume
reports without sniffing shapes.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from ..datalog.terms import Span

#: JSON report schema identifier (bump on incompatible changes).
SCHEMA = "repro-check/v1"

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Rendering / sorting order of severities, most severe first.
SEVERITIES = (ERROR, WARNING, INFO)

#: code → (severity, short title).  The table is the contract: codes are
#: append-only and never change meaning across versions.
CODES: dict[str, tuple[str, str]] = {
    "R000": (ERROR, "parse error"),
    "R001": (ERROR, "head variable not bound by the body"),
    "R002": (WARNING, "unbound variable in negated literal"),
    "R003": (ERROR, "unschedulable comparison or builtin call"),
    "R101": (ERROR, "negation inside a recursive cycle"),
    "R102": (ERROR, "aggregation inside a recursive cycle"),
    "R201": (ERROR, "predicate arity clash"),
    "R202": (WARNING, "variable pinned to incompatible declared types"),
    "R301": (INFO, "body predicate has no derivation or declaration"),
    "R302": (INFO, "singleton variable"),
    "R303": (INFO, "rule body is unsatisfiable"),
    "R401": (WARNING, "says-shipped predicate read without attribution"),
    "R501": (ERROR, "join is not co-located under the placement"),
    "R502": (ERROR, "nonmonotone stratum over exchanged predicates"),
    "R601": (WARNING, "authorization decision reachable from "
                      "unattributed input"),
    "R602": (WARNING, "says-exported predicate derived from "
                      "unattributed input"),
    "R603": (INFO, "authorization decision ignores attributed input"),
    "R611": (WARNING, "unbounded delegation recursion"),
    "R612": (WARNING, "delegation depth guard never decreases"),
    "R613": (WARNING, "unbounded delegation cycle crosses the says "
                      "boundary"),
    "R701": (WARNING, "estimated Cartesian join explosion"),
    "R702": (WARNING, "estimated cross-shard exchange volume"),
    "R703": (INFO, "body literals joined without a shared variable"),
    "R704": (INFO, "recursive cardinality estimate does not stabilize"),
}


def severity_of(code: str) -> str:
    return CODES[code][0]


@dataclass(frozen=True)
class Diagnostic:
    """One static finding, locatable and machine-readable."""

    code: str
    message: str
    file: Optional[str] = None
    span: Optional[Span] = field(default=None)
    rule_label: Optional[str] = None
    pred: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> str:
        return severity_of(self.code)

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def location(self) -> str:
        """``file:line:col`` (best effort — parts may be unknown)."""
        name = self.file or "<input>"
        if self.span is None:
            return name
        return f"{name}:{self.span.line}:{self.span.column}"

    def shifted(self, line_offset: int, file: Optional[str] = None
                ) -> "Diagnostic":
        """Relocate into an embedding file (programs inside ``.py`` files)."""
        span = self.span
        if span is not None and line_offset:
            span = Span(span.line + line_offset, span.column)
        return replace(self, span=span,
                       file=file if file is not None else self.file)

    def to_json(self) -> dict:
        data: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.file is not None:
            data["file"] = self.file
        if self.span is not None:
            data["line"] = self.span.line
            data["column"] = self.span.column
        if self.rule_label is not None:
            data["rule"] = self.rule_label
        if self.pred is not None:
            data["pred"] = self.pred
        return data

    @classmethod
    def from_json(cls, data: dict) -> "Diagnostic":
        span = None
        if "line" in data:
            span = Span(int(data["line"]), int(data.get("column", 1)))
        return cls(
            code=data["code"],
            message=data["message"],
            file=data.get("file"),
            span=span,
            rule_label=data.get("rule"),
            pred=data.get("pred"),
        )


def sort_key(diagnostic: Diagnostic):
    span = diagnostic.span
    return (
        diagnostic.file or "",
        span.line if span else 0,
        span.column if span else 0,
        diagnostic.code,
        diagnostic.message,
    )


def summarize(diagnostics: Iterable[Diagnostic]) -> dict:
    counts = {severity: 0 for severity in SEVERITIES}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return {"errors": counts[ERROR], "warnings": counts[WARNING],
            "infos": counts[INFO]}


# ---------------------------------------------------------------------------
# Inline suppression pragmas
# ---------------------------------------------------------------------------

#: ``%# check: ignore[R302]`` (program text), ``//# ...`` (C-style
#: comments), or ``# ...`` (.py embeddings).  An empty bracket
#: suppresses every code on that line.
_PRAGMA = re.compile(
    r"(?:%|//)?#\s*check:\s*ignore\[([A-Za-z0-9_\s,]*)\]")


def scan_suppressions(source: str) -> dict[int, frozenset]:
    """Line number → codes suppressed there (empty set = all codes)."""
    suppressions: dict[int, frozenset] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is not None:
            codes = frozenset(code.strip()
                              for code in match.group(1).split(",")
                              if code.strip())
            suppressions[lineno] = codes
    return suppressions


def partition_suppressed(diagnostics: Iterable[Diagnostic],
                         suppressions: dict
                         ) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Split diagnostics into (kept, suppressed) against a pragma map.

    A diagnostic is suppressed when a pragma sits on its span's line and
    either names its code or names no code at all.  Span-less
    diagnostics are never suppressed — there is no line to anchor the
    pragma to.
    """
    kept: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diagnostic in diagnostics:
        codes = (suppressions.get(diagnostic.span.line)
                 if diagnostic.span is not None else None)
        if codes is not None and (not codes or diagnostic.code in codes):
            suppressed.append(diagnostic)
        else:
            kept.append(diagnostic)
    return kept, suppressed


def failed(diagnostics: Iterable[Diagnostic], strict: bool = False) -> bool:
    """True when the report should reject: errors, or warnings + strict."""
    for diagnostic in diagnostics:
        if diagnostic.severity == ERROR:
            return True
        if strict and diagnostic.severity == WARNING:
            return True
    return False


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------

def excerpt(source: str, span: Span) -> Optional[str]:
    """The offending source line with a caret under the span's column."""
    lines = source.splitlines()
    if not 1 <= span.line <= len(lines):
        return None
    line = lines[span.line - 1]
    caret = " " * max(span.column - 1, 0) + "^"
    return f"  {line}\n  {caret}"


def render_text(diagnostics: Iterable[Diagnostic],
                sources: Optional[dict] = None,
                suppressed: Iterable[Diagnostic] = ()) -> str:
    """Human-readable report; ``sources`` maps file name → program text."""
    out: list[str] = []
    ordered = sorted(diagnostics, key=sort_key)
    for diagnostic in ordered:
        out.append(f"{diagnostic.location()}: {diagnostic.severity} "
                   f"[{diagnostic.code}] {diagnostic.message}")
        if sources and diagnostic.span is not None:
            source = sources.get(diagnostic.file or "<input>")
            if source is not None:
                snippet = excerpt(source, diagnostic.span)
                if snippet is not None:
                    out.append(snippet)
    summary = summarize(ordered)
    line = (f"{summary['errors']} error(s), {summary['warnings']} "
            f"warning(s), {summary['infos']} info(s)")
    suppressed = list(suppressed)
    if suppressed:
        line += f", {len(suppressed)} suppressed"
    out.append(line)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# JSON rendering (schema repro-check/v1)
# ---------------------------------------------------------------------------

def report_to_json(diagnostics: Iterable[Diagnostic],
                   strict: bool = False,
                   suppressed: Iterable[Diagnostic] = ()) -> dict:
    ordered = sorted(diagnostics, key=sort_key)
    hidden = sorted(suppressed, key=sort_key)
    summary = summarize(ordered)
    summary["suppressed"] = len(hidden)
    return {
        "schema": SCHEMA,
        "strict": strict,
        "ok": not failed(ordered, strict),
        "summary": summary,
        "diagnostics": [d.to_json() for d in ordered],
        # Pragma-suppressed findings are reported, never dropped.
        "suppressed": [d.to_json() for d in hidden],
    }


def report_from_json(data: dict) -> list[Diagnostic]:
    """Parse a report back into diagnostics; validates the schema tag."""
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported report schema {data.get('schema')!r}; "
            f"expected {SCHEMA!r}")
    return [Diagnostic.from_json(item) for item in data["diagnostics"]]


def dumps_report(diagnostics: Iterable[Diagnostic],
                 strict: bool = False,
                 suppressed: Iterable[Diagnostic] = ()) -> str:
    return json.dumps(report_to_json(diagnostics, strict, suppressed),
                      indent=2, sort_keys=True)
