"""The analyzer's pass families.

Each pass is a function ``(ctx) -> list[Diagnostic]`` over an
:class:`~repro.analysis.pipeline.AnalysisContext`.  Passes reuse the
engine's own machinery rather than re-deriving it — safety verdicts come
from :func:`repro.datalog.runtime.check_rule_safety` (the authority the
workspace consults at activation), stratification from
:mod:`repro.datalog.stratify`, and placement from
:func:`repro.cluster.placement_check.analyze_join_compatibility` — so a
program the analyzer rejects is exactly a program the runtime would
reject, and the pass's job is to *explain* the rejection with a stable
code and a source span.

Pass families (see :mod:`repro.analysis.diagnostics` for the code table):

* ``safety`` — R001/R002/R003, range restriction and schedulability;
* ``stratification`` — R101/R102, with the offending cycle spelled out;
* ``types`` — R201 arity clashes (errors), R202 type conflicts
  (warnings; the core inference lives here and
  :mod:`repro.workspace.typecheck` delegates to it);
* ``deadcode`` — R301/R302/R303, informational;
* ``attribution`` — R401, says-shipped predicates read unattributed;
* ``placement`` — R501/R502, a placement dry-run without a cluster;
* ``authority`` — R601-R603, taint flow into authorization decisions
  (:mod:`repro.analysis.dataflow`);
* ``delegation`` — R611-R613, unbounded delegation recursion;
* ``cost`` — R701-R704, static cardinality/selectivity estimates.
"""

from __future__ import annotations

from typing import Optional

from ..datalog.errors import ReproError, WorkspaceError
from ..datalog.stratify import dependency_graph, find_negative_cycle, stratify
from ..datalog.terms import (
    BuiltinCall,
    Comparison,
    Constant,
    Constraint,
    Literal,
    Quote,
    Rule,
)
from ..workspace.catalog import Catalog
from .dataflow import (
    SYSTEM_PREDS as _SYSTEM_PREDS,
    authority_pass,
    cost_pass,
    delegation_pass,
    quoted_functors as _quote_functors,
)
from .diagnostics import Diagnostic


def _meta_preds() -> frozenset:
    from ..meta.model import ALL_META_PREDS
    return ALL_META_PREDS


def _var_names(item) -> set:
    return {v.name for v in item.variables()}


def _label(rule: Rule) -> Optional[str]:
    return rule.label


# ---------------------------------------------------------------------------
# safety — R001 / R002 / R003
# ---------------------------------------------------------------------------

def safety_pass(ctx) -> list[Diagnostic]:
    """Range restriction and body schedulability.

    The verdict is the engine's (:func:`check_rule_safety` on the compiled
    rule); this pass only runs the classification when the engine rejects,
    so it can never flag a program the runtime accepts.
    """
    from ..datalog.runtime import check_rule_safety

    diagnostics: list[Diagnostic] = []
    for rule, compiled, error in ctx.compiled_rules():
        if compiled is None:
            diagnostics.append(Diagnostic(
                "R003", f"rule does not compile: {error}",
                file=ctx.file, span=rule.span, rule_label=_label(rule)))
            continue
        if compiled.is_fact():
            continue
        diagnostics.extend(_negated_unbound(ctx, rule, compiled))
        try:
            check_rule_safety(compiled, ctx.builtins)
        except ReproError as exc:
            diagnostics.extend(
                _classify_safety(ctx, rule, compiled, exc))
    return diagnostics


def _negated_unbound(ctx, rule: Rule, compiled: Rule) -> list[Diagnostic]:
    """R002 — the engine evaluates ``!r(Y)`` with unbound ``Y`` as plain
    non-existence, which is usually an unintended widening; warn."""
    from ..datalog.runtime import bindable_vars

    bound = None
    found: list[Diagnostic] = []
    for item in compiled.body:
        if not isinstance(item, Literal) or not item.negated:
            continue
        if bound is None:
            bound = bindable_vars(compiled.body, ctx.builtins)
        missing = sorted(n for n in _var_names(item)
                         if n not in bound and not _is_anon(n))
        if missing:
            found.append(Diagnostic(
                "R002",
                f"variable(s) {', '.join(missing)} in negated literal "
                f"!{item.atom.pred} are never bound by a positive literal "
                f"(the negation only checks non-existence; use _ if that "
                f"is intended)", file=ctx.file,
                span=item.span or rule.span, rule_label=_label(rule),
                pred=item.atom.pred))
    return found


def _is_anon(name: str) -> bool:
    """Parser-generated anonymous variables (from ``_``)."""
    return name.startswith("_")


def _classify_safety(ctx, rule: Rule, compiled: Rule,
                     exc: Exception) -> list[Diagnostic]:
    from ..datalog.runtime import bindable_vars

    found: list[Diagnostic] = []
    bound = bindable_vars(compiled.body, ctx.builtins)
    if compiled.agg is not None:
        bound.add(compiled.agg.result.name)

    for item in compiled.body:
        if isinstance(item, Comparison) and item.op != "=":
            missing = sorted(n for n in _var_names(item) if n not in bound)
            if missing:
                found.append(Diagnostic(
                    "R003",
                    f"comparison {item.left!r} {item.op} {item.right!r} "
                    f"reads unbound variable(s) {', '.join(missing)}",
                    file=ctx.file, span=item.span or rule.span,
                    rule_label=_label(rule)))
        elif isinstance(item, BuiltinCall):
            definition = ctx.builtins.lookup(item.name)
            outputs = set(definition.output_positions) if definition else set()
            missing = sorted(
                name
                for position, arg in enumerate(item.args)
                if position not in outputs
                for name in _var_names(arg)
                if name not in bound)
            if missing:
                found.append(Diagnostic(
                    "R003",
                    f"builtin {item.name} reads unbound variable(s) "
                    f"{', '.join(missing)} at input positions",
                    file=ctx.file, span=rule.span, rule_label=_label(rule)))

    for head in compiled.heads:
        unsafe: list[str] = []
        for term in head.all_args:
            if isinstance(term, Quote):
                continue  # head templates legitimately keep variables
            unsafe.extend(n for n in _var_names(term) if n not in bound)
        if unsafe:
            found.append(Diagnostic(
                "R001",
                f"head variable(s) {', '.join(sorted(set(unsafe)))} of "
                f"{head.pred!r} are not bound by the rule body "
                f"(not range-restricted)", file=ctx.file,
                span=head.span or rule.span, rule_label=_label(rule),
                pred=head.pred))

    if not found:
        found.append(Diagnostic(
            "R003", str(exc), file=ctx.file, span=rule.span,
            rule_label=_label(rule)))
    return found


# ---------------------------------------------------------------------------
# stratification — R101 / R102
# ---------------------------------------------------------------------------

def stratification_pass(ctx) -> list[Diagnostic]:
    """Negation/aggregation through recursion, with the cycle spelled out."""
    compiled = [c for _, c, _ in ctx.compiled_rules() if c is not None]
    if not compiled:
        return []
    graph = dependency_graph(compiled)
    offending = find_negative_cycle(graph)
    if offending is None:
        return []
    source, target, cycle = offending
    rendered = " -> ".join(cycle)
    # Attribute the cycle to the rule that closes it: a rule deriving
    # ``target`` from ``source`` under negation (R101) or aggregation
    # (R102).
    culprit: Optional[Rule] = None
    code = "R101"
    via = "negation"
    for rule, compiled_rule, _ in ctx.compiled_rules():
        if compiled_rule is None:
            continue
        heads = {h.pred for h in compiled_rule.heads}
        if target not in heads:
            continue
        for item in compiled_rule.body:
            if not isinstance(item, Literal) or item.atom.pred != source:
                continue
            if item.negated:
                culprit, code, via = rule, "R101", "negation"
                break
            if compiled_rule.agg is not None:
                culprit, code, via = rule, "R102", "aggregation"
                break
        if culprit is not None:
            break
    return [Diagnostic(
        code,
        f"predicate {target!r} depends on {source!r} through {via} inside "
        f"a recursive cycle ({rendered}); the program is not stratifiable",
        file=ctx.file,
        span=culprit.span if culprit is not None else None,
        rule_label=_label(culprit) if culprit is not None else None,
        pred=target)]


# ---------------------------------------------------------------------------
# types — R201 / R202
# ---------------------------------------------------------------------------

_COMPATIBLE = {
    frozenset({"int", "number"}),
    frozenset({"float", "number"}),
}


def compatible_types(a: str, b: str) -> bool:
    """Primitives are compatible with themselves (and ``any``); user types
    are nominal.  ``number`` abstracts over ``int``/``float``."""
    if a == b or "any" in (a, b):
        return True
    return frozenset({a, b}) in _COMPATIBLE


def infer_type_clashes(rule: Rule, catalog: Catalog) -> list[tuple]:
    """``(variable, (types...))`` for variables at incompatible positions.

    This is the core inference behind
    :func:`repro.workspace.typecheck.typecheck_rule`, which wraps the
    result in its legacy ``TypeIssue`` shape.
    """
    var_types: dict[str, set] = {}

    def observe(atom) -> None:
        from ..datalog.terms import Variable
        info = catalog.get(atom.pred)
        if info is None or not info.declared:
            return
        for position, term in enumerate(atom.all_args):
            if not isinstance(term, Variable):
                continue
            declared = (info.arg_types[position]
                        if position < len(info.arg_types) else None)
            if declared is None:
                continue
            var_types.setdefault(term.name, set()).add(declared)

    for head in rule.heads:
        observe(head)
    for item in rule.body:
        if isinstance(item, Literal):
            observe(item.atom)

    clashes: list[tuple] = []
    for name, types in sorted(var_types.items()):
        concrete = sorted(types)
        clash = any(
            not compatible_types(a, b)
            for i, a in enumerate(concrete)
            for b in concrete[i + 1:]
        )
        if clash:
            clashes.append((name, tuple(concrete)))
    return clashes


def types_pass(ctx) -> list[Diagnostic]:
    """Arity clashes (R201, errors) and type conflicts (R202, warnings)."""
    diagnostics: list[Diagnostic] = []
    catalog = Catalog()

    def observe(atom, span, label) -> None:
        if ctx.builtins.lookup(atom.pred) is not None:
            return  # builtin calls never reach the catalog
        try:
            catalog.observe_atom(atom)
        except WorkspaceError as exc:
            diagnostics.append(Diagnostic(
                "R201", str(exc), file=ctx.file, span=atom.span or span,
                rule_label=label, pred=atom.pred))

    for statement in ctx.statements:
        if isinstance(statement, Rule):
            for head in statement.heads:
                observe(head, statement.span, _label(statement))
            for item in statement.body:
                if isinstance(item, Literal):
                    observe(item.atom, statement.span, _label(statement))
        elif isinstance(statement, Constraint):
            try:
                catalog.observe_constraint(statement)
            except WorkspaceError as exc:
                diagnostics.append(Diagnostic(
                    "R201", str(exc), file=ctx.file, span=statement.span,
                    rule_label=statement.label))

    for statement in ctx.statements:
        if not isinstance(statement, Rule):
            continue
        for name, types in infer_type_clashes(statement, catalog):
            diagnostics.append(Diagnostic(
                "R202",
                f"variable {name} is used at positions typed "
                f"{', '.join(types)}", file=ctx.file, span=statement.span,
                rule_label=_label(statement)))
    return diagnostics


# ---------------------------------------------------------------------------
# deadcode — R301 / R302 / R303  (informational)
# ---------------------------------------------------------------------------

def deadcode_pass(ctx) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    derivable: set = set()
    declared: set = set()
    says_functors: set = set()

    for statement in ctx.statements:
        if isinstance(statement, Rule):
            for head in statement.heads:
                derivable.add(head.pred)
                says_functors |= _quote_functors(head)
            for item in statement.body:
                if isinstance(item, Literal):
                    says_functors |= _quote_functors(item.atom)
        elif isinstance(statement, Constraint):
            for side in (statement.lhs, statement.rhs):
                for alternative in side:
                    for item in alternative:
                        if isinstance(item, Literal):
                            declared.add(item.atom.pred)

    exempt = (derivable | declared | says_functors | _SYSTEM_PREDS
              | _meta_preds())
    reported: set = set()

    for statement in ctx.statements:
        if not isinstance(statement, Rule) or statement.is_fact():
            continue
        # R301 — a positive body read nothing in the program can supply.
        for item in statement.body:
            if not isinstance(item, Literal) or item.negated:
                continue
            pred = item.atom.pred
            if pred in exempt or pred in reported:
                continue
            if ctx.builtins.lookup(pred) is not None:
                continue
            reported.add(pred)
            diagnostics.append(Diagnostic(
                "R301",
                f"predicate {pred!r} is read here but has no rule, fact, "
                f"or declaration in this program (external EDB input?)",
                file=ctx.file, span=item.span or statement.span,
                rule_label=_label(statement), pred=pred))
        # R302 — singleton variables.
        counts: dict[str, int] = {}
        for variable in statement.variables():
            counts[variable.name] = counts.get(variable.name, 0) + 1
        for name in sorted(n for n, c in counts.items()
                           if c == 1 and not _is_anon(n)):
            diagnostics.append(Diagnostic(
                "R302",
                f"variable {name} occurs only once in this rule "
                f"(use _ if the value is deliberately ignored)",
                file=ctx.file, span=statement.span,
                rule_label=_label(statement)))
        # R303 — unsatisfiable bodies.
        reason = _unsatisfiable(statement)
        if reason is not None:
            diagnostics.append(Diagnostic(
                "R303", f"rule can never fire: {reason}",
                file=ctx.file, span=statement.span,
                rule_label=_label(statement)))
    return diagnostics


_IRREFLEXIVE = {"<", ">", "!="}


def _unsatisfiable(rule: Rule) -> Optional[str]:
    positive = set()
    negative = set()
    for item in rule.body:
        if isinstance(item, Literal):
            (negative if item.negated else positive).add(item.atom)
        elif isinstance(item, Comparison):
            if item.left == item.right and item.op in _IRREFLEXIVE:
                return (f"comparison {item.left!r} {item.op} "
                        f"{item.right!r} is always false")
            if (isinstance(item.left, Constant)
                    and isinstance(item.right, Constant)):
                try:
                    if not _eval_const(item.op, item.left.value,
                                       item.right.value):
                        return (f"comparison {item.left!r} {item.op} "
                                f"{item.right!r} is always false")
                except TypeError:
                    pass
    clash = positive & negative
    if clash:
        atom = sorted(clash, key=repr)[0]
        return f"body contains both {atom!r} and !{atom!r}"
    return None


def _eval_const(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


# ---------------------------------------------------------------------------
# attribution — R401
# ---------------------------------------------------------------------------

def attribution_pass(ctx) -> list[Diagnostic]:
    """Says-shipped predicates read as plain literals.

    A predicate that only ever arrives through the authenticated ``says``
    channel (it is exported by a ``says(...)`` head or imported by a
    ``says(...)`` body pattern, and no local rule or fact derives it) must
    be read through a ``says`` pattern — a plain read silently drops the
    attribution the paper's section 4.1 machinery establishes.
    """
    exported: set = set()
    imported: set = set()
    derived: set = set()
    declared: set = set()

    for statement in ctx.statements:
        if isinstance(statement, Rule):
            for head in statement.heads:
                if head.pred == "says":
                    exported |= _quote_functors(head)
                else:
                    derived.add(head.pred)
            for item in statement.body:
                if isinstance(item, Literal) and item.atom.pred == "says":
                    imported |= _quote_functors(item.atom)
        elif isinstance(statement, Constraint):
            for side in (statement.lhs, statement.rhs):
                for alternative in side:
                    for item in alternative:
                        if isinstance(item, Literal):
                            declared.add(item.atom.pred)

    # Only *imports* break attribution: a predicate that arrives through a
    # says body pattern carries its speaker, and a plain read discards it.
    # Reading a predicate this context *exports* is ordinary local use
    # (e.g. the paper's dd3 reads inferredDelDepth while shipping it).
    shipped_only = imported - derived - declared
    if not shipped_only:
        return []

    diagnostics: list[Diagnostic] = []
    for statement in ctx.statements:
        if not isinstance(statement, Rule) or statement.is_fact():
            continue
        for item in statement.body:
            if not isinstance(item, Literal) or item.negated:
                continue
            pred = item.atom.pred
            if pred in shipped_only and pred != "says":
                diagnostics.append(Diagnostic(
                    "R401",
                    f"predicate {pred!r} travels through says (it is "
                    f"{'exported' if pred in exported else 'imported'} as "
                    f"a quoted pattern) but is read here as a plain "
                    f"literal with no local derivation — the attribution "
                    f"chain is broken", file=ctx.file,
                    span=item.span or statement.span,
                    rule_label=_label(statement), pred=pred))
    return diagnostics


# ---------------------------------------------------------------------------
# placement — R501 / R502
# ---------------------------------------------------------------------------

def placement_pass(ctx) -> list[Diagnostic]:
    """Dry-run the cluster's static placement checks, no cluster needed."""
    if ctx.placement is None:
        return []
    from ..cluster.placement_check import analyze_join_compatibility
    from ..datalog.engine import normalize_rules
    from ..datalog.errors import StratificationError

    spans: dict[str, tuple] = {}
    engine_rules = []
    for rule, compiled, _ in ctx.compiled_rules():
        if compiled is None or compiled.is_fact():
            continue
        for engine_rule in normalize_rules([compiled]):
            label = engine_rule.label or engine_rule.head.pred
            spans.setdefault(label, (rule.span, rule.label))
            engine_rules.append(engine_rule)

    diagnostics: list[Diagnostic] = []
    for issue in analyze_join_compatibility(engine_rules, ctx.placement):
        span, label = spans.get(issue.rule_label, (None, None))
        diagnostics.append(Diagnostic(
            "R501", issue.detail, file=ctx.file, span=span,
            rule_label=label or issue.rule_label,
            pred=issue.preds[0][0] if issue.preds else None))

    if len(ctx.placement.nodes) > 1:
        exchanged = set(ctx.placement.exchanged_preds())
        if exchanged:
            try:
                strata = stratify(engine_rules)
            except StratificationError:
                strata = []  # already reported by the stratification pass
            for stratum in strata:
                if not stratum.nonmonotone:
                    continue
                touched = (stratum.reads | stratum.preds) & exchanged
                if touched:
                    diagnostics.append(Diagnostic(
                        "R502",
                        f"negation/aggregation over exchanged "
                        f"predicate(s) {sorted(touched)} cannot be "
                        f"evaluated on a {len(ctx.placement.nodes)}-node "
                        f"cluster", file=ctx.file,
                        pred=sorted(touched)[0]))
    return diagnostics


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: name → pass function, in canonical execution order.
PASSES = {
    "safety": safety_pass,
    "stratification": stratification_pass,
    "types": types_pass,
    "deadcode": deadcode_pass,
    "attribution": attribution_pass,
    "placement": placement_pass,
    "authority": authority_pass,
    "delegation": delegation_pass,
    "cost": cost_pass,
}

#: Passes every surface runs by default.
DEFAULT_PASSES = tuple(PASSES)

#: Passes the load-time gates run: the engine-equivalent subset plus the
#: dataflow families, whose findings are warnings/infos (they surface in
#: ``last_check`` and the serve-plane load reply, never reject a load
#: unless a strict caller opts in).
GATE_PASSES = ("safety", "stratification", "types",
               "authority", "delegation", "cost")
