"""Analysis pipeline: context, pass runner, and the load-time gate.

The pipeline has three entry points:

* :func:`analyze_statements` — the core: run passes over already-parsed
  statements (what the :meth:`Workspace.load` / :meth:`Cluster.load`
  gates call, so the gate and the CLI share one implementation);
* :func:`analyze_source` — parse first (auto-detecting the surface
  dialect: core Datalog, Binder, or SeNDlog), turning parse failures into
  ``R000`` diagnostics instead of exceptions;
* :func:`raise_for_errors` — translate error diagnostics back into the
  exception types the runtime would have raised (``SafetyError``,
  ``StratificationError``, ``WorkspaceError``, ``ClusterError``), so
  gating a ``load()`` changes *when* a bad program is rejected, never
  *how*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..datalog.errors import (
    ClusterError,
    ParseError,
    ReproError,
    SafetyError,
    StratificationError,
    WorkspaceError,
)
from ..datalog.terms import Rule
from .diagnostics import (
    ERROR,
    Diagnostic,
    partition_suppressed,
    scan_suppressions,
    sort_key,
)
from .passes import DEFAULT_PASSES, GATE_PASSES, PASSES

__all__ = [
    "AnalysisContext",
    "DEFAULT_PASSES",
    "GATE_PASSES",
    "analyze_source",
    "analyze_statements",
    "detect_dialect",
    "raise_for_errors",
    "run_passes",
]


def default_builtins():
    """The registry the CLI analyzes against: standard + crypto schemes."""
    from ..crypto.datalog_builtins import register_crypto_builtins
    from ..datalog.builtins import standard_registry

    registry = standard_registry()
    register_crypto_builtins(registry)
    return registry


@dataclass
class AnalysisContext:
    """Everything a pass may consult, with compilation cached."""

    statements: list
    file: Optional[str] = None
    source: Optional[str] = None
    builtins: Optional[object] = None
    placement: Optional[object] = None  # cluster.partition.Partitioner
    _compiled: Optional[list] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.builtins is None:
            self.builtins = default_builtins()

    def compiled_rules(self) -> list:
        """``(rule, compiled | None, error | None)`` per non-fact rule.

        Compilation (me-resolution, quote → meta-join rewriting, builtin
        call extraction) is exactly what the workspace does before
        activating a rule, so every downstream pass sees the program the
        engine would evaluate.
        """
        if self._compiled is None:
            from ..meta.quote import compile_rule

            compiled: list = []
            for statement in self.statements:
                if not isinstance(statement, Rule) or statement.is_fact():
                    continue
                try:
                    result = compile_rule(statement, principal=None,
                                          builtins=self.builtins)
                    compiled.append((statement, result, None))
                except ReproError as exc:
                    compiled.append((statement, None, exc))
            self._compiled = compiled
        return self._compiled


def run_passes(ctx: AnalysisContext,
               passes: Optional[Iterable[str]] = None) -> list[Diagnostic]:
    """Run the named passes (default: all) and return sorted diagnostics."""
    names = tuple(passes) if passes is not None else DEFAULT_PASSES
    diagnostics: list[Diagnostic] = []
    for name in names:
        try:
            pass_fn = PASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown analysis pass {name!r}; "
                f"known: {', '.join(PASSES)}") from None
        diagnostics.extend(pass_fn(ctx))
    return sorted(diagnostics, key=sort_key)


def analyze_statements(statements: Iterable, *, file: Optional[str] = None,
                       source: Optional[str] = None, builtins=None,
                       placement=None,
                       passes: Optional[Iterable[str]] = None,
                       collect_suppressed: Optional[list] = None
                       ) -> list[Diagnostic]:
    """Analyze parsed statements; the shared core behind gate and CLI.

    When ``source`` is given, inline ``%# check: ignore[...]`` pragmas
    suppress matching diagnostics on their line; suppressed findings are
    appended to ``collect_suppressed`` (when supplied) so callers can
    report them — they are removed from the return value but never lost.
    """
    ctx = AnalysisContext(statements=list(statements), file=file,
                          source=source, builtins=builtins,
                          placement=placement)
    diagnostics = run_passes(ctx, passes)
    if source is not None:
        suppressions = scan_suppressions(source)
        if suppressions:
            diagnostics, suppressed = partition_suppressed(
                diagnostics, suppressions)
            if collect_suppressed is not None:
                collect_suppressed.extend(suppressed)
    return diagnostics


# ---------------------------------------------------------------------------
# Source-level entry (dialect detection, R000 on parse errors)
# ---------------------------------------------------------------------------

_SENDLOG_BLOCK = re.compile(r"(?m)^\s*At\s+[A-Za-z_][A-Za-z0-9_']*\s*:")
_BINDER_SAYS = re.compile(r"\b[A-Za-z_][\w']*\s+says\s+[A-Za-z_][\w']*\s*\(")

DIALECTS = ("auto", "core", "binder", "sendlog")


def detect_dialect(source: str) -> str:
    """Guess the surface syntax of a program text.

    ``At X:`` block headers mean SeNDlog; a ``P says p(...)`` literal or a
    ``:-`` arrow means Binder; anything else is core Datalog.
    """
    if _SENDLOG_BLOCK.search(source):
        return "sendlog"
    if _BINDER_SAYS.search(source) or ":-" in source:
        return "binder"
    return "core"


def parse_dialect(source: str, dialect: str = "auto") -> list:
    """Parse ``source`` in the given (or detected) dialect to statements."""
    if dialect == "auto":
        dialect = detect_dialect(source)
    if dialect == "core":
        from ..datalog.parser import parse_statements
        return list(parse_statements(source))
    if dialect == "binder":
        from ..languages.binder import parse_binder
        return list(parse_binder(source))
    if dialect == "sendlog":
        from ..languages.sendlog import parse_sendlog
        statements: list = []
        for block in parse_sendlog(source):
            statements.extend(block.statements)
        return statements
    raise ValueError(f"unknown dialect {dialect!r}; known: "
                     f"{', '.join(DIALECTS)}")


def analyze_source(source: str, *, file: Optional[str] = None,
                   dialect: str = "auto", builtins=None, placement=None,
                   passes: Optional[Iterable[str]] = None,
                   collect_suppressed: Optional[list] = None
                   ) -> list[Diagnostic]:
    """Parse (auto-detecting the dialect) and analyze one program text.

    A parse failure yields a single ``R000`` diagnostic carrying the
    parser's span instead of propagating :class:`ParseError`.
    ``collect_suppressed`` receives pragma-suppressed findings (see
    :func:`analyze_statements`).
    """
    from ..datalog.terms import Span

    try:
        statements = parse_dialect(source, dialect)
    except ParseError as exc:
        span = None
        line = getattr(exc, "line", 0)
        column = getattr(exc, "column", 0)
        if line:
            span = Span(line, max(column, 1))
        message = getattr(exc, "base_message", None) or str(exc)
        return [Diagnostic("R000", message, file=file, span=span)]
    return analyze_statements(statements, file=file, source=source,
                              builtins=builtins, placement=placement,
                              passes=passes,
                              collect_suppressed=collect_suppressed)


# ---------------------------------------------------------------------------
# The gate: diagnostics → the runtime's own exception types
# ---------------------------------------------------------------------------

#: code family prefix → exception the runtime raises for that family.
_GATE_EXCEPTIONS = (
    ("R0", SafetyError),
    ("R1", StratificationError),
    ("R2", WorkspaceError),
    ("R5", ClusterError),
)


def gate_exception(code: str) -> type:
    for prefix, exc_type in _GATE_EXCEPTIONS:
        if code.startswith(prefix):
            return exc_type
    return WorkspaceError  # pragma: no cover - every code maps above


def raise_for_errors(diagnostics: Iterable[Diagnostic],
                     source: Optional[str] = None) -> None:
    """Raise the runtime's exception type for the first error family.

    All error diagnostics are folded into one message (so a rejected load
    reports every problem at once), but the exception *type* is chosen
    from the most severe family ordering R0 < R1 < R2 < R5 — i.e. the
    first family in the code table that has an error — matching what the
    engine itself would have raised first.
    """
    errors = [d for d in diagnostics if d.severity == ERROR]
    if not errors:
        return
    errors.sort(key=lambda d: (d.code, sort_key(d)))
    exc_type = gate_exception(errors[0].code)
    lines = []
    for diagnostic in errors:
        lines.append(f"{diagnostic.location()}: [{diagnostic.code}] "
                     f"{diagnostic.message}")
    raise exc_type("static check rejected the program:\n  "
                   + "\n  ".join(lines))
