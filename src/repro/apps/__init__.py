"""Runnable applications built on the public API."""

from .filesystem import AccessDenied, DistributedFileSystem

__all__ = ["AccessDenied", "DistributedFileSystem"]
