"""The multi-user distributed file system (paper section 9, Figure 3).

The paper's demonstration: a file system whose access control combines
Binder authentication with D1LP delegation, entirely in declarative rules.
Four roles (one principal can hold several):

* **requester** — asks a store to read or write a file;
* **store** — holds files, forwards permission queries to owners, answers
  authorized requests (workflow ①②③④ of Figure 3a);
* **owner** — decides permission from its local ``permission`` table, or
  defers to access managers (Figure 3b);
* **access manager** — trusted decision maker holding ``mgrpermission``.

Owner decision modes (:meth:`DistributedFileSystem.set_owner_mode`):

``direct``
    the owner's own ``permission(me,U,F,M)`` table decides;
``delegated``
    managers answer ``permitted`` verdicts which the owner relays —
    combined with a del1 delegation and a depth restriction, the manager
    cannot re-delegate (the demonstration's depth restriction);
``threshold``
    managers answer ``mgrverdict`` facts; a wd2-style count over the
    receipt log derives ``permitted`` only when at least k managers
    concur (the demonstration's "more than three AccessManagers").

With ``secure=True`` (default) the system runs with the section 4.1
authorization meta-constraints: every message flow below is backed by an
explicit ``mayWrite`` grant, so an unsolicited verdict — say, a requester
vouching for itself — is rejected at import and audited.
"""

from __future__ import annotations

from typing import Optional

from ..core.delegation import install_threshold
from ..core.principal import Principal
from ..core.system import LBTrustSystem
from ..datalog.errors import ReproError


class AccessDenied(ReproError):
    """A request completed without an authorized response."""


#: File metadata declarations (paper rules f1-f6, with string file ids).
FILE_DECLARATIONS = """
f2: filename(F,S) -> string(F), string(S).
f3: filedata(F,S) -> string(F), string(S).
f4: fileowner(F,O) -> string(F), prin(O).
f5: filestore(F,P) -> string(F), prin(P).
f6: file(F) -> filename(F,_), filedata(F,_), fileowner(F,_), filestore(F,_).
dfs1: permission(P,X,F,M) -> prin(P), prin(X), string(F), mode(M).
mode("read"). mode("write").
"""

#: Store-side workflow rules (Figure 3: ① request, ② owner query,
#: ③ owner verdict, ④ response).
STORE_RULES = """
st1: says(me,O,[| permquery(U,F,"read"). |]) <-
     says(U,me,[| readreq(F). |]), filestore(F,me), fileowner(F,O).
st2: says(me,U,[| response(F,D). |]) <-
     says(U,me,[| readreq(F). |]), filestore(F,me), filedata(F,D),
     fileowner(F,O), says(O,me,[| permitted(U,F,"read"). |]).
st3: says(me,O,[| permquery(U,F,"write"). |]) <-
     says(U,me,[| writereq(F,D). |]), filestore(F,me), fileowner(F,O).
st4: pendingwrite(F,D,U) <-
     says(U,me,[| writereq(F,D). |]), filestore(F,me), fileowner(F,O),
     says(O,me,[| permitted(U,F,"write"). |]).
st5: says(me,U,[| writeok(F,D). |]) <- pendingwrite(F,D,U).
"""

#: Owner-side: answer stores from the local permission table (direct mode).
OWNER_DIRECT_RULES = """
ow1: says(me,ST,[| permitted(U,F,M). |]) <-
     says(ST,me,[| permquery(U,F,M). |]), filestore(F,ST), fileowner(F,me),
     permission(me,U,F,M).
"""

#: Owner-side, delegated mode: forward queries to managers; a manager's
#: `permitted` verdicts activate locally (says1/del1) and ow3 relays them.
OWNER_DELEGATED_RULES = """
ow2: says(me,MGR,[| permquery2(U,F,M). |]) <-
     says(ST,me,[| permquery(U,F,M). |]), fileowner(F,me),
     accessmanager(MGR).
ow3: says(me,ST,[| permitted(U,F,M). |]) <-
     says(ST,me,[| permquery(U,F,M). |]), filestore(F,ST), fileowner(F,me),
     permitted(U,F,M).
"""

#: Owner-side, threshold mode: ask with permquery3; ``permitted`` is then
#: derived by the wd2-style count over received mgrverdict facts.
OWNER_THRESHOLD_RULES = """
ow2t: says(me,MGR,[| permquery3(U,F,M). |]) <-
      says(ST,me,[| permquery(U,F,M). |]), fileowner(F,me),
      accessmanager(MGR).
ow3: says(me,ST,[| permitted(U,F,M). |]) <-
     says(ST,me,[| permquery(U,F,M). |]), filestore(F,ST), fileowner(F,me),
     permitted(U,F,M).
"""

#: Manager-side: answer owner queries from the manager's own table.
MANAGER_RULES = """
mg1: says(me,O,[| permitted(U,F,M). |]) <-
     says(O,me,[| permquery2(U,F,M). |]), mgrpermission(U,F,M).
mg2: says(me,O,[| mgrverdict(U,F,M). |]) <-
     says(O,me,[| permquery3(U,F,M). |]), mgrpermission(U,F,M).
"""


class DistributedFileSystem:
    """Orchestrates the section 9 demonstration on an LBTrust system."""

    def __init__(self, system: Optional[LBTrustSystem] = None,
                 auth: str = "hmac", seed: Optional[int] = 13,
                 secure: bool = True) -> None:
        self.secure = secure
        self.system = system if system is not None else LBTrustSystem(
            auth=auth, seed=seed, delegation=True, authorization=secure)
        if not self.system.delegation:
            raise ReproError("the file system needs delegation machinery "
                             "(LBTrustSystem(delegation=True))")
        self.stores: dict[str, Principal] = {}
        self.owners: dict[str, Principal] = {}
        self.requesters: dict[str, Principal] = {}
        self.managers: dict[str, Principal] = {}
        self.owner_modes: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------

    def _principal(self, name: str) -> Principal:
        if name not in self.system.principals:
            principal = self.system.create_principal(name)
            principal.load(FILE_DECLARATIONS)
        return self.system.principals[name]

    def add_store(self, name: str) -> Principal:
        principal = self._principal(name)
        if name not in self.stores:
            principal.load(STORE_RULES)
            self.stores[name] = principal
            self._wire_grants()
        return principal

    def add_owner(self, name: str, mode: str = "direct",
                  threshold: int = 3) -> Principal:
        principal = self._principal(name)
        self.owners[name] = principal
        self.set_owner_mode(name, mode, threshold)
        self._wire_grants()
        return principal

    def add_requester(self, name: str) -> Principal:
        principal = self._principal(name)
        self.requesters[name] = principal
        self._wire_grants()
        return principal

    def add_manager(self, name: str) -> Principal:
        principal = self._principal(name)
        if name not in self.managers:
            principal.load(MANAGER_RULES)
            self.managers[name] = principal
            self._wire_grants()
        return principal

    def set_owner_mode(self, owner: str, mode: str, threshold: int = 3) -> None:
        """Configure how an owner decides permissions (see module doc)."""
        principal = self.owners[owner]
        if mode == "direct":
            principal.load(OWNER_DIRECT_RULES)
        elif mode == "delegated":
            principal.load(OWNER_DELEGATED_RULES)
        elif mode == "threshold":
            principal.load(OWNER_THRESHOLD_RULES)
            install_threshold(principal.workspace, "mgrverdict",
                              "accessManager", threshold,
                              result="permitted", arity=3, channel="heard")
        else:
            raise ReproError(f"unknown owner mode {mode!r}")
        self.owner_modes[owner] = mode

    def owner_trusts_manager(self, owner: str, manager: str,
                             delegate: bool = True,
                             depth: Optional[int] = 0) -> None:
        """Register a manager with an owner.

        ``delegate=True`` additionally issues the del1 delegation of the
        ``permitted`` predicate (Figure 3b); ``depth=0`` forbids the
        manager from re-delegating (the demonstration's depth
        restriction).
        """
        principal = self.owners[owner]
        principal.assert_fact("accessmanager", (manager,))
        principal.workspace.assert_fact("pringroup", (manager, "accessManager"))
        if delegate:
            principal.delegate(manager, "permitted", depth=depth)
        self._wire_grants()

    # ------------------------------------------------------------------
    # Authorization wiring (section 4.1 meta-constraints)
    # ------------------------------------------------------------------

    def _wire_grants(self) -> None:
        """Issue the mayWrite grants backing every legitimate flow.

        Grants are per (speaker, predicate) at the listener; anything not
        listed here is rejected at import when ``secure=True``.
        """
        if not self.secure:
            return
        for store in self.stores.values():
            for requester in self.requesters.values():
                store.grant_write(requester, "readreq")
                store.grant_write(requester, "writereq")
                requester.grant_write(store, "response")
                requester.grant_write(store, "writeok")
            for owner in self.owners.values():
                owner.grant_write(store, "permquery")
                store.grant_write(owner, "permitted")
        for owner_name, owner in self.owners.items():
            mode = self.owner_modes.get(owner_name, "direct")
            for manager in self.managers.values():
                manager.grant_write(owner, "permquery2")
                manager.grant_write(owner, "permquery3")
                manager.grant_write(owner, "inferredDelDepth")
                if mode == "delegated":
                    owner.grant_write(manager, "permitted")
                elif mode == "threshold":
                    owner.grant_write(manager, "mgrverdict")

    # ------------------------------------------------------------------
    # Files and permissions
    # ------------------------------------------------------------------

    def create_file(self, fname: str, owner: str, store: str,
                    data: str) -> None:
        """Install a file's metadata at its store and its owner."""
        store_principal = self.stores[store]
        owner_principal = self.owners[owner]
        with store_principal.workspace.transaction():
            store_principal.assert_fact("filename", (fname, fname))
            store_principal.assert_fact("filedata", (fname, data))
            store_principal.assert_fact("fileowner", (fname, owner))
            store_principal.assert_fact("filestore", (fname, store))
            store_principal.assert_fact("file", (fname,))
        with owner_principal.workspace.transaction():
            owner_principal.assert_fact("fileowner", (fname, owner))
            owner_principal.assert_fact("filestore", (fname, store))

    def grant(self, owner: str, requester: str, fname: str,
              mode: str = "read") -> None:
        """The owner grants a permission in its local table."""
        self.owners[owner].assert_fact(
            "permission", (owner, requester, fname, mode))

    def manager_grant(self, manager: str, requester: str, fname: str,
                      mode: str = "read") -> None:
        """An access manager records a permission decision."""
        self.managers[manager].assert_fact(
            "mgrpermission", (requester, fname, mode))

    # ------------------------------------------------------------------
    # Requests (Figure 3 workflows)
    # ------------------------------------------------------------------

    def read(self, requester: str, fname: str, store: str) -> str:
        """Read a file; raises :class:`AccessDenied` without authorization."""
        principal = self.requesters[requester]
        principal.says(store, f'readreq("{fname}").')
        self.system.run()
        responses = {
            data for (f, data) in principal.tuples("response") if f == fname
        }
        if not responses:
            raise AccessDenied(
                f"{requester} was not authorized to read {fname!r}"
            )
        current = {
            data for (f, data) in self.stores[store].tuples("filedata")
            if f == fname
        }
        live = responses & current
        return next(iter(live or responses))

    def write(self, requester: str, fname: str, store: str,
              data: str) -> None:
        """Write a file; authorized writes are applied to the store's EDB."""
        principal = self.requesters[requester]
        principal.says(store, f'writereq("{fname}","{data}").')
        self.system.run()
        store_principal = self.stores[store]
        pending = {
            (f, d) for (f, d, u) in store_principal.tuples("pendingwrite")
            if f == fname and d == data and u == requester
        }
        if not pending:
            raise AccessDenied(
                f"{requester} was not authorized to write {fname!r}"
            )
        # Apply the write: retract the old contents, assert the new
        # (exercising DRed maintenance at the store).
        old = {
            (f, d) for (f, d) in store_principal.tuples("filedata")
            if f == fname and (f, d) in store_principal.workspace.edb.get("filedata", set())
        }
        with store_principal.workspace.transaction():
            for fact in old:
                if fact != (fname, data):
                    store_principal.workspace.retract_fact("filedata", fact)
            store_principal.assert_fact("filedata", (fname, data))
        self.system.run()
