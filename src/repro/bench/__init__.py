"""The benchmark-orchestration subsystem.

Gives every perf-sensitive PR a shared measurement substrate, in the
spirit of SAFE's reproducible latency/throughput evaluations: a registry
of named workloads (:func:`benchmark`), a calibrated timer
(:mod:`~repro.bench.timer`), schema-versioned JSON artifacts
(:mod:`~repro.bench.report`), and a regression-flagging compare mode
(:mod:`~repro.bench.compare`), all fronted by the ``repro bench`` CLI
(:mod:`~repro.bench.cli`).
"""

from .cli import main, standalone
from .compare import Comparison, PointDelta, compare_artifacts
from .registry import (
    BenchError,
    Workload,
    benchmark,
    get,
    load_scripts,
    registered,
    select,
)
from .report import SCHEMA, load_artifact, load_artifacts, write_artifact
from .runner import run_workloads
from .timer import BenchCase, Measurement, time_workload

__all__ = [
    "BenchCase", "BenchError", "Comparison", "Measurement", "PointDelta",
    "SCHEMA", "Workload", "benchmark", "compare_artifacts", "get",
    "load_artifact", "load_artifacts", "load_scripts", "main", "registered",
    "run_workloads", "select", "standalone", "time_workload",
    "write_artifact",
]
