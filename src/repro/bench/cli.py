"""``repro bench`` — run, record, and compare benchmark workloads.

Examples::

    repro bench --list
    repro bench --quick --json bench-artifacts/
    repro bench --full --filter 'fig2*'
    repro bench --quick --compare baseline-artifacts/
    repro bench --compare baseline/ --json current/     # diff two artifact sets

Exit status: 0 on success, 1 when ``--compare`` finds a regression beyond
``--threshold``, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, TextIO

from .compare import compare_artifacts, format_comparison
from .registry import BenchError, load_scripts, select
from .report import load_artifacts, write_artifact
from .runner import run_workloads


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark harness for the LBTrust reproduction",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="CI-smoke sweep (seconds; the default)")
    mode.add_argument("--full", action="store_true",
                      help="full sweep (paper-scale parameters)")
    parser.add_argument("--json", metavar="DIR",
                        help="write one BENCH_<name>.json per workload here")
    parser.add_argument("--filter", metavar="PATTERN",
                        help="only workloads whose name or group matches "
                             "this fnmatch pattern")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="diff against baseline artifacts (file or dir); "
                             "with no --quick/--full, current artifacts are "
                             "loaded from --json instead of re-running")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="regression threshold as a fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--dir", default="benchmarks", metavar="DIR",
                        help="benchmark-script directory to discover "
                             "workloads from (default: ./benchmarks)")
    parser.add_argument("--list", action="store_true",
                        help="list registered workloads and exit")
    return parser


def main(argv: Optional[list] = None, *, discover: bool = True,
         restrict_source: Optional[str] = None,
         out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    def emit(line: str = "") -> None:
        print(line, file=out)

    try:
        if discover and restrict_source is None:
            load_scripts(args.dir)
        workloads = select(pattern=args.filter, source=restrict_source)
        if not workloads:
            emit("no workloads matched")
            return 2

        if args.list:
            for workload in workloads:
                emit(f"{workload.name:28s} group={workload.group:22s} "
                     f"quick={len(workload.quick)}pt "
                     f"full={len(workload.full)}pt  {workload.description}")
            return 0

        # Load the baseline before a (potentially long) run so a bad
        # path fails in milliseconds, not after the sweep.
        baseline = load_artifacts(args.compare) if args.compare else None

        run_needed = args.quick or args.full or not args.compare
        if run_needed:
            mode = "full" if args.full else "quick"
            current = run_workloads(workloads, mode=mode, out=out)
            if args.json:
                for artifact in current.values():
                    path = write_artifact(args.json, artifact)
                    emit(f"wrote {path}")
        else:
            if not args.json:
                parser.error("--compare without --quick/--full needs --json "
                             "pointing at existing artifacts")
            current = load_artifacts(args.json)

        if baseline is not None:
            names = {w.name for w in workloads}
            comparison = compare_artifacts(baseline, current,
                                           filter_names=names)
            emit(format_comparison(comparison, args.threshold))
            if not comparison.deltas:
                # A baseline that matches nothing must not green-light a
                # run — it is almost always a wrong path or stale names.
                emit("error: baseline and current share no comparable "
                     "points")
                return 2
            if comparison.regressions(args.threshold):
                return 1
        return 0
    except BenchError as exc:
        emit(f"error: {exc}")
        return 2


def standalone(script_path: str, argv: Optional[list] = None) -> int:
    """Run the workloads a benchmark script registered about itself.

    Scripts call this from their ``__main__`` guard; discovery is skipped
    because importing the script already registered its workloads.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    return main(argv, discover=False,
                restrict_source=str(Path(script_path).resolve()))
