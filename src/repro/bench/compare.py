"""Artifact diffing: flag perf regressions between two benchmark runs.

Points are matched by workload name + canonicalized sweep parameters and
compared on their best-of-N timing.  A point regresses when

    current_best > baseline_best * (1 + threshold)

with the default threshold generous (25%) because CI machines are noisy;
optimization PRs comparing on one quiet machine can tighten it.

Some workloads gate on recorded *metrics* too (:data:`GATED_METRICS`):
the serving workload's per-request tail latency is a product property
best-of-N wall time cannot see — a point whose total run time held
steady while its p99 doubled has still regressed.  Gated metrics diff
under the same threshold rule as timings, one extra delta per metric.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

#: Per-workload recorded metrics the compare gate checks in addition to
#: best-of-N timing.  Values are "lower is better" (latencies); a metric
#: absent from either side is skipped (new metric, no baseline yet).
GATED_METRICS: dict[str, tuple] = {
    "serve_latency": ("p99_ms",),
}


@dataclass
class PointDelta:
    """One matched point: baseline vs current, on one measure.

    ``metric`` is ``"best"`` for the wall-time comparison (values in
    seconds) or a recorded-metric name from :data:`GATED_METRICS`
    (values in that metric's own unit, e.g. milliseconds for ``p99_ms``).
    """

    name: str
    params: dict
    baseline: float
    current: float
    metric: str = "best"

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline > 0 else float("inf")

    def regressed(self, threshold: float) -> bool:
        return self.current > self.baseline * (1.0 + threshold)

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        if self.metric == "best":
            values = (f"{self.baseline * 1e3:.3f}ms -> "
                      f"{self.current * 1e3:.3f}ms")
        else:
            values = (f"{self.metric} {self.baseline:.3f} -> "
                      f"{self.current:.3f}")
        return (f"{self.name}[{params}] {values} "
                f"({self.ratio:.2f}x baseline)")


@dataclass
class Comparison:
    """The full diff between a baseline and a current artifact set."""

    deltas: list
    missing_in_current: list
    missing_in_baseline: list

    def regressions(self, threshold: float) -> list:
        return [d for d in self.deltas if d.regressed(threshold)]


def _point_key(params: dict) -> str:
    return json.dumps(params, sort_keys=True, default=str)


def compare_artifacts(baseline: dict[str, dict], current: dict[str, dict],
                      filter_names: Optional[set] = None) -> Comparison:
    """Match artifacts by name and points by params; see module doc."""
    deltas: list = []
    missing_in_current: list = []
    missing_in_baseline: list = []
    names = set(baseline) | set(current)
    if filter_names is not None:
        names &= filter_names
    for name in sorted(names):
        base_art = baseline.get(name)
        cur_art = current.get(name)
        if base_art is None:
            missing_in_baseline.append(name)
            continue
        if cur_art is None:
            missing_in_current.append(name)
            continue
        base_points = {_point_key(p["params"]): p for p in base_art["points"]}
        cur_points = {_point_key(p["params"]): p for p in cur_art["points"]}
        for key in sorted(base_points):
            if key not in cur_points:
                missing_in_current.append(f"{name}{key}")
                continue
            deltas.append(PointDelta(
                name=name,
                params=base_points[key]["params"],
                baseline=base_points[key]["best"],
                current=cur_points[key]["best"],
            ))
            for metric in GATED_METRICS.get(name, ()):
                base_value = base_points[key].get("metrics", {}).get(metric)
                cur_value = cur_points[key].get("metrics", {}).get(metric)
                if base_value is None or cur_value is None:
                    continue
                deltas.append(PointDelta(
                    name=name,
                    params=base_points[key]["params"],
                    baseline=float(base_value),
                    current=float(cur_value),
                    metric=metric,
                ))
    return Comparison(deltas, missing_in_current, missing_in_baseline)


def format_comparison(comparison: Comparison, threshold: float) -> str:
    lines = []
    for delta in comparison.deltas:
        marker = "REGRESSION" if delta.regressed(threshold) else "ok"
        lines.append(f"  {marker:>10}  {delta.describe()}")
    for name in comparison.missing_in_current:
        lines.append(f"  {'MISSING':>10}  {name} (in baseline, not in current)")
    for name in comparison.missing_in_baseline:
        lines.append(f"  {'new':>10}  {name} (no baseline point)")
    regressed = comparison.regressions(threshold)
    lines.append(
        f"compared {len(comparison.deltas)} points, "
        f"{len(regressed)} regression(s) beyond {threshold:.0%}")
    return "\n".join(lines)
