"""The workload registry: named benchmarks with parameter sweeps.

A *workload* is a function decorated with :func:`benchmark`.  It receives a
:class:`~repro.bench.timer.BenchCase` as its first argument plus one sweep
point's parameters as keyword arguments; setup outside ``case.measure()``
is untimed:

.. code-block:: python

    @benchmark("fig2_auth_overhead",
               quick=[{"auth": "hmac", "k": 25}],
               full=[{"auth": a, "k": 100} for a in SCHEMES])
    def fig2(case, auth, k):
        system, alice, bob = make_fig2_system(auth)   # untimed setup
        with case.measure():                          # the timed region
            run_fig2_exchange(system, alice, bob, k)
        case.record(messages=2 * k)                   # extra metrics

Workloads register at import time; the CLI discovers them by importing
every module of a benchmark-script directory (see :func:`load_scripts`).
Re-registering a name replaces the previous entry (the same script may be
imported both as ``__main__`` and as ``benchmarks.<stem>``).
"""

from __future__ import annotations

import fnmatch
import importlib
import inspect
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from ..datalog.errors import ReproError


class BenchError(ReproError):
    """Raised for benchmark-harness misuse (unknown names, bad sweeps)."""


@dataclass
class Workload:
    """A registered benchmark: the target callable plus its sweep points."""

    name: str
    func: Callable
    group: str
    description: str
    quick: list = field(default_factory=list)
    full: list = field(default_factory=list)
    warmup: int = 1
    repeats: int = 3
    source: str = ""

    def points(self, mode: str) -> list:
        if mode == "quick":
            return self.quick
        if mode == "full":
            return self.full
        raise BenchError(f"unknown mode {mode!r}; use 'quick' or 'full'")


_REGISTRY: dict[str, Workload] = {}


def benchmark(name: str, *, group: Optional[str] = None,
              quick: Optional[list] = None, full: Optional[list] = None,
              warmup: int = 1, repeats: int = 3) -> Callable:
    """Register the decorated function as a named benchmark workload.

    ``quick``/``full`` are lists of parameter dicts — one timed series per
    dict.  ``quick`` must finish in CI-smoke time (well under a few
    seconds per point); ``full`` defaults to the quick sweep when omitted.
    """
    if not name or "/" in name or os.sep in name:
        raise BenchError(f"invalid workload name {name!r}")

    def decorate(func: Callable) -> Callable:
        doc = inspect.getdoc(func) or ""
        try:
            source = os.path.abspath(inspect.getfile(func))
        except TypeError:  # pragma: no cover - builtins/partials
            source = ""
        quick_points = [dict(p) for p in (quick if quick is not None else [{}])]
        full_points = [dict(p) for p in full] if full is not None else \
                      [dict(p) for p in quick_points]
        _REGISTRY[name] = Workload(
            name=name,
            func=func,
            group=group or name,
            description=doc.splitlines()[0] if doc else "",
            quick=quick_points,
            full=full_points,
            warmup=warmup,
            repeats=repeats,
            source=source,
        )
        func.workload_name = name
        return func

    return decorate


def registered() -> list[Workload]:
    """All registered workloads, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get(name: str) -> Workload:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BenchError(f"no workload named {name!r}; "
                         f"registered: {sorted(_REGISTRY)}") from None


def select(pattern: Optional[str] = None,
           source: Optional[str] = None,
           names: Optional[Iterable[str]] = None) -> list[Workload]:
    """Workloads matching an fnmatch ``pattern`` (name or group), a
    defining ``source`` file, and/or an explicit name list."""
    chosen = registered()
    if names is not None:
        wanted = set(names)
        chosen = [w for w in chosen if w.name in wanted]
    if source is not None:
        # resolve() both sides: registration stores inspect.getfile paths,
        # callers may hand in symlinked ones (macOS /tmp, linked homes).
        resolved = Path(source).resolve()
        chosen = [w for w in chosen if w.source and
                  Path(w.source).resolve() == resolved]
    if pattern:
        chosen = [w for w in chosen
                  if fnmatch.fnmatch(w.name, pattern)
                  or fnmatch.fnmatch(w.group, pattern)]
    return chosen


def clear() -> dict[str, Workload]:
    """Empty the registry, returning the previous contents (for tests)."""
    previous = dict(_REGISTRY)
    _REGISTRY.clear()
    return previous


def restore(entries: dict[str, Workload]) -> None:
    """Replace the registry contents (undo a :func:`clear`)."""
    _REGISTRY.clear()
    _REGISTRY.update(entries)


def load_scripts(directory: str = "benchmarks") -> list[str]:
    """Import every benchmark script under ``directory``, registering its
    workloads.  Returns the imported module names.

    The directory must be an importable package (contain ``__init__.py``);
    its parent — and a sibling ``src/`` layout if present — are put on
    ``sys.path`` so scripts resolve both ``benchmarks.*`` and ``repro``.
    """
    path = Path(directory).resolve()
    if not path.is_dir():
        raise BenchError(f"benchmark directory {str(path)!r} does not exist")
    root = path.parent
    for entry in (str(root / "src"), str(root)):
        if entry not in sys.path and Path(entry).is_dir():
            sys.path.insert(0, entry)
    imported = []
    for script in sorted(path.glob("*.py")):
        if script.name.startswith("_"):
            continue
        module = f"{path.name}.{script.stem}"
        importlib.import_module(module)
        imported.append(module)
    return imported
