"""Schema-versioned JSON benchmark artifacts (``BENCH_<name>.json``).

One artifact per workload, self-describing enough to compare across
machines and revisions: schema tag, machine info, git revision, the sweep
parameters, and per-point timing series plus engine counters.  The schema
is documented in ROADMAP.md; bump :data:`SCHEMA` on incompatible change.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Optional

from .registry import BenchError, Workload
from .timer import Measurement

SCHEMA = "repro-bench/v1"


def machine_info() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def git_info(cwd: Optional[str] = None) -> dict:
    """Current revision and dirtiness; ``rev`` is None outside a checkout."""
    def run(*args: str) -> Optional[str]:
        try:
            out = subprocess.run(["git", *args], cwd=cwd, capture_output=True,
                                 text=True, timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    rev = run("rev-parse", "HEAD")
    status = run("status", "--porcelain") if rev is not None else None
    return {"rev": rev, "dirty": bool(status) if status is not None else None}


def make_artifact(workload: Workload, mode: str,
                  measurements: Iterable[Measurement]) -> dict:
    return {
        "schema": SCHEMA,
        "name": workload.name,
        "group": workload.group,
        "description": workload.description,
        "mode": mode,
        "created": datetime.now(timezone.utc).isoformat(),
        "machine": machine_info(),
        "git": git_info(),
        "points": [m.as_dict() for m in measurements],
    }


def artifact_path(directory: str, name: str) -> Path:
    return Path(directory) / f"BENCH_{name}.json"


def write_artifact(directory: str, artifact: dict) -> Path:
    path = artifact_path(directory, artifact["name"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return path


def load_artifact(path: str) -> dict:
    try:
        artifact = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read benchmark artifact {path!r}: {exc}")
    schema = artifact.get("schema")
    if schema != SCHEMA:
        raise BenchError(
            f"artifact {path!r} has schema {schema!r}; expected {SCHEMA!r}")
    return artifact


def load_artifacts(location: str) -> dict[str, dict]:
    """Artifacts by workload name, from a ``BENCH_*.json`` file or a
    directory of them."""
    path = Path(location)
    if path.is_file():
        artifact = load_artifact(path)
        return {artifact["name"]: artifact}
    if not path.is_dir():
        raise BenchError(f"no artifact file or directory at {location!r}")
    artifacts = {}
    for file in sorted(path.glob("BENCH_*.json")):
        artifact = load_artifact(file)
        artifacts[artifact["name"]] = artifact
    return artifacts
