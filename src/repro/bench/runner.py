"""The run loop: sweep every selected workload, produce artifacts."""

from __future__ import annotations

import sys
from typing import Callable, Iterable, Optional, TextIO

from .registry import Workload
from .report import make_artifact
from .timer import time_workload


def run_workloads(workloads: Iterable[Workload], mode: str = "quick",
                  out: Optional[TextIO] = None,
                  progress: bool = True) -> dict[str, dict]:
    """Run each workload's ``mode`` sweep; return artifacts by name."""
    out = out if out is not None else sys.stdout
    emit: Callable[[str], None] = (
        (lambda line: print(line, file=out)) if progress else (lambda line: None))
    artifacts: dict[str, dict] = {}
    for workload in workloads:
        emit(f"{workload.name} ({mode}, {len(workload.points(mode))} points)")
        measurements = []
        for params in workload.points(mode):
            measurement = time_workload(workload, params)
            measurements.append(measurement)
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(params.items())) or "-"
            emit(f"  [{rendered}] best={measurement.best * 1e3:.3f}ms "
                 f"mean={measurement.mean * 1e3:.3f}ms "
                 f"n={len(measurement.timings)}")
        artifacts[workload.name] = make_artifact(workload, mode, measurements)
    return artifacts
