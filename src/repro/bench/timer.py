"""The calibrated timer: warmup + repeats, min-of-N, monotonic clock.

Every point is measured as *fresh setup per call* — the workload function
runs once per warmup/repeat with a new :class:`BenchCase`, and only the
``case.measure()`` region is timed (the whole call when the workload never
opens one).  The reported figure of merit is the minimum over repeats:
on a noisy machine the minimum is the best estimate of the workload's
intrinsic cost (external interference only ever adds time).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from statistics import mean
from time import perf_counter
from typing import Iterator, Optional

from ..datalog.engine import EvalStats
from .registry import BenchError, Workload


class BenchCase:
    """Handed to each workload invocation: the timed region and metrics.

    Two ways to get engine counters into the artifact:

    * thread ``case.stats`` into direct engine calls
      (``evaluate(..., stats=case.stats)`` /
      ``EvalContext(stats=case.stats)``);
    * for workloads driving long-lived accumulators (a ``Workspace`` or
      an ``LBTrustSystem``'s principals), call ``case.watch(ws.stats)``
      during setup — after the run, each watched accumulator's *delta*
      since the watch point is merged into ``case.stats``, so setup work
      is excluded.

    Index build/hit counters route to the innermost installed sink: the
    engine installs its own ``stats`` per stratum pass, so for workspace
    workloads those counters arrive via ``watch()``, not the ambient
    capture around the measured region.
    """

    def __init__(self, params: dict) -> None:
        self.params = dict(params)
        self.stats = EvalStats()
        self.elapsed: Optional[float] = None
        self.metrics: dict = {}
        self._watched: list = []

    def watch(self, stats: EvalStats) -> None:
        """Record ``stats``'s delta over this call into ``case.stats``."""
        self._watched.append((stats, stats.copy()))

    def _collect_watched(self) -> None:
        for stats, baseline in self._watched:
            self.stats.merge(stats.diff(baseline))
        self._watched.clear()

    @contextmanager
    def measure(self) -> Iterator["BenchCase"]:
        if self.elapsed is not None:
            raise BenchError("case.measure() may only be entered once")
        with self.stats.capture_indexes():
            started = perf_counter()
            try:
                yield self
            finally:
                self.elapsed = perf_counter() - started

    def record(self, **metrics) -> None:
        """Attach extra JSON-safe metrics to this point (last repeat wins)."""
        self.metrics.update(metrics)


@dataclass
class Measurement:
    """One sweep point's timings plus whatever the workload recorded."""

    params: dict
    warmup: int
    timings: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    engine: Optional[dict] = None

    @property
    def best(self) -> float:
        return min(self.timings)

    @property
    def mean(self) -> float:
        return mean(self.timings)

    def as_dict(self) -> dict:
        return {
            "params": dict(self.params),
            "warmup": self.warmup,
            "repeats": len(self.timings),
            "timings": list(self.timings),
            "best": self.best,
            "mean": self.mean,
            "metrics": dict(self.metrics),
            "engine": self.engine,
        }


def _one_call(workload: Workload, params: dict) -> BenchCase:
    # Ambient index capture is installed by case.measure() only, so
    # untimed setup lookups stay out of the recorded engine counters;
    # workloads that never open a measured region get whole-call timing
    # but must thread case.stats explicitly for counters.
    case = BenchCase(params)
    started = perf_counter()
    result = workload.func(case, **params)
    total = perf_counter() - started
    if case.elapsed is None:
        case.elapsed = total
    case._collect_watched()
    if isinstance(result, dict):
        case.record(**result)
    return case


def _peak_memory(workload: Workload, params: dict) -> Optional[int]:
    """Peak traced allocation of one untimed workload call, in bytes.

    Runs under :mod:`tracemalloc`, whose per-allocation bookkeeping
    would distort wall-clock numbers badly — so memory gets its own
    call *after* the timed repeats rather than instrumenting them.
    Returns None when tracing is already active (a nested bench run
    would misattribute the outer trace's allocations).
    """
    import tracemalloc

    if tracemalloc.is_tracing():
        return None
    tracemalloc.start()
    try:
        _one_call(workload, params)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def time_workload(workload: Workload, params: dict,
                  warmup: Optional[int] = None,
                  repeats: Optional[int] = None) -> Measurement:
    """Measure one sweep point: ``warmup`` throwaway calls, then
    ``repeats`` timed calls, each with fresh setup.

    After the timed calls, one extra traced call records the workload's
    peak allocation into the point's metrics as ``peak_mem_bytes``
    (whole call, setup included — a workload's memory high-water mark
    does not respect the ``measure()`` region boundaries).
    """
    warmup = workload.warmup if warmup is None else warmup
    repeats = workload.repeats if repeats is None else repeats
    if repeats < 1:
        raise BenchError("repeats must be >= 1")
    measurement = Measurement(params=dict(params), warmup=warmup)
    for _ in range(warmup):
        _one_call(workload, params)
    for _ in range(repeats):
        case = _one_call(workload, params)
        measurement.timings.append(case.elapsed)
        measurement.metrics = dict(case.metrics)
        engine = case.stats.as_dict()
        measurement.engine = engine if any(
            engine[key] for key in ("rounds", "derivations", "new_facts",
                                    "index_builds", "index_hits",
                                    "literal_scans")) else None
    peak = _peak_memory(workload, params)
    if peak is not None:
        measurement.metrics["peak_mem_bytes"] = peak
    return measurement
