"""An interactive LBTrust shell (``python -m repro``).

A small REPL over a multi-principal system, in the spirit of the paper's
demonstration UI ("a visualization tool … to display a table of the values
of various predicates and rules stored at each principal"):

.. code-block:: text

    $ python -m repro --auth hmac
    lbtrust> :principal alice
    lbtrust> :principal bob
    lbtrust> :as bob
    bob> object("f1"). access(P,O,"read") <- good(P), object(O).
    bob> :as alice
    alice> :says bob good("carol").
    alice> :run
    alice> :as bob
    bob> :query access(P,O,M)
    P='carol' O='f1' M='read'

Commands start with ``:``; anything else is Datalog source loaded into the
current principal's context.  Designed to be scriptable (reads stdin), so
the test-suite drives it end-to-end.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, TextIO

from . import LBTrustSystem, ReproError

HELP = """\
commands:
  :principal NAME [NODE]   create a principal (and switch to it)
  :as NAME                 switch the current context
  :says LISTENER STMT      say a rule/fact to another principal
  :run                     run the system to quiescence (deliver messages)
  :query BODY              solve a query in the current context
  :tuples PRED             dump a relation
  :rules                   list active rules in the current context
  :audit                   show the audit log
  :reconfigure SCHEME      swap the authentication scheme (rsa/hmac/...)
  :help                    this text
  :quit                    exit
anything else              Datalog loaded into the current context
"""


class Shell:
    """The REPL engine; I/O injected for testability."""

    def __init__(self, auth: str = "hmac", rsa_bits: int = 512,
                 out: Optional[TextIO] = None) -> None:
        self.system = LBTrustSystem(auth=auth, rsa_bits=rsa_bits, seed=7,
                                    delegation=True)
        self.current: Optional[str] = None
        self.out = out if out is not None else sys.stdout

    def emit(self, text: str = "") -> None:
        print(text, file=self.out)

    @property
    def prompt(self) -> str:
        return f"{self.current or 'lbtrust'}> "

    def run(self, stream: TextIO) -> None:
        for raw in stream:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if not self.dispatch(line):
                break

    def dispatch(self, line: str) -> bool:
        """Execute one line; returns False to exit."""
        try:
            return self._dispatch(line)
        except ReproError as exc:
            self.emit(f"error: {exc}")
            return True

    def _dispatch(self, line: str) -> bool:
        if not line.startswith(":"):
            self._need_context().load(line)
            return True
        parts = line.split(None, 2)
        command = parts[0]
        if command == ":quit":
            return False
        if command == ":help":
            self.emit(HELP)
        elif command == ":principal":
            name = parts[1]
            node = parts[2] if len(parts) > 2 else None
            self.system.create_principal(name, node=node)
            self.current = name
            self.emit(f"created {name}")
        elif command == ":as":
            name = parts[1]
            self.system.principal(name)  # raises if unknown
            self.current = name
        elif command == ":says":
            listener = parts[1]
            statement = parts[2]
            self._need_context().says(listener, statement)
            self.emit(f"{self.current} says to {listener}: {statement}")
        elif command == ":run":
            report = self.system.run()
            self.emit(f"delivered={report.delivered} "
                      f"rejected={report.rejected} rounds={report.rounds}")
        elif command == ":query":
            rows = self._need_context().query(parts[1] if len(parts) == 2
                                              else f"{parts[1]} {parts[2]}")
            if not rows:
                self.emit("(no results)")
            for row in rows:
                rendered = " ".join(f"{k}={v!r}" for k, v in sorted(row.items()))
                self.emit(rendered or "yes")
        elif command == ":tuples":
            for fact in sorted(self._need_context().tuples(parts[1]),
                               key=repr):
                self.emit(repr(fact))
        elif command == ":rules":
            workspace = self._need_context().workspace
            for ref in sorted(workspace.active_refs(), key=lambda r: r.rid):
                self.emit(f"{ref!r}: {workspace.rule_text(ref)}")
        elif command == ":audit":
            for event in self.system.audit_trail():
                self.emit(repr(event))
        elif command == ":reconfigure":
            self.system.reconfigure_auth(parts[1])
            self.emit(f"auth scheme is now {parts[1]}")
        else:
            self.emit(f"unknown command {command}; try :help")
        return True

    def _need_context(self):
        if self.current is None:
            raise ReproError("no current principal; use :principal NAME")
        return self.system.principal(self.current)


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "bench":
        # `repro bench ...` — the benchmark harness subcommand.  Imported
        # lazily so the interactive shell stays import-light.
        from .bench.cli import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "cluster":
        # `repro cluster ...` — the sharded-evaluation demo (simulated
        # network, in-process sockets, or one OS process per node).
        from .cluster.demo import main as cluster_main
        return cluster_main(argv[1:])
    if argv and argv[0] == "serve":
        # `repro serve ...` — the online authorization service: scripted
        # update+query session, self-checked answers, latency summary.
        from .serve.cli import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "check":
        # `repro check ...` — the static program analyzer: safety,
        # stratification, types, dead code, attribution, placement.
        from .analysis.cli import main as check_main
        return check_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interactive LBTrust shell (CIDR 2009 reproduction); "
                    "use `repro bench --help` for the benchmark harness, "
                    "`repro cluster --help` for the sharded-evaluation demo "
                    "(--transport socket --procs N deploys one OS process "
                    "per node), `repro serve --help` for the online "
                    "authorization service, `repro check --help` for the "
                    "static program analyzer",
    )
    parser.add_argument("--auth", default="hmac",
                        choices=["plaintext", "hmac", "rsa", "mixed"])
    parser.add_argument("--rsa-bits", type=int, default=512)
    args = parser.parse_args(argv)
    shell = Shell(auth=args.auth, rsa_bits=args.rsa_bits)
    interactive = sys.stdin.isatty()
    if interactive:
        shell.emit("LBTrust shell — :help for commands")
    try:
        while True:
            if interactive:
                shell.out.write(shell.prompt)
                shell.out.flush()
            line = sys.stdin.readline()
            if not line:
                break
            if not shell.dispatch(line.strip()):
                break
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
