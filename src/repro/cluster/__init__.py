"""Sharded multi-node evaluation over the simulated network.

The paper *represents* distribution (``predNode`` placement, section
3.5); this package *executes* it: hash/range-partitioned EDB shards,
per-node semi-naive evaluation with an engine-level delta-exchange
hook, batched delta messages, and ticket-counted distributed
quiescence.  See :mod:`repro.cluster.runtime` for the full protocol.
"""

from .node import ClusterNode
from .partition import (
    MODE_LOCAL,
    MODE_PARTITIONED,
    MODE_REPLICATED,
    Partitioner,
    PlacementMap,
    stable_hash,
)
from .quiescence import RoundRecord, TicketLedger
from .runtime import Cluster, ClusterReport, NodeReport

__all__ = [
    "Cluster",
    "ClusterNode",
    "ClusterReport",
    "MODE_LOCAL",
    "MODE_PARTITIONED",
    "MODE_REPLICATED",
    "NodeReport",
    "Partitioner",
    "PlacementMap",
    "RoundRecord",
    "TicketLedger",
    "stable_hash",
]
