"""Sharded multi-node evaluation — simulated, socket, or multiprocess.

The paper *represents* distribution (``predNode`` placement, section
3.5); this package *executes* it: hash/range-partitioned EDB shards,
per-node semi-naive evaluation with an engine-level delta-exchange
hook, batched delta messages, and ticket-counted distributed
quiescence.  The :mod:`~repro.cluster.scheduler` module is the unified
:class:`ExecutionRuntime` that drives both Datalog shards and principal
workspaces in ``bsp`` or ``async`` (overlapped) mode; the
:mod:`~repro.cluster.placement_check` module statically verifies that a
program's joins are co-located under the placement.  Every runtime runs
over either network transport (virtual-clock
:class:`~repro.net.network.SimulatedNetwork` or TCP
:class:`~repro.net.socket_transport.SocketNetwork`), and the
:mod:`~repro.cluster.launch` module deploys one OS process per node.
See :mod:`repro.cluster.runtime` for the full protocol.
"""

from .launch import LaunchReport, cluster_spec, launch, spec_nodes, system_spec
from .node import ClusterNode
from .partition import (
    MODE_LOCAL,
    MODE_PARTITIONED,
    MODE_REPLICATED,
    Partitioner,
    PlacementMap,
    stable_hash,
)
from .placement_check import (
    PlacementIssue,
    analyze_join_compatibility,
    check_join_compatibility,
)
from .quiescence import RoundRecord, TicketLedger
from .runtime import Cluster, ClusterReport, NodeReport
from .scheduler import (
    MODE_ASYNC,
    MODE_BSP,
    SCHEDULER_MODES,
    ExecutionRuntime,
    RuntimeReport,
)

__all__ = [
    "Cluster",
    "ClusterNode",
    "ClusterReport",
    "ExecutionRuntime",
    "LaunchReport",
    "MODE_ASYNC",
    "MODE_BSP",
    "MODE_LOCAL",
    "MODE_PARTITIONED",
    "MODE_REPLICATED",
    "NodeReport",
    "Partitioner",
    "PlacementIssue",
    "PlacementMap",
    "RoundRecord",
    "RuntimeReport",
    "SCHEDULER_MODES",
    "TicketLedger",
    "analyze_join_compatibility",
    "check_join_compatibility",
    "cluster_spec",
    "launch",
    "spec_nodes",
    "stable_hash",
    "system_spec",
]
