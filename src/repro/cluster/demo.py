"""``repro cluster`` — run a sharded evaluation demo and print the report.

Distributed transitive closure over a seeded random graph: ``edge``
hash-partitioned by source, ``reach`` by destination (co-locating the
recursive join — a placement the static join-compatibility checker
verifies at load), batched delta exchange, ticket-counted quiescence.
``--mode async`` swaps the BSP barrier for the overlapped scheduler:
every node re-enters semi-naive the moment a delta batch arrives.
Prints placement, per-node load, traffic and convergence figures — the
distribution story of paper section 3.5, actually executed.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, TextIO

from ..datalog.errors import ReproError
from ..net.batch import DEFAULT_MAX_BATCH_BYTES
from ..net.network import SimulatedNetwork
from .partition import Partitioner
from .runtime import Cluster

PROGRAM = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Sharded multi-node evaluation demo (distributed "
                    "reachability with batched delta exchange)",
    )
    parser.add_argument("--nodes", type=int, default=4,
                        help="cluster size (default 4)")
    parser.add_argument("--mode", choices=["bsp", "async"], default="bsp",
                        help="scheduling: bsp barrier rounds, or async "
                             "overlapped rounds (default bsp)")
    parser.add_argument("--vertices", type=int, default=60,
                        help="graph vertices (default 60)")
    parser.add_argument("--degree", type=int, default=2,
                        help="out-degree per vertex (default 2)")
    parser.add_argument("--seed", type=int, default=7,
                        help="graph RNG seed (default 7)")
    parser.add_argument("--latency", type=float, default=1.0,
                        help="per-link latency on the virtual clock")
    parser.add_argument("--max-batch-bytes", type=int,
                        default=DEFAULT_MAX_BATCH_BYTES,
                        help="size cap per delta batch message")
    return parser


def main(argv: Optional[list] = None, out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    def emit(line: str = "") -> None:
        print(line, file=out)

    if args.nodes < 1 or args.vertices < 2 or args.degree < 1:
        emit("error: need --nodes >= 1, --vertices >= 2, --degree >= 1")
        return 2

    names = [f"node{i}" for i in range(args.nodes)]
    partitioner = Partitioner(names)
    partitioner.hash_partition("edge", column=0)
    partitioner.hash_partition("reach", column=1)
    network = SimulatedNetwork(default_latency=args.latency)
    cluster = Cluster(names, network=network, partitioner=partitioner,
                      max_batch_bytes=args.max_batch_bytes, mode=args.mode)
    cluster.load(PROGRAM)

    rng = random.Random(args.seed)
    edges = 0
    for v in range(args.vertices):
        for t in rng.sample(range(args.vertices),
                            min(args.degree, args.vertices)):
            if t != v:
                cluster.assert_fact("edge", (v, t))
                edges += 1

    emit(f"cluster: {args.nodes} node(s), {args.mode} scheduling, "
         f"graph: {args.vertices} vertices / {edges} edges "
         f"(seed {args.seed})")
    emit("placement:")
    for pred, rule in sorted(cluster.partitioner.describe().items()):
        detail = ", ".join(f"{k}={v}" for k, v in sorted(rule.items()))
        emit(f"  {pred:8s} {detail}")

    try:
        report = cluster.run()
    except ReproError as exc:
        emit(f"error: {exc}")
        return 1

    emit()
    emit(f"{'node':10s} {'edge':>6s} {'reach':>7s} {'derived':>8s} "
         f"{'sent':>6s} {'recv':>6s}")
    for node_report in report.per_node:
        node = cluster.node(node_report.name)
        emit(f"{node_report.name:10s} {len(node.db.tuples('edge')):6d} "
             f"{len(node.db.tuples('reach')):7d} "
             f"{node_report.derivations:8d} {node_report.sent_facts:6d} "
             f"{node_report.received_facts:6d}")

    emit()
    emit(f"fixpoint: {len(cluster.tuples('reach'))} reach facts in "
         f"{report.rounds} rounds (causal depth {report.depth})")
    emit(f"traffic: {report.messages} batch message(s) carrying "
         f"{report.batched_facts} facts, {report.bytes} bytes")
    emit(f"converged at virtual time {report.convergence_time:.1f} "
         f"(clock {report.virtual_time:.1f})")
    return 0
