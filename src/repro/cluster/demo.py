"""``repro cluster`` — run a sharded evaluation demo and print the report.

Distributed transitive closure over a seeded random graph: ``edge``
hash-partitioned by source, ``reach`` by destination (co-locating the
recursive join — a placement the static join-compatibility checker
verifies at load), batched delta exchange, ticket-counted quiescence.
``--mode async`` swaps the BSP barrier for the overlapped scheduler:
every node re-enters semi-naive the moment a delta batch arrives.

``--transport socket`` runs the same exchange over real TCP instead of
the virtual clock — in-process loopback by default, or one **OS process
per node** with ``--procs N`` (the :mod:`repro.cluster.launch`
coordinator: rendezvous, peer-to-peer delta batches, ledger-proved
quiescence).  Prints placement, per-node load, traffic and convergence
figures — the distribution story of paper section 3.5, actually
executed, and actually deployed when asked.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, TextIO

from ..datalog.errors import ReproError
from ..net.batch import DEFAULT_MAX_BATCH_BYTES
from ..net.network import SimulatedNetwork
from ..net.socket_transport import SocketNetwork
from .launch import cluster_spec, launch
from .partition import Partitioner
from .runtime import Cluster

PROGRAM = """
tc0: reach(X,Y) <- edge(X,Y).
tc1: reach(X,Z) <- reach(X,Y), edge(Y,Z).
"""

#: The demo placement, stated once: ``edge`` sharded by source, ``reach``
#: by destination (co-locating the recursive join).  The same ops build
#: the in-process partitioner and the multiprocess launcher spec.
PLACEMENT_OPS = [["hash", "edge", 0], ["hash", "reach", 1]]


def _build_partitioner(names) -> Partitioner:
    partitioner = Partitioner(names)
    for _op, pred, column in PLACEMENT_OPS:
        partitioner.hash_partition(pred, column=column)
    return partitioner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Sharded multi-node evaluation demo (distributed "
                    "reachability with batched delta exchange)",
    )
    parser.add_argument("--nodes", type=int, default=4,
                        help="cluster size (default 4)")
    parser.add_argument("--mode", choices=["bsp", "async"], default="bsp",
                        help="scheduling: bsp barrier rounds, or async "
                             "overlapped rounds (default bsp)")
    parser.add_argument("--transport", choices=["simulated", "socket"],
                        default="simulated",
                        help="simulated: virtual clock + modeled latency; "
                             "socket: real TCP frames, wall clock "
                             "(default simulated)")
    parser.add_argument("--procs", type=int, default=0,
                        help="with --transport socket: run N worker "
                             "processes, one OS process per node "
                             "(overrides --nodes; 0 = in-process)")
    parser.add_argument("--vertices", type=int, default=60,
                        help="graph vertices (default 60)")
    parser.add_argument("--degree", type=int, default=2,
                        help="out-degree per vertex (default 2)")
    parser.add_argument("--seed", type=int, default=7,
                        help="graph RNG seed (default 7)")
    parser.add_argument("--latency", type=float, default=1.0,
                        help="per-link latency on the virtual clock "
                             "(simulated transport only)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="socket transport: per-step control timeout "
                             "in seconds (default 60)")
    parser.add_argument("--max-batch-bytes", type=int,
                        default=DEFAULT_MAX_BATCH_BYTES,
                        help="size cap per delta batch message")
    return parser


def _graph_edges(args) -> list:
    rng = random.Random(args.seed)
    edges = []
    for v in range(args.vertices):
        for t in rng.sample(range(args.vertices),
                            min(args.degree, args.vertices)):
            if t != v:
                edges.append((v, t))
    return edges


def _describe_placement(partitioner: Partitioner, emit) -> None:
    emit("placement:")
    for pred, rule in sorted(partitioner.describe().items()):
        detail = ", ".join(f"{k}={v}" for k, v in sorted(rule.items()))
        emit(f"  {pred:8s} {detail}")


def main(argv: Optional[list] = None, out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    def emit(line: str = "") -> None:
        print(line, file=out)

    if args.procs and args.transport != "socket":
        emit("error: --procs requires --transport socket")
        return 2
    if args.procs:
        args.nodes = args.procs
    if args.nodes < 1 or args.vertices < 2 or args.degree < 1:
        emit("error: need --nodes >= 1, --vertices >= 2, --degree >= 1")
        return 2

    names = [f"node{i}" for i in range(args.nodes)]
    edges = _graph_edges(args)
    if args.procs:
        return _run_multiprocess(args, names, edges, emit)
    return _run_in_process(args, names, edges, emit)


def _run_in_process(args, names, edges, emit) -> int:
    partitioner = _build_partitioner(names)
    if args.transport == "socket":
        network = SocketNetwork(delivery_timeout=args.timeout)
    else:
        network = SimulatedNetwork(default_latency=args.latency)
    cluster = Cluster(names, network=network, partitioner=partitioner,
                      max_batch_bytes=args.max_batch_bytes, mode=args.mode)
    cluster.load(PROGRAM)
    for edge in edges:
        cluster.assert_fact("edge", edge)

    emit(f"cluster: {args.nodes} node(s), {args.mode} scheduling, "
         f"{args.transport} transport, "
         f"graph: {args.vertices} vertices / {len(edges)} edges "
         f"(seed {args.seed})")
    _describe_placement(cluster.partitioner, emit)

    try:
        report = cluster.run()
    except ReproError as exc:
        emit(f"error: {exc}")
        return 1
    finally:
        if args.transport == "socket":
            network.close()

    emit()
    emit(f"{'node':10s} {'edge':>6s} {'reach':>7s} {'derived':>8s} "
         f"{'sent':>6s} {'recv':>6s}")
    for node_report in report.per_node:
        node = cluster.node(node_report.name)
        emit(f"{node_report.name:10s} {len(node.db.tuples('edge')):6d} "
             f"{len(node.db.tuples('reach')):7d} "
             f"{node_report.derivations:8d} {node_report.sent_facts:6d} "
             f"{node_report.received_facts:6d}")

    emit()
    emit(f"fixpoint: {len(cluster.tuples('reach'))} reach facts in "
         f"{report.rounds} rounds (causal depth {report.depth})")
    emit(f"traffic: {report.messages} batch message(s) carrying "
         f"{report.batched_facts} facts, {report.bytes} bytes")
    kind, unit = (("wall", "s") if args.transport == "socket"
                  else ("virtual", ""))
    emit(f"converged at {kind} time {report.convergence_time:.2f}{unit} "
         f"(clock {report.virtual_time:.2f}{unit})")
    return 0


def _run_multiprocess(args, names, edges, emit) -> int:
    spec = cluster_spec(names, placement=PLACEMENT_OPS, program=PROGRAM,
                        facts=[("edge", edge) for edge in edges],
                        collect=["reach"])
    emit(f"cluster: {args.nodes} worker process(es), {args.mode} "
         f"scheduling, socket transport, "
         f"graph: {args.vertices} vertices / {len(edges)} edges "
         f"(seed {args.seed})")
    _describe_placement(_build_partitioner(names), emit)

    try:
        report = launch(spec, mode=args.mode, timeout=args.timeout,
                        max_batch_bytes=args.max_batch_bytes)
    except ReproError as exc:
        emit(f"error: {exc}")
        return 1

    emit()
    emit(f"{'node':10s} {'facts':>6s} {'derived':>8s} "
         f"{'sent':>6s} {'recv':>6s}")
    for node_report in report.per_node:
        emit(f"{node_report.name:10s} {node_report.db_facts:6d} "
             f"{node_report.derivations:8d} {node_report.sent_facts:6d} "
             f"{node_report.received_facts:6d}")

    runtime = report.runtime
    emit()
    emit(f"fixpoint: {len(report.relations.get('reach', ()))} reach facts "
         f"in {runtime.rounds} rounds (causal depth {runtime.depth})")
    emit(f"traffic: {runtime.messages} batch message(s), "
         f"{runtime.bytes} bytes, across {report.procs} OS processes")
    emit(f"converged at wall time {runtime.convergence_time:.2f}s "
         f"(total {runtime.virtual_time:.2f}s)")
    return 0
