"""Multiprocess cluster launcher: one OS process per node, real sockets.

The in-process runtimes (``Cluster``, ``LBTrustSystem``) already run
over the :class:`~repro.net.socket_transport.SocketNetwork`; this module
takes the last step to a deployable system — each
:class:`~repro.cluster.node.ClusterNode` or
:class:`~repro.core.system.WorkspaceNode` lives in its **own OS
process**, exchanging delta batches peer-to-peer over TCP while a
coordinator process drives the schedule and proves quiescence.

Topology::

    coordinator ──(control: length-prefixed JSON)── worker[node0]
        │  │                                          │
        │  └─────────────────────────────────────── worker[node1]
        │                                             │
        └─ TicketLedger, rounds, reports     data: SocketNetwork frames
                                             (peer-to-peer, NOT via the
                                              coordinator)

* **Rendezvous** — the coordinator listens on an ephemeral port and
  spawns one worker per node (``multiprocessing`` *spawn* context, so
  each worker is a genuinely fresh interpreter).  Each worker opens its
  node's data listener, reports ``hello {node, port}``, receives the
  serialized job spec plus the full peer address map, rebuilds its share
  of the job **deterministically from the spec** (same seeds, same
  creation order — so e.g. HMAC secrets agree across processes without
  ever crossing the wire), and confirms ``ready``.

* **Data plane** — workers exchange the exact same wire batches the
  in-process runtimes use (:func:`~repro.net.transport.decode_batch_message`
  envelopes via one :class:`~repro.net.batch.MessageBatcher` per worker),
  directly between their :class:`SocketNetwork` endpoints.

* **Control plane** — the coordinator owns the
  :class:`~repro.cluster.quiescence.TicketLedger`: workers report every
  batch sent (ticket issued) and every batch integrated (ticket
  retired), and the ledger's per-``(sender, round)`` vectors prove
  global quiescence over genuinely concurrent delivery.  ``bsp`` runs
  coordinator-numbered barrier rounds (each worker is told exactly how
  many batches to await); ``async`` lets every worker integrate and
  re-flush the moment a batch lands, the coordinator only watching the
  ticket balance (out-of-order reports are deferred until the matching
  issue arrives, so the balance check never declares victory early).

Job kinds: ``cluster`` (Datalog shards; spec carries node names,
placement ops, the rule program and EDB facts) and ``system`` (an
``LBTrustSystem`` of principal workspaces; spec carries principals,
SeNDlog/Datalog sources, asserted facts and ``says`` statements).  For
``system`` jobs every worker rebuilds the *full* system — workspaces of
remotely-hosted principals exist locally but are never driven; placement
must route each principal's imports to its hosting node (the standard
``ld1``/``ld2`` predNode machinery guarantees this; relay-style custom
placements are rejected loudly).

The per-node outcomes merge into one
:class:`~repro.cluster.scheduler.RuntimeReport` plus a
:class:`~repro.cluster.runtime.NodeReport` per worker — the same shapes
the in-process runtimes produce, so reports stay comparable across
transports.
"""

from __future__ import annotations

import json
import multiprocessing
import select
import struct
import socket
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..datalog.errors import ClusterError, NetworkError
from ..net.batch import DEFAULT_MAX_BATCH_BYTES, MessageBatcher
from ..net.socket_transport import SocketNetwork
from ..net.transport import decode_batch_message, decode_value, encode_value
from .quiescence import TicketLedger
from .runtime import NodeReport
from .scheduler import MODE_ASYNC, MODE_BSP, SCHEDULER_MODES, RuntimeReport

_LEN = struct.Struct("!I")

#: Default per-control-message timeout; a worker that stays silent this
#: long is presumed dead and the launch aborts.
DEFAULT_TIMEOUT = 60.0


# ---------------------------------------------------------------------------
# Control channel: length-prefixed JSON messages over one TCP socket
# ---------------------------------------------------------------------------

class _Channel:
    """One control connection with buffered message framing."""

    def __init__(self, sock: socket.socket,
                 send_timeout: float = DEFAULT_TIMEOUT) -> None:
        self.sock = sock
        self.sock.setblocking(False)
        self.send_timeout = send_timeout
        self._buffer = bytearray()
        self._inbox: deque = deque()

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, message: dict) -> None:
        """Send one message, bounded by ``send_timeout``.

        A peer that stops reading (wedged worker, dead coordinator)
        must not hang the sender forever once the kernel buffer fills —
        a large job spec easily exceeds it.
        """
        blob = json.dumps(message, separators=(",", ":")).encode("utf-8")
        self.sock.settimeout(self.send_timeout)
        try:
            self.sock.sendall(_LEN.pack(len(blob)) + blob)
        except socket.timeout as exc:
            raise NetworkError(
                f"control send timed out after {self.send_timeout}s "
                f"(peer not reading)") from exc
        finally:
            self.sock.setblocking(False)

    def _parse(self) -> None:
        while len(self._buffer) >= _LEN.size:
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if len(self._buffer) < _LEN.size + length:
                break
            blob = bytes(self._buffer[_LEN.size:_LEN.size + length])
            del self._buffer[:_LEN.size + length]
            self._inbox.append(json.loads(blob.decode("utf-8")))

    def _feed(self, timeout: float) -> bool:
        """Read whatever is available within ``timeout``; False on quiet."""
        readable, _, _ = select.select([self.sock], [], [], timeout)
        if not readable:
            return False
        try:
            chunk = self.sock.recv(1 << 16)
        except BlockingIOError:
            return False
        if not chunk:
            raise NetworkError("control channel closed by peer")
        self._buffer.extend(chunk)
        self._parse()
        return True

    def poll(self) -> list:
        """Every complete message already readable, without blocking."""
        while self._feed(0):
            pass
        messages = list(self._inbox)
        self._inbox.clear()
        return messages

    def recv(self, timeout: float) -> dict:
        """The next message, waiting up to ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        while not self._inbox:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise NetworkError(
                    f"control message timed out after {timeout}s")
            self._feed(min(remaining, 0.1))
        return self._inbox.popleft()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass


# ---------------------------------------------------------------------------
# Job specs
# ---------------------------------------------------------------------------

def cluster_spec(nodes, placement, program, facts=(),
                 collect=()) -> dict:
    """A serializable ``cluster`` job.

    ``placement`` is a list of ops applied to a fresh
    :class:`~repro.cluster.partition.Partitioner` in order:
    ``["hash", pred, column]``, ``["range", pred, column, boundaries]``,
    ``["replicate", pred]``, ``["place", pred, [key], node]``.
    ``facts`` are ``(pred, values)`` pairs routed by the placement;
    ``collect`` names the predicates whose distributed union the final
    report should carry.
    """
    return {
        "kind": "cluster",
        "nodes": list(nodes),
        "placement": [list(op) for op in placement],
        "program": program,
        "facts": [[pred, list(values)] for pred, values in facts],
        "collect": list(collect),
    }


def system_spec(principals, auth="hmac", seed=7, rsa_bits=512,
                delegation=False, authorization=False, sendlog=None,
                loads=(), facts=(), says=(), collect=()) -> dict:
    """A serializable ``system`` (LBTrustSystem) job.

    ``principals`` are ``(name, node)`` pairs **in creation order** —
    every worker replays the same construction with the same ``seed``,
    which is what makes provisioned keys agree across processes.
    ``loads`` are ``(principal, datalog_source)``, ``facts`` are
    ``(principal, pred, values)``, ``says`` are ``(speaker, listener,
    statement)``; ``collect`` names predicates gathered per principal
    into the final report.
    """
    return {
        "kind": "system",
        "auth": auth,
        "seed": seed,
        "rsa_bits": rsa_bits,
        "delegation": bool(delegation),
        "authorization": bool(authorization),
        "principals": [[name, node] for name, node in principals],
        "sendlog": sendlog,
        "loads": [[name, source] for name, source in loads],
        "facts": [[name, pred, list(values)] for name, pred, values in facts],
        "says": [[speaker, listener, stmt] for speaker, listener, stmt in says],
        "collect": list(collect),
    }


def spec_nodes(spec: dict) -> list:
    """The worker set of a spec: one process per network node."""
    if spec["kind"] == "cluster":
        return list(spec["nodes"])
    seen: dict = {}
    for _name, node in spec["principals"]:
        seen.setdefault(node, None)
    return list(seen)


# ---------------------------------------------------------------------------
# The merged outcome
# ---------------------------------------------------------------------------

@dataclass
class LaunchReport:
    """One multiprocess run: merged runtime totals + per-worker shares.

    ``relations`` is the distributed union per collected predicate
    (``cluster`` jobs); ``principal_relations`` maps principal → pred →
    facts gathered from whichever worker hosted the principal
    (``system`` jobs).  ``runtime`` carries the same fields the
    in-process :class:`~repro.cluster.scheduler.ExecutionRuntime`
    reports, with wall-clock seconds for the time figures.
    """

    kind: str
    procs: int = 0
    runtime: RuntimeReport = field(default_factory=RuntimeReport)
    per_node: list = field(default_factory=list)
    relations: dict = field(default_factory=dict)
    principal_relations: dict = field(default_factory=dict)
    delivered: int = 0
    rejected: int = 0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "procs": self.procs,
            "runtime": self.runtime.as_dict(),
            "per_node": [n.as_dict() for n in self.per_node],
            "delivered": self.delivered,
            "rejected": self.rejected,
        }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _SendLog:
    """Network adapter counting batch sends per destination per flush."""

    def __init__(self, network: SocketNetwork) -> None:
        self.network = network
        self.sends: list = []

    def send(self, src: str, dst: str, payload: bytes) -> None:
        self.network.send(src, dst, payload)
        self.sends.append(dst)

    @property
    def total(self):
        return self.network.total

    def take(self) -> dict:
        counts: dict = {}
        for dst in self.sends:
            counts[dst] = counts.get(dst, 0) + 1
        self.sends = []
        return counts


class _Job:
    """A worker's share of the job: one protocol node + its codecs."""

    def __init__(self, node, registry, stats_before=None,
                 run_report=None, system=None) -> None:
        self.node = node
        self.registry = registry
        self.stats_before = stats_before
        self.run_report = run_report
        self.system = system

    def collect(self, spec: dict, my_node: str) -> dict:
        out: dict = {}
        if spec["kind"] == "cluster":
            relations = {}
            for pred in spec.get("collect", ()):
                relations[pred] = [
                    [encode_value(v, self.registry) for v in fact]
                    for fact in sorted(self.node.db.tuples(pred), key=repr)
                ]
            out["relations"] = relations
            stats = self.node.stats
            out["node_report"] = {
                "derivations": stats.derivations,
                "new_facts": stats.new_facts,
                "sent_facts": self.node.sent_facts,
                "received_facts": self.node.received_facts,
                "db_facts": self.node.db.total_facts(),
            }
        else:
            principals = {}
            derivations = 0
            db_facts = 0
            for principal in self.node.principals:
                per_pred = {}
                for pred in spec.get("collect", ()):
                    per_pred[pred] = [
                        [encode_value(v, self.registry) for v in fact]
                        for fact in sorted(principal.tuples(pred), key=repr)
                    ]
                principals[principal.name] = per_pred
                stats = principal.workspace.stats
                before = self.stats_before.get(principal.name)
                derivations += (stats.diff(before).derivations
                                if before is not None else stats.derivations)
                db_facts += principal.workspace.db.total_facts()
            out["principals"] = principals
            out["node_report"] = {
                "derivations": derivations,
                "new_facts": 0,
                "sent_facts": 0,
                "received_facts": 0,
                "db_facts": db_facts,
            }
            out["delivered"] = self.run_report.delivered
            out["rejected"] = self.run_report.rejected
        return out


def _build_cluster_job(spec: dict, my_node: str) -> _Job:
    from .partition import Partitioner
    from .runtime import Cluster

    names = list(spec["nodes"])
    partitioner = Partitioner(names)
    for op in spec.get("placement", ()):
        kind = op[0]
        if kind == "hash":
            partitioner.hash_partition(op[1], column=op[2])
        elif kind == "range":
            partitioner.range_partition(op[1], op[2], tuple(op[3]))
        elif kind == "replicate":
            partitioner.replicate(op[1])
        elif kind == "place":
            partitioner.place(op[1], tuple(op[2]), op[3])
        else:
            raise ClusterError(f"unknown placement op {kind!r}")
    # Rebuild the whole cluster object (cheap) so loading, static checks
    # and fact routing behave exactly as in-process; only this worker's
    # node is ever driven.
    cluster = Cluster(names, partitioner=partitioner)
    cluster.load(spec["program"])
    for pred, values in spec.get("facts", ()):
        cluster.assert_fact(pred, tuple(values))
    return _Job(cluster.nodes[my_node], cluster.registry)


def _build_system_job(spec: dict, my_node: str) -> _Job:
    from ..core.system import LBTrustSystem, RunReport, WorkspaceNode
    from ..languages.sendlog import install_sendlog

    system = LBTrustSystem(
        auth=spec.get("auth", "hmac"),
        seed=spec.get("seed", 7),
        rsa_bits=spec.get("rsa_bits", 512),
        delegation=spec.get("delegation", False),
        authorization=spec.get("authorization", False),
    )
    for name, node in spec["principals"]:
        system.create_principal(name, node=node)
    if spec.get("sendlog"):
        install_sendlog(system, spec["sendlog"])
    for name, source in spec.get("loads", ()):
        system.principal(name).load(source)
    for name, pred, values in spec.get("facts", ()):
        system.principal(name).assert_fact(pred, tuple(values))
    for speaker, listener, stmt in spec.get("says", ()):
        system.principal(speaker).says(listener, stmt)
    run_report = RunReport()
    mine = [p for p in system.principals.values() if p.node == my_node]
    node = WorkspaceNode(system, my_node, mine, run_report)
    stats_before = {p.name: p.workspace.stats.copy() for p in mine}
    return _Job(node, system.registry, stats_before=stats_before,
                run_report=run_report, system=system)


def _check_local_imports(job: _Job, my_node: str, items: list) -> None:
    """Reject relay-routed imports a single worker cannot apply soundly.

    In-process, an import for a principal hosted elsewhere is swept to
    that host's outbox by the scheduler; across processes the canonical
    workspace lives in another worker, so importing into the local
    replica would silently fork its state.
    """
    if job.system is None:
        return
    for to, _pred, _fact in items:
        principal = job.system.principals.get(to)
        if principal is not None and principal.node != my_node:
            raise ClusterError(
                f"relay-routed import: principal {to!r} is hosted on "
                f"{principal.node!r}, not {my_node!r}; multiprocess "
                f"placements must route imports to the hosting node")


def _drain_and_flush(job: _Job, batcher: MessageBatcher, sendlog: _SendLog,
                     my_node: str, stamp: int) -> tuple[int, dict]:
    """Drain the node's outbox under ``stamp``; returns (facts, sends)."""
    drained = job.node.drain_outbox(
        lambda dst, pred, fact, to="": batcher.add(
            my_node, dst, pred, fact, to=to, round_stamp=stamp))
    batcher.flush(stamp)
    return drained, sendlog.take()


def _worker_entry(host: str, port: int, my_node: str) -> None:
    """Worker process main: rendezvous, build, exchange, report."""
    control: Optional[_Channel] = None
    network: Optional[SocketNetwork] = None
    try:
        network = SocketNetwork()
        network.add_node(my_node)
        control = _Channel(socket.create_connection((host, port), timeout=30))
        control.send({"type": "hello", "node": my_node,
                      "host": network.host, "port": network.port_of(my_node)})
        message = control.recv(DEFAULT_TIMEOUT)
        if message.get("type") != "spec":
            raise ClusterError(f"expected spec, got {message.get('type')!r}")
        spec = message["spec"]
        timeout = float(message.get("timeout", DEFAULT_TIMEOUT))
        control.send_timeout = timeout
        for name, (peer_host, peer_port) in message["peers"].items():
            if name != my_node:
                network.add_remote(name, peer_host, peer_port)
        if spec["kind"] == "cluster":
            job = _build_cluster_job(spec, my_node)
        elif spec["kind"] == "system":
            job = _build_system_job(spec, my_node)
        else:
            raise ClusterError(f"unknown job kind {spec['kind']!r}")
        sendlog = _SendLog(network)
        batcher = MessageBatcher(sendlog, job.registry,
                                 max_bytes=message.get(
                                     "max_batch_bytes",
                                     DEFAULT_MAX_BATCH_BYTES))
        control.send({"type": "ready"})
        mode = message.get("mode", MODE_BSP)
        if mode == MODE_ASYNC:
            _worker_async(job, control, network, batcher, sendlog,
                          my_node, timeout)
        else:
            _worker_bsp(job, control, network, batcher, sendlog,
                        my_node, timeout)
        quiesce = getattr(job.node, "quiesce", None)
        if quiesce is not None:
            quiesce()
        report = job.collect(spec, my_node)
        report["type"] = "report"
        report["node"] = my_node
        report["messages"] = network.total.messages
        report["bytes"] = network.total.bytes
        control.send(report)
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        if control is not None:
            try:
                control.send({"type": "error", "node": my_node,
                              "error": str(exc),
                              "traceback": traceback.format_exc()})
            except Exception:
                pass
        raise SystemExit(1) from exc
    finally:
        if network is not None:
            network.close()
        if control is not None:
            control.close()


def _receive_round(job: _Job, network: SocketNetwork, my_node: str,
                   expect: dict, held: deque,
                   timeout: float) -> tuple[int, int, list]:
    """Await this barrier's batches — ``expect[src]`` many per sender.

    Workers are *not* in lockstep: a fast peer may already have flushed
    its next round while a slow peer's previous-round batch is still in
    flight, so counting frames per **source** is what makes the barrier
    exact — per-link FIFO guarantees the first ``expect[src]`` frames
    from ``src`` are precisely its previous-round flush.  Surplus frames
    (a peer running ahead) are parked in ``held`` for the next barrier.

    Returns ``(new_facts, delivered_facts, retired)`` where ``retired``
    lists one ``[sender, stamp, 1]`` triple per integrated batch.
    """
    needed = {src: count for src, count in expect.items() if count}
    items: list = []
    retired: list = []

    def _take(frame) -> bool:
        src, _dst, blob = frame
        if needed.get(src, 0) <= 0:
            return False
        needed[src] -= 1
        stamp, decoded = decode_batch_message(blob, job.registry)
        retired.append([src, stamp, 1])
        items.extend(decoded)
        return True

    for frame in list(held):
        if _take(frame):
            held.remove(frame)
    while any(count > 0 for count in needed.values()):
        frame = network.receive(timeout)
        if frame is None:
            missing = {src: count for src, count in needed.items() if count}
            raise ClusterError(
                f"{my_node}: wire went quiet still expecting "
                f"batch(es) {missing}")
        if not _take(frame):
            held.append(frame)
    new_facts = 0
    if items:
        _check_local_imports(job, my_node, items)
        new_facts = job.node.integrate(items)
    return new_facts, len(items), retired


def _worker_bsp(job: _Job, control: _Channel, network: SocketNetwork,
                batcher: MessageBatcher, sendlog: _SendLog,
                my_node: str, timeout: float) -> None:
    held: deque = deque()
    while True:
        message = control.recv(timeout)
        kind = message.get("type")
        if kind == "stop":
            return
        if kind != "round":
            raise ClusterError(f"unexpected control message {kind!r}")
        number = message["number"]
        expect = message.get("expect", {})
        if number == 0:
            new_facts, delivered, retired = job.node.bootstrap(), 0, []
        else:
            new_facts, delivered, retired = _receive_round(
                job, network, my_node, expect, held, timeout)
        _drained, sent = _drain_and_flush(job, batcher, sendlog,
                                          my_node, number)
        control.send({"type": "flushed", "round": number,
                      "new_facts": new_facts, "delivered": delivered,
                      "sent": sent, "retired": retired})


def _worker_async(job: _Job, control: _Channel, network: SocketNetwork,
                  batcher: MessageBatcher, sendlog: _SendLog,
                  my_node: str, timeout: float) -> None:
    message = control.recv(timeout)
    if message.get("type") != "start":
        raise ClusterError(
            f"unexpected control message {message.get('type')!r}")
    new_facts = job.node.bootstrap()
    next_stamp = 1
    _drained, sent = _drain_and_flush(job, batcher, sendlog, my_node,
                                      next_stamp)
    control.send({"type": "activity", "phase": "bootstrap",
                  "new_facts": new_facts, "delivered": 0,
                  "sent": [[dst, next_stamp, count]
                           for dst, count in sent.items()],
                  "retired": []})
    # No idle watchdog here: a quiet worker is a *healthy* state in a
    # long async run (a pure source node legitimately receives nothing
    # while its peers churn).  Liveness comes from the coordinator — its
    # stall detector aborts a wedged run and closes the control channel,
    # which control.poll() surfaces as NetworkError; and workers are
    # daemon processes, so they can never outlive the coordinator.
    while True:
        for message in control.poll():
            if message.get("type") == "stop":
                return
        frame = network.receive(0.05)
        if frame is None:
            continue
        src, _dst, blob = frame
        stamp, items = decode_batch_message(blob, job.registry)
        _check_local_imports(job, my_node, items)
        # The heart of overlap, process-distributed: integrate *now*,
        # flush the consequences immediately, tell the ledger.
        new_facts = job.node.integrate(items)
        candidate = max(next_stamp, stamp + 1)
        _drained, sent = _drain_and_flush(job, batcher, sendlog,
                                          my_node, candidate)
        if sent:
            next_stamp = candidate
        control.send({"type": "activity", "phase": "exchange",
                      "new_facts": new_facts, "delivered": len(items),
                      "sent": [[dst, candidate, count]
                               for dst, count in sent.items()],
                      "retired": [[src, stamp, 1]]})


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------

class _Coordinator:
    """Spawns workers, drives the schedule, owns the ticket ledger."""

    def __init__(self, spec: dict, mode: str = MODE_BSP,
                 max_rounds: int = 500, timeout: float = DEFAULT_TIMEOUT,
                 max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
                 host: str = "127.0.0.1") -> None:
        if mode not in SCHEDULER_MODES:
            raise ClusterError(
                f"unknown scheduler mode {mode!r}; pick one of "
                f"{'/'.join(SCHEDULER_MODES)}")
        self.spec = spec
        self.mode = mode
        self.max_rounds = max_rounds
        self.timeout = timeout
        self.max_batch_bytes = max_batch_bytes
        self.host = host
        self.nodes = spec_nodes(spec)
        if len(self.nodes) < 1:
            raise ClusterError("a launch needs at least one node")
        self.ledger = TicketLedger()
        self.channels: dict[str, _Channel] = {}
        self.processes: list = []
        self._epoch = 0.0

    # -- lifecycle -----------------------------------------------------

    def run(self) -> LaunchReport:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, 0))
            listener.listen(len(self.nodes))
            port = listener.getsockname()[1]
            context = multiprocessing.get_context("spawn")
            for name in self.nodes:
                process = context.Process(
                    target=_worker_entry, args=(self.host, port, name),
                    name=f"repro-node-{name}", daemon=True)
                process.start()
                self.processes.append(process)
            self._rendezvous(listener)
            self._epoch = time.monotonic()
            report = LaunchReport(kind=self.spec["kind"],
                                  procs=len(self.nodes))
            report.runtime.mode = self.mode
            if self.mode == MODE_ASYNC:
                self._run_async(report.runtime)
            else:
                self._run_bsp(report.runtime)
            self._collect(report)
            report.runtime.virtual_time = self._clock()
            report.runtime.convergence_time = self.ledger.convergence_clock()
            return report
        finally:
            listener.close()
            for channel in self.channels.values():
                channel.close()
            for process in self.processes:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=5.0)

    def _clock(self) -> float:
        return time.monotonic() - self._epoch

    def _rendezvous(self, listener: socket.socket) -> None:
        listener.settimeout(self.timeout)
        pending = set(self.nodes)
        addresses: dict[str, tuple] = {}
        try:
            while pending:
                conn, _addr = listener.accept()
                channel = _Channel(conn, send_timeout=self.timeout)
                hello = channel.recv(self.timeout)
                self._check_worker(hello)
                name = hello.get("node")
                if hello.get("type") != "hello" or name not in pending:
                    raise ClusterError(f"bad rendezvous hello: {hello!r}")
                pending.discard(name)
                self.channels[name] = channel
                addresses[name] = (hello["host"], hello["port"])
        except socket.timeout as exc:
            raise ClusterError(
                f"worker(s) {sorted(pending)} never reported within "
                f"{self.timeout}s") from exc
        for name, channel in self.channels.items():
            channel.send({"type": "spec", "spec": self.spec,
                          "mode": self.mode, "timeout": self.timeout,
                          "max_batch_bytes": self.max_batch_bytes,
                          "peers": {peer: list(addr)
                                    for peer, addr in addresses.items()}})
        for name, channel in self.channels.items():
            ready = channel.recv(self.timeout)
            self._check_worker(ready)
            if ready.get("type") != "ready":
                raise ClusterError(f"worker {name} sent {ready!r}")

    def _check_worker(self, message: dict) -> None:
        if message.get("type") == "error":
            raise ClusterError(
                f"worker {message.get('node')} failed: "
                f"{message.get('error')}\n{message.get('traceback', '')}")

    # -- BSP barriers --------------------------------------------------

    def _run_bsp(self, runtime: RuntimeReport) -> None:
        #: dst -> src -> batches the next barrier must await (per-source:
        #: a fast peer's round-N frames can be on the wire before a slow
        #: peer's round-N-1 ones; only per-link FIFO counts are exact)
        expect: dict[str, dict] = {name: {} for name in self.nodes}
        number = 0
        while True:
            for name, channel in self.channels.items():
                channel.send({"type": "round", "number": number,
                              "expect": expect[name]})
            next_expect: dict[str, dict] = {name: {} for name in self.nodes}
            round_new = 0
            round_sent = 0
            delivered_any = False
            for name, channel in self.channels.items():
                reply = channel.recv(self.timeout)
                self._check_worker(reply)
                if reply.get("type") != "flushed":
                    raise ClusterError(f"worker {name} sent {reply!r}")
                round_new += reply["new_facts"]
                runtime.new_facts += reply["new_facts"]
                runtime.delivered_facts += reply.get("delivered", 0)
                if reply.get("delivered"):
                    delivered_any = True
                for sender, stamp, count in reply.get("retired", ()):
                    self.ledger.retire(stamp, count=count, sender=sender)
                for dst, count in reply.get("sent", {}).items():
                    self.ledger.issue(number, count=count, sender=name)
                    per_src = next_expect.setdefault(dst, {})
                    per_src[name] = per_src.get(name, 0) + count
                    round_sent += count
            self.ledger.close_round(number, round_new, self._clock())
            if round_sent:
                runtime.depth += 1
            if delivered_any:
                runtime.productive_rounds += 1
            runtime.rounds = number + 1
            if self.ledger.quiescent():
                break
            number += 1
            if number > self.max_rounds:
                raise ClusterError(
                    f"launch did not quiesce within {self.max_rounds} "
                    f"rounds")
            expect = next_expect

    # -- async overlap -------------------------------------------------

    def _run_async(self, runtime: RuntimeReport) -> None:
        for channel in self.channels.values():
            channel.send({"type": "start"})
        bootstrapped: set = set()
        deferred: list = []
        sockets = {channel.sock: (name, channel)
                   for name, channel in self.channels.items()}
        deadline = time.monotonic() + self.timeout
        while True:
            readable, _, _ = select.select(list(sockets), [], [], 0.05)
            progressed = False
            for sock in readable:
                name, channel = sockets[sock]
                for message in channel.poll():
                    progressed = True
                    self._apply_activity(name, message, runtime,
                                         bootstrapped, deferred)
            if progressed:
                deadline = time.monotonic() + self.timeout
                # Deferred retires: a receiver's report can overtake its
                # sender's on the two control channels; retry now that
                # more issues may have landed.
                still: list = []
                for sender, stamp, count in deferred:
                    for _ in range(count):
                        if not self.ledger.retire_guarded(stamp,
                                                          sender=sender):
                            still.append([sender, stamp, 1])
                deferred = still
            if (len(bootstrapped) == len(self.nodes) and not deferred
                    and not self.ledger.outstanding()):
                break
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"async launch stalled: {self.ledger.outstanding()} "
                    f"ticket(s) outstanding, {len(deferred)} deferred, "
                    f"{len(bootstrapped)}/{len(self.nodes)} bootstrapped")
            if runtime.events > self.max_rounds * max(1, len(self.nodes)):
                raise ClusterError(
                    f"async launch did not quiesce within "
                    f"{runtime.events} delivery events")
        self.ledger.close_quiet(self._clock())
        runtime.rounds = runtime.depth
        runtime.productive_rounds = runtime.events

    def _apply_activity(self, name: str, message: dict,
                        runtime: RuntimeReport, bootstrapped: set,
                        deferred: list) -> None:
        self._check_worker(message)
        if message.get("type") != "activity":
            raise ClusterError(f"worker {name} sent {message!r}")
        if message.get("phase") == "bootstrap":
            bootstrapped.add(name)
        else:
            runtime.events += 1
        runtime.new_facts += message.get("new_facts", 0)
        runtime.delivered_facts += message.get("delivered", 0)
        # Issues strictly before retires: an activity message is atomic,
        # and its retires may reference its own sends' predecessors.
        for _dst, stamp, count in message.get("sent", ()):
            self.ledger.issue(stamp, count=count, sender=name)
            runtime.depth = max(runtime.depth, stamp)
        for sender, stamp, count in message.get("retired", ()):
            for _ in range(count):
                if not self.ledger.retire_guarded(stamp, sender=sender):
                    deferred.append([sender, stamp, 1])

    # -- final collection ----------------------------------------------

    def _collect(self, report: LaunchReport) -> None:
        from ..meta.registry import RuleRegistry

        registry = RuleRegistry()
        for channel in self.channels.values():
            channel.send({"type": "stop"})
        for name, channel in self.channels.items():
            reply = channel.recv(self.timeout)
            self._check_worker(reply)
            if reply.get("type") != "report":
                raise ClusterError(f"worker {name} sent {reply!r}")
            node_report = reply.get("node_report", {})
            report.per_node.append(NodeReport(
                name=name,
                derivations=node_report.get("derivations", 0),
                new_facts=node_report.get("new_facts", 0),
                sent_facts=node_report.get("sent_facts", 0),
                received_facts=node_report.get("received_facts", 0),
                db_facts=node_report.get("db_facts", 0),
            ))
            report.runtime.messages += reply.get("messages", 0)
            report.runtime.bytes += reply.get("bytes", 0)
            report.delivered += reply.get("delivered", 0)
            report.rejected += reply.get("rejected", 0)
            for pred, facts in reply.get("relations", {}).items():
                bucket = report.relations.setdefault(pred, set())
                for fact in facts:
                    bucket.add(tuple(decode_value(v, registry)
                                     for v in fact))
            for principal, relations in reply.get("principals", {}).items():
                per_pred = report.principal_relations.setdefault(
                    principal, {})
                for pred, facts in relations.items():
                    bucket = per_pred.setdefault(pred, set())
                    for fact in facts:
                        bucket.add(tuple(decode_value(v, registry)
                                         for v in fact))
        report.per_node.sort(key=lambda n: n.name)


def launch(spec: dict, mode: str = MODE_BSP, max_rounds: int = 500,
           timeout: float = DEFAULT_TIMEOUT,
           max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
           host: str = "127.0.0.1") -> LaunchReport:
    """Run ``spec`` with one OS process per node; block until quiescent.

    The multiprocess entry point: builds a coordinator, spawns the
    workers, drives ``bsp`` barriers or ``async`` overlap to ticket-
    proved quiescence, and returns the merged :class:`LaunchReport`.
    """
    coordinator = _Coordinator(spec, mode=mode, max_rounds=max_rounds,
                               timeout=timeout,
                               max_batch_bytes=max_batch_bytes, host=host)
    return coordinator.run()
