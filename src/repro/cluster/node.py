"""One shard of a distributed evaluation: local engine + delta outbox.

A :class:`ClusterNode` owns its shard of every partitioned EDB relation
and runs ordinary semi-naive rounds over the *whole* rule program.  The
distribution boundary is the engine's per-round delta-exchange hook
(:attr:`repro.datalog.runtime.EvalContext.remote_emit_rows`): each
freshly derived *id-row* set is partitioned by owner before assertion —

* facts this node owns (or local-mode predicates) join the local delta
  frontier exactly as on a single node;
* facts owned elsewhere are **emitted, not asserted**: they go to the
  owner's outbox entry and leave no trace in the local database, so the
  local fixpoint never branches on another shard's state;
* replicated-predicate facts are both kept and queued to every peer.

Ownership is decided in id space: the partition key is a single column,
so ``(pred, key id)`` → owner is memoized against the append-only
interner, and only facts bound for a peer materialize to value tuples
(they must cross the process boundary as values anyway).

Frontier state crosses the node boundary with zero copies: the outbox
accumulates plain fact sets, incoming batches are handed to
:func:`~repro.datalog.engine.propagate_insertions` as-is, and the
stratum loop wraps them via :meth:`Relation.wrap` — the same COW
handoff single-node semi-naive uses for its deltas.

The node speaks the :class:`~repro.cluster.scheduler.ExecutionRuntime`
protocol (``bootstrap`` / ``integrate`` / ``drain_outbox`` /
``quiesce``), so the same scheduler that drives principal workspaces
drives Datalog shards — one execution model, two node kinds.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..datalog.builtins import BuiltinRegistry, standard_registry
from ..datalog.database import Database
from ..datalog.engine import (
    EngineRule,
    EvalStats,
    FactSet,
    eval_stratum,
    propagate_insertions,
)
from ..datalog.runtime import EvalContext
from ..datalog.stratify import stratify
from ..datalog.errors import ClusterError
from .partition import MODE_LOCAL, MODE_REPLICATED, Partitioner


class ClusterNode:
    """A named shard: local database, rules, stats, and a delta outbox."""

    #: integrate() only ever fills *this* node's outbox, so the async
    #: scheduler need not offer other nodes a drain after a delivery
    #: here (unlike workspace hosts, whose imports land at whichever
    #: node hosts the destination principal).
    integration_is_local = True

    def __init__(self, name: str, partitioner: Partitioner,
                 builtins: Optional[BuiltinRegistry] = None) -> None:
        self.name = name
        self.partitioner = partitioner
        self.db = Database()
        #: asserted + received facts, the node's EDB accessor for
        #: selective stratum recomputation
        self.base: FactSet = {}
        self.rules: list[EngineRule] = []
        self.strata: list = []
        self.stats = EvalStats()
        #: facts awaiting exchange: destination -> pred -> set
        self.outbox: dict[str, FactSet] = {}
        #: (dst, pred, fact) already queued — a re-derived remote fact
        #: must not be resent every round its body delta rematches.  The
        #: whole set belongs to one *generation* (``sent_generation``):
        #: :meth:`quiesce` clears it and opens the next generation once
        #: the runtime proves global convergence (every queued fact has
        #: been delivered and asserted at its owner by then, so a later
        #: re-derivation resends at most once and is deduplicated on
        #: arrival), keeping long-running clusters' memory bounded by
        #: one run's traffic instead of growing forever.
        self._sent: set = set()
        self.sent_generation = 0
        self.sent_facts = 0
        self.received_facts = 0
        self._peers = tuple(n for n in partitioner.nodes if n != name)
        #: (pred, key id) -> owner node.  Ids are stable for the life of
        #: the database (the interner is append-only), so the placement
        #: decision for a key is computed at most once per node.
        self._owner_memo: dict = {}
        # A single-node cluster owns every fact, so the delta-exchange
        # hook would be an identity function paid once per derived row;
        # leave it uninstalled and the engine stays on the plain
        # single-node id-space path.
        self.context = EvalContext(
            builtins=builtins if builtins is not None else standard_registry(),
            stats=self.stats,
            remote_emit_rows=self._emit_rows if self._peers else None,
        )

    # ------------------------------------------------------------------
    # Program / EDB loading
    # ------------------------------------------------------------------

    def load_rules(self, rules: Iterable[EngineRule]) -> None:
        self.rules.extend(rules)
        self.strata = stratify(self.rules)

    def seed(self, pred: str, fact: tuple) -> bool:
        """Install one EDB fact on this shard (placement already decided)."""
        if self.db.add(pred, fact):
            self.base.setdefault(pred, set()).add(fact)
            return True
        return False

    # ------------------------------------------------------------------
    # The delta-exchange hook
    # ------------------------------------------------------------------

    def _emit_rows(self, pred: str, rows: set) -> set:
        """Partition freshly derived id rows by owner; return the local
        keep.  Only rows bound for a peer materialize to value tuples."""
        mode = self.partitioner.mode(pred)
        if mode == MODE_LOCAL:
            return rows
        interner = self.db.interner
        materialize = interner.materialize_row
        if mode == MODE_REPLICATED:
            for row in rows:
                fact = materialize(row)
                for peer in self._peers:
                    self._queue_one(peer, pred, fact)
            return rows
        key_col = self.partitioner.key_column(pred)
        owner_of_key = self.partitioner.owner_of_key
        values = interner.values
        memo = self._owner_memo
        name = self.name
        keep = set()
        for row in rows:
            if key_col >= len(row):
                raise ClusterError(
                    f"fact {materialize(row)!r} of {pred!r} has no column "
                    f"{key_col} to partition on"
                )
            memo_key = (pred, row[key_col])
            owner = memo.get(memo_key)
            if owner is None:
                owner = owner_of_key(pred, values[row[key_col]])
                memo[memo_key] = owner
            if owner == name:
                keep.add(row)
            else:
                self._queue_one(owner, pred, materialize(row))
        return keep

    def _queue_one(self, dst: str, pred: str, fact: tuple) -> None:
        marker = (dst, pred, fact)
        if marker in self._sent:
            return
        self._sent.add(marker)
        self.outbox.setdefault(dst, {}).setdefault(pred, set()).add(fact)

    # ------------------------------------------------------------------
    # The ExecutionRuntime node protocol
    # ------------------------------------------------------------------

    def bootstrap(self) -> int:
        """Run the full local fixpoint over the seeded shard."""
        new_facts = 0
        for stratum in self.strata:
            added = eval_stratum(stratum, self.db, self.context,
                                 stats=self.stats)
            new_facts += sum(len(facts) for facts in added.values())
        return new_facts

    def integrate(self, items: Iterable[tuple]) -> int:
        """Absorb one delivery's ``(to, pred, fact)`` items (``to`` is
        principal routing, unused by plain shards)."""
        incoming: FactSet = {}
        for _to, pred, fact in items:
            incoming.setdefault(pred, set()).add(fact)
        return self.integrate_facts(incoming)

    def integrate_facts(self, incoming: FactSet) -> int:
        """Absorb received deltas; returns new local facts.

        Novel facts are asserted, recorded as received EDB, and pushed
        through the strata semi-naive — re-entering ``_emit_rows`` for any
        further derivations they enable.
        """
        fresh: FactSet = {}
        count = 0
        for pred, facts in incoming.items():
            relation = self.db.rel(pred)
            novel = {fact for fact in facts if relation.add(fact)}
            if novel:
                fresh[pred] = novel
                self.base.setdefault(pred, set()).update(novel)
                count += len(novel)
        self.received_facts += count
        if fresh:
            added = propagate_insertions(
                self.strata, self.db, self.context, fresh,
                edb_facts=self._edb_facts, stats=self.stats)
            count += sum(len(facts) for facts in added.values())
        return count

    def drain_outbox(self, sink: Callable) -> int:
        """Hand every queued fact to ``sink(dst, pred, fact)``; clear."""
        drained = 0
        for dst in sorted(self.outbox):
            per_pred = self.outbox[dst]
            for pred in sorted(per_pred):
                for fact in sorted(per_pred[pred], key=repr):
                    sink(dst, pred, fact)
                    drained += 1
        self.outbox = {}
        self.sent_facts += drained
        return drained

    def quiesce(self) -> None:
        """Global quiescence reached: open a new dedup generation.

        Every marker in ``_sent`` describes a fact that has been
        delivered and asserted at its owner, so the markers are only
        protecting against *redundant* resends, not correctness — and a
        redundant resend is deduplicated by the owner's ``Relation.add``.
        Clearing here bounds the set's memory by one run's traffic; the
        evicted count is observable as
        :attr:`EvalStats.sent_dedup_evictions`.
        """
        if self._sent:
            self.stats.sent_dedup_evictions += len(self._sent)
            self._sent = set()
        self.sent_generation += 1

    # ------------------------------------------------------------------

    def _edb_facts(self, pred: str) -> set:
        return self.base.get(pred, set())

    def tuples(self, pred: str) -> set:
        return set(self.db.tuples(pred))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClusterNode({self.name!r}, {self.db.total_facts()} facts, "
                f"{len(self.rules)} rules)")
