"""Fact placement: who owns which shard of a partitioned predicate.

The paper's section 3.5 places predicate partitions on nodes through the
``predNode`` relation (the ld1/ld2 listing pins ``export[P]`` to P's
node).  This module generalizes that into a :class:`Partitioner` with
three placement modes per predicate:

* **partitioned** — facts are hash- or range-partitioned on one key
  column; each fact has exactly one owner node;
* **replicated** — every node keeps a copy (broadcast on derivation);
* **local** (the default for undeclared predicates) — facts stay where
  they are derived and are never exchanged.

Explicit ``predNode``-style pins (:meth:`Partitioner.place`) override the
hash/range rule for individual key values, which is exactly how the
paper's ``predNode(export[P],N) <- loc(P,N)`` placement behaves: the
``loc`` table, not a hash function, decides where P's exports live.

Hashing is **deterministic across processes** (CRC32 over a canonical
rendering) so a cluster's shard assignment is stable run-to-run —
Python's own ``hash()`` is salted per process and must not leak into
placement.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from typing import Iterable, Optional

from ..datalog.errors import ClusterError

MODE_LOCAL = "local"
MODE_PARTITIONED = "partitioned"
MODE_REPLICATED = "replicated"


def stable_hash(value) -> int:
    """A process-independent 32-bit hash of a ground value."""
    if isinstance(value, bytes):
        blob = b"b:" + value
    elif isinstance(value, str):
        blob = b"s:" + value.encode("utf-8")
    else:
        blob = repr(value).encode("utf-8")
    return zlib.crc32(blob)


class PlacementMap:
    """Explicit ``predNode``-style pins: ``(pred, key) -> node``."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, tuple], str] = {}

    def place(self, pred: str, key: tuple, node: str) -> None:
        self._entries[(pred, tuple(key))] = node

    def owner(self, pred: str, key: tuple) -> Optional[str]:
        return self._entries.get((pred, tuple(key)))

    def __len__(self) -> int:
        return len(self._entries)

    @classmethod
    def from_prednode_facts(cls, rows: Iterable[tuple]) -> "PlacementMap":
        """Build from ``predNode`` tuples ``(PredPartition, node)``.

        Rows of any other shape are ignored (the relation is open to
        user rules deriving other placements).
        """
        from ..datalog.terms import PredPartition

        placement = cls()
        for row in rows:
            if len(row) == 2 and isinstance(row[0], PredPartition) \
                    and isinstance(row[1], str):
                placement.place(row[0].pred, row[0].keys, row[1])
        return placement


class _Rule:
    """One predicate's placement rule."""

    __slots__ = ("mode", "column", "boundaries")

    def __init__(self, mode: str, column: int = 0,
                 boundaries: Optional[tuple] = None) -> None:
        self.mode = mode
        self.column = column
        self.boundaries = boundaries


class Partitioner:
    """Maps ``(pred, fact)`` to an owner node over a fixed node list."""

    def __init__(self, nodes: Iterable[str]) -> None:
        self.nodes: tuple[str, ...] = tuple(nodes)
        if not self.nodes:
            raise ClusterError("a partitioner needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ClusterError("duplicate node names in partitioner")
        self._rules: dict[str, _Rule] = {}
        self.pins = PlacementMap()

    # -- declaring placements ------------------------------------------------

    def hash_partition(self, pred: str, column: int = 0) -> None:
        """Shard ``pred`` by a deterministic hash of one column."""
        self._declare(pred, _Rule(MODE_PARTITIONED, column))

    def range_partition(self, pred: str, column: int,
                        boundaries: Iterable) -> None:
        """Shard ``pred`` by column ranges.

        ``boundaries`` are ``len(nodes) - 1`` sorted split points; a fact
        goes to node ``i`` where ``i`` counts boundaries strictly below
        its column value.
        """
        splits = tuple(boundaries)
        if len(splits) != len(self.nodes) - 1:
            raise ClusterError(
                f"range partition of {pred!r} needs {len(self.nodes) - 1} "
                f"boundaries for {len(self.nodes)} nodes, got {len(splits)}"
            )
        if list(splits) != sorted(splits):
            raise ClusterError(f"range boundaries for {pred!r} not sorted")
        self._declare(pred, _Rule(MODE_PARTITIONED, column, splits))

    def replicate(self, pred: str) -> None:
        """Broadcast ``pred``'s facts to every node."""
        self._declare(pred, _Rule(MODE_REPLICATED))

    def force_replicate(self, pred: str) -> None:
        """Override any existing placement of ``pred`` with replication.

        Used by the join-compatibility checker's auto-replicate policy,
        which deliberately *changes* an incompatible placement — the
        conflict guard in :meth:`_declare` does not apply.
        """
        self._rules[pred] = _Rule(MODE_REPLICATED)

    def place(self, pred: str, key: tuple, node: str) -> None:
        """Pin one partition explicitly (``predNode``-style override)."""
        if node not in self.nodes:
            raise ClusterError(f"unknown node {node!r}")
        key = tuple(key)
        if len(key) != 1:
            # owner() probes pins with the single partition-column value;
            # a wider key could never match and would be silently ignored
            # (multi-column pins belong to the workspace predNode path,
            # which looks up full key_arity prefixes via PlacementMap).
            raise ClusterError(
                f"partitioner pins take a single-column key, got {key!r}")
        if pred not in self._rules:
            self._rules[pred] = _Rule(MODE_PARTITIONED, 0)
        self.pins.place(pred, key, node)

    def placement_snapshot(self) -> dict:
        """The current per-predicate placement rules, for rollback.

        ``_Rule`` objects are immutable in practice (force_replicate
        swaps them wholesale), so a shallow copy suffices.
        """
        return dict(self._rules)

    def restore_placement(self, snapshot: dict) -> None:
        """Roll the placement rules back to a prior snapshot.

        Used by :meth:`Cluster.load` when a later static check rejects a
        program after auto-replication already mutated the placement.
        """
        self._rules = dict(snapshot)

    def _declare(self, pred: str, rule: _Rule) -> None:
        existing = self._rules.get(pred)
        if existing is not None and (existing.mode != rule.mode
                                     or existing.column != rule.column
                                     or existing.boundaries != rule.boundaries):
            raise ClusterError(f"conflicting placement for {pred!r}")
        self._rules[pred] = rule

    # -- lookups -------------------------------------------------------------

    def mode(self, pred: str) -> str:
        rule = self._rules.get(pred)
        return rule.mode if rule is not None else MODE_LOCAL

    def key_column(self, pred: str) -> Optional[int]:
        """The partition-key column of ``pred``, or None when not
        partitioned."""
        rule = self._rules.get(pred)
        if rule is None or rule.mode != MODE_PARTITIONED:
            return None
        return rule.column

    def scheme_signature(self, pred: str) -> tuple:
        """A comparable rendering of how ``pred``'s key values map to nodes.

        Two predicates with equal signatures send equal key values to
        the same node: same strategy (hash over the shared node list, or
        ranges with identical boundaries) and identical explicit pins.
        Consumed by the static join-compatibility checker.
        """
        rule = self._rules.get(pred)
        boundaries = rule.boundaries if rule is not None else None
        pins = tuple(sorted(
            (key, node)
            for (pinned_pred, key), node in self.pins._entries.items()
            if pinned_pred == pred
        ))
        strategy = "range" if boundaries is not None else "hash"
        return (strategy, boundaries, pins)

    def is_exchanged(self, pred: str) -> bool:
        return self.mode(pred) != MODE_LOCAL

    def owner(self, pred: str, fact: tuple) -> Optional[str]:
        """The owner node of a fact, or None for local/replicated preds."""
        rule = self._rules.get(pred)
        if rule is None or rule.mode != MODE_PARTITIONED:
            return None
        if len(self.nodes) == 1:
            return self.nodes[0]
        column = rule.column
        if column >= len(fact):
            raise ClusterError(
                f"fact {fact!r} of {pred!r} has no column {column} "
                f"to partition on"
            )
        return self._owner_of_value(rule, pred, fact[column])

    def owner_of_key(self, pred: str, value) -> Optional[str]:
        """The owner node by partition-key *value* alone.

        Placement depends only on the key column (:meth:`owner` never
        reads the other positions), so callers that already hold the key
        — e.g. the id-space emit path, which memoizes per key id — can
        skip materializing the rest of the fact.
        """
        rule = self._rules.get(pred)
        if rule is None or rule.mode != MODE_PARTITIONED:
            return None
        if len(self.nodes) == 1:
            return self.nodes[0]
        return self._owner_of_value(rule, pred, value)

    def _owner_of_value(self, rule, pred: str, value) -> str:
        pinned = self.pins.owner(pred, (value,))
        if pinned is not None:
            return pinned
        if rule.boundaries is not None:
            return self.nodes[bisect_left(rule.boundaries, value)]
        return self.nodes[stable_hash(value) % len(self.nodes)]

    def exchanged_preds(self) -> list[str]:
        return sorted(p for p in self._rules
                      if self._rules[p].mode != MODE_LOCAL)

    def describe(self) -> dict:
        """JSON-safe summary (used by the CLI demo and benchmarks)."""
        out = {}
        for pred, rule in sorted(self._rules.items()):
            if rule.mode == MODE_REPLICATED:
                out[pred] = {"mode": rule.mode}
            else:
                out[pred] = {
                    "mode": rule.mode,
                    "column": rule.column,
                    "strategy": "range" if rule.boundaries else "hash",
                }
        return out
