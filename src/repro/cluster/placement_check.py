"""Static join-compatibility checking of rule bodies against a placement.

The PR-3 sharded runtime's correctness contract was *"union-of-shards
equals the single-node fixpoint iff the placement is join-compatible —
the programmer's responsibility, exactly as ``predNode`` placement is in
the paper"*.  This module turns that contract into a machine check at
``load()`` time.

A rule is **join-compatible** with a placement when every pair of facts
its body must join is guaranteed co-located on some node.  Facts of
*replicated* predicates are everywhere; facts of *local* predicates are
wherever they were derived (their distribution is part of the program's
meaning, as in the paper's ``predNode``); so the constraint falls on the
**partitioned** body predicates: if a rule reads two or more of them,
their partition-key columns must be bound to the *same* term (the same
variable, or equal constants) **and** their placement schemes must route
equal key values to the same node — same hash function over the same
node list, identical range boundaries, identical explicit pins.

When a rule fails the check the loader either **rejects** it with a
diagnostic naming the rule and the mismatched columns, or — under
``on_incompatible="replicate"`` — **auto-replicates** every partitioned
body predicate after the first, restoring correctness at the cost of
broadcast traffic (reported back to the caller so the decision is never
silent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..datalog.errors import ClusterError
from ..datalog.terms import Constant, Literal, Term, Variable
from .partition import MODE_PARTITIONED, Partitioner

#: Policies for handling an incompatible rule at load time.
ON_INCOMPATIBLE = ("reject", "replicate")


@dataclass
class PlacementIssue:
    """One rule whose partitioned body literals cannot be co-located."""

    rule_label: str
    detail: str
    #: partitioned predicates involved, with their key columns
    preds: tuple

    def __str__(self) -> str:
        return f"rule {self.rule_label!r}: {self.detail}"


def _key_term(literal: Literal, column: int) -> Optional[Term]:
    args = literal.atom.all_args
    if column >= len(args):
        return None
    return args[column]


def _terms_colocate(left: Term, right: Term) -> bool:
    """True when two partition-key terms always carry equal values."""
    if isinstance(left, Variable) and isinstance(right, Variable):
        return left.name == right.name
    if isinstance(left, Constant) and isinstance(right, Constant):
        return left.value == right.value
    return False


def exchanged_rule_preds(rule, partitioner: Partitioner) -> set:
    """Predicates of one rule (surface or engine form) whose facts the
    placement exchanges — partitioned or replicated heads and positive
    body reads.  Consumed by the analyzer's static cost pass: a rule
    over exchanged predicates pays network per derived row, so its
    cardinality estimate is a shard-traffic estimate."""
    touched: set = set()
    heads = getattr(rule, "heads", None)
    if heads is None:  # engine rules carry a single head
        heads = (rule.head,)
    for head in heads:
        if partitioner.is_exchanged(head.pred):
            touched.add(head.pred)
    for item in rule.body:
        if isinstance(item, Literal) and not item.negated \
                and partitioner.is_exchanged(item.atom.pred):
            touched.add(item.atom.pred)
    return touched


def analyze_join_compatibility(rules: Iterable,
                               partitioner: Partitioner) -> list[PlacementIssue]:
    """Every rule whose body joins are not co-located under the placement.

    ``rules`` are engine rules (single-head, normalized).  Negated
    literals are ignored — negation over exchanged predicates is already
    rejected outright by the distributability check.
    """
    issues: list[PlacementIssue] = []
    if len(partitioner.nodes) <= 1:
        return issues  # one node: everything is trivially co-located
    for rule in rules:
        partitioned: list[tuple[Literal, str, int]] = []
        for item in rule.body:
            if not isinstance(item, Literal) or item.negated:
                continue
            pred = item.atom.pred
            column = partitioner.key_column(pred)
            if column is None:
                continue
            partitioned.append((item, pred, column))
        if len(partitioned) <= 1:
            continue
        label = rule.label or rule.head.pred
        anchor_literal, anchor_pred, anchor_column = partitioned[0]
        anchor_term = _key_term(anchor_literal, anchor_column)
        anchor_scheme = partitioner.scheme_signature(anchor_pred)
        for literal, pred, column in partitioned[1:]:
            term = _key_term(literal, column)
            if anchor_term is None or term is None:
                issues.append(PlacementIssue(
                    rule_label=label,
                    detail=(f"partition column {column} of {pred!r} is out "
                            f"of range for {literal.atom!r}"),
                    preds=((anchor_pred, anchor_column), (pred, column)),
                ))
                continue
            if not _terms_colocate(anchor_term, term):
                issues.append(PlacementIssue(
                    rule_label=label,
                    detail=(
                        f"{anchor_pred!r} is partitioned on column "
                        f"{anchor_column} (bound to {anchor_term!r}) but "
                        f"{pred!r} is partitioned on column {column} "
                        f"(bound to {term!r}); the join is only "
                        f"co-located when both partition keys bind the "
                        f"same term"
                    ),
                    preds=((anchor_pred, anchor_column), (pred, column)),
                ))
            elif (pred != anchor_pred
                  and partitioner.scheme_signature(pred) != anchor_scheme):
                issues.append(PlacementIssue(
                    rule_label=label,
                    detail=(
                        f"{anchor_pred!r} (column {anchor_column}) and "
                        f"{pred!r} (column {column}) agree on the join key "
                        f"but use different placement schemes, so equal "
                        f"keys may live on different nodes"
                    ),
                    preds=((anchor_pred, anchor_column), (pred, column)),
                ))
    return issues


def check_join_compatibility(rules: Iterable, partitioner: Partitioner,
                             on_incompatible: str = "reject") -> list[str]:
    """Enforce join compatibility; returns auto-replicated predicates.

    ``on_incompatible="reject"`` raises :class:`ClusterError` naming the
    first offending rule and its mismatched columns;
    ``"replicate"`` instead flips the non-anchor partitioned predicates
    of each offending rule to replicated placement (iterating until the
    program is clean) and returns the predicates it changed.
    """
    if on_incompatible not in ON_INCOMPATIBLE:
        raise ClusterError(
            f"unknown incompatibility policy {on_incompatible!r}; pick one "
            f"of {'/'.join(ON_INCOMPATIBLE)}")
    rule_list = list(rules)
    replicated: list[str] = []
    while True:
        issues = analyze_join_compatibility(rule_list, partitioner)
        if not issues:
            return replicated
        if on_incompatible == "reject":
            raise ClusterError(
                "join-incompatible placement: "
                + "; ".join(str(issue) for issue in issues)
                + " — repartition the predicates onto a shared key column, "
                  "replicate one of them, or load with "
                  "on_incompatible='replicate'"
            )
        progressed = False
        for issue in issues:
            for pred, _column in issue.preds[1:]:
                if partitioner.mode(pred) == MODE_PARTITIONED:
                    partitioner.force_replicate(pred)
                    replicated.append(pred)
                    progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise ClusterError(
                "placement auto-replication failed to converge")
