"""Distributed quiescence: round-stamped ticket counting.

A sharded fixpoint has converged exactly when (a) no node can derive
anything new from what it already holds and (b) no delta batch is still
in flight that could change (a).  The textbook hazard is declaring
convergence while a message is sitting in a link queue; the classic fix
(Mattern-style credit/ticket counting) is to pair every message with a
ticket — issued at send, retired at receive — and only declare
quiescence when every ticket ever issued has been retired.

The :class:`TicketLedger` stamps tickets with the sender's evaluation
round and records the virtual clock at which each round closed, so a
converged run can report *when* (in simulated time) the system went
quiet, not just that it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RoundRecord:
    """Activity observed while one evaluation round was closing."""

    number: int
    issued: int = 0
    retired: int = 0
    new_facts: int = 0
    clock: float = 0.0


@dataclass
class TicketLedger:
    """Issue/retire message tickets; decide distributed quiescence."""

    issued: int = 0
    retired: int = 0
    _per_round_issued: dict = field(default_factory=dict)
    _per_round_retired: dict = field(default_factory=dict)
    rounds: list = field(default_factory=list)

    def issue(self, round_stamp: int, count: int = 1) -> None:
        """Register ``count`` messages sent during ``round_stamp``."""
        self.issued += count
        self._per_round_issued[round_stamp] = \
            self._per_round_issued.get(round_stamp, 0) + count

    def retire(self, round_stamp: int, count: int = 1) -> None:
        """Register ``count`` messages received (stamped at their send round)."""
        self.retired += count
        self._per_round_retired[round_stamp] = \
            self._per_round_retired.get(round_stamp, 0) + count
        if self.retired > self.issued:
            # A retired ticket that was never issued means the transport
            # duplicated or fabricated a message — surface loudly.
            raise AssertionError(
                f"ticket ledger retired {self.retired} > issued {self.issued}"
            )

    def outstanding(self) -> int:
        """Tickets issued but not yet retired (messages in flight)."""
        return self.issued - self.retired

    def close_round(self, number: int, new_facts: int, clock: float) -> RoundRecord:
        """Record one completed round's activity and the virtual clock."""
        record = RoundRecord(
            number=number,
            issued=self._per_round_issued.get(number, 0),
            retired=sum(self._per_round_retired.values())
            - sum(r.retired for r in self.rounds),
            new_facts=new_facts,
            clock=clock,
        )
        self.rounds.append(record)
        return record

    def quiescent(self) -> bool:
        """True when the system has provably converged.

        All tickets retired (nothing in flight) *and* the last closed
        round neither derived new facts nor issued messages — so no node
        holds work that could restart the exchange.
        """
        if self.outstanding():
            return False
        if not self.rounds:
            return False
        last = self.rounds[-1]
        return last.new_facts == 0 and last.issued == 0

    def convergence_clock(self) -> float:
        """Virtual time at which the last productive round closed."""
        for record in reversed(self.rounds):
            if record.new_facts or record.issued or record.retired:
                return record.clock
        return self.rounds[0].clock if self.rounds else 0.0
