"""Distributed quiescence: per-sender round-vector ticket counting.

A sharded fixpoint has converged exactly when (a) no node can derive
anything new from what it already holds and (b) no delta batch is still
in flight that could change (a).  The textbook hazard is declaring
convergence while a message is sitting in a link queue; the classic fix
(Mattern-style credit/ticket counting) is to pair every message with a
ticket — issued at send, retired at receive — and only declare
quiescence when every ticket ever issued has been retired.

Since the overlapped (async) scheduler delivers batches out of order,
the ledger keeps a **round vector per sender**: tickets are counted per
``(sender, round_stamp)`` slot rather than in one global pair of
counters.  That keeps the protocol exact under reordering, duplication
and delay — a duplicated or fabricated delivery over-retires *its own*
slot and is detected immediately, even while other senders legitimately
have tickets outstanding (a global counter would have masked it).

The ledger stamps tickets with the sender's evaluation round and records
the virtual clock at which each round closed, so a converged run can
report *when* (in simulated time) the system went quiet, not just that
it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional


@dataclass
class RoundRecord:
    """Activity observed while one evaluation round was closing."""

    number: int
    issued: int = 0
    retired: int = 0
    new_facts: int = 0
    clock: float = 0.0


@dataclass
class TicketLedger:
    """Issue/retire message tickets; decide distributed quiescence.

    ``issued``/``retired`` stay as global totals (cheap outstanding
    check); ``_vector`` holds the per-``(sender, round)`` split that
    makes over-retirement detection exact.  ``sender`` is any hashable
    node identity; callers that predate the round-vector generalization
    simply leave it ``None`` and share one anonymous sender slot.
    """

    issued: int = 0
    retired: int = 0
    #: ``(sender, round) -> [issued, retired]``
    _vector: dict = field(default_factory=dict)
    _per_round_issued: dict = field(default_factory=dict)
    #: ``retired`` total already attributed to a closed RoundRecord
    _retired_recorded: int = 0
    rounds: list = field(default_factory=list)

    def issue(self, round_stamp: int, count: int = 1,
              sender: Optional[Hashable] = None) -> None:
        """Register ``count`` messages sent by ``sender`` during
        ``round_stamp``."""
        self.issued += count
        slot = self._vector.setdefault((sender, round_stamp), [0, 0])
        slot[0] += count
        self._per_round_issued[round_stamp] = \
            self._per_round_issued.get(round_stamp, 0) + count

    def retire(self, round_stamp: int, count: int = 1,
               sender: Optional[Hashable] = None) -> None:
        """Register ``count`` messages received (stamped at their send round).

        Retiring more tickets than ``sender`` issued for ``round_stamp``
        means the transport duplicated or fabricated a message — that is
        surfaced loudly *per slot*, so the fault is caught even while
        other senders still have tickets legitimately in flight.
        """
        slot = self._vector.get((sender, round_stamp))
        if slot is None or slot[1] + count > slot[0]:
            raise AssertionError(
                f"ticket ledger: sender {sender!r} round {round_stamp} "
                f"retired {(slot[1] + count) if slot else count} > issued "
                f"{slot[0] if slot else 0}"
            )
        slot[1] += count
        self.retired += count

    def retire_guarded(self, round_stamp: int,
                       sender: Optional[Hashable] = None) -> bool:
        """Retire one ticket iff ``(sender, round_stamp)`` has one in flight.

        For *open* transports (the LBTrust system's network, where tests
        and adversaries inject raw messages no batcher ever ticketed):
        foreign traffic retires nothing instead of crashing the ledger.
        Returns True when a real ticket was retired.
        """
        slot = self._vector.get((sender, round_stamp))
        if slot is None or slot[1] >= slot[0]:
            return False
        self.retire(round_stamp, sender=sender)
        return True

    def retire_any(self, sender: Optional[Hashable] = None) -> bool:
        """Retire ``sender``'s oldest outstanding ticket, whatever round.

        For a ticketed batch whose *payload* was corrupted in transit:
        the receiver cannot read the round stamp, but the message
        arriving at all proves some ticket of that sender is in flight.
        Retiring the oldest outstanding slot keeps the ledger's totals
        truthful without wedging quiescence on an unreadable stamp.
        Returns False (retiring nothing) when the sender has no ticket
        outstanding — i.e. the corrupt blob was foreign traffic.
        """
        candidates = sorted(
            stamp for (who, stamp), slot in self._vector.items()
            if who == sender and slot[1] < slot[0]
        )
        if not candidates:
            return False
        self.retire(candidates[0], sender=sender)
        return True

    def compact(self) -> None:
        """Drop per-slot bookkeeping once nothing is in flight.

        Round-vector slots and per-round issue counts exist to match
        future retires and round closes; with zero tickets outstanding
        no retire can ever reference them again (BSP round numbers are
        monotone, async stamps are never closed by number), so a
        long-lived ledger compacts them at each quiescence instead of
        growing with every run.  The ``rounds`` trail is kept — it is
        the run history callers diff — and the global totals carry the
        invariant forward.  A no-op while tickets are outstanding (an
        open transport's capped best-effort run may stop early).
        """
        if self.outstanding():
            return
        self._vector.clear()
        self._per_round_issued.clear()

    def outstanding(self) -> int:
        """Tickets issued but not yet retired (messages in flight)."""
        return self.issued - self.retired

    def outstanding_of(self, sender: Optional[Hashable] = None,
                       round_stamp: Optional[int] = None) -> int:
        """In-flight tickets of one sender (optionally one round)."""
        total = 0
        for (who, stamp), slot in self._vector.items():
            if who != sender:
                continue
            if round_stamp is not None and stamp != round_stamp:
                continue
            total += slot[0] - slot[1]
        return total

    def close_round(self, number: int, new_facts: int, clock: float) -> RoundRecord:
        """Record one completed round's activity and the virtual clock."""
        record = RoundRecord(
            number=number,
            issued=self._per_round_issued.get(number, 0),
            retired=self.retired - self._retired_recorded,
            new_facts=new_facts,
            clock=clock,
        )
        self._retired_recorded = self.retired
        self.rounds.append(record)
        return record

    def close_quiet(self, clock: float) -> RoundRecord:
        """Append a quiet closing record (no facts, no sends).

        The async scheduler proves quiescence directly — queue drained,
        outboxes empty, zero outstanding — rather than via barrier
        bookkeeping; this records that state so :meth:`quiescent` holds
        afterwards.  Depth stamps share the per-round counter space with
        barrier round numbers, so the record is built directly instead
        of through :meth:`close_round`'s stamp lookup.
        """
        record = RoundRecord(
            number=len(self.rounds),
            issued=0,
            retired=self.retired - self._retired_recorded,
            new_facts=0,
            clock=clock,
        )
        self._retired_recorded = self.retired
        self.rounds.append(record)
        return record

    def quiescent(self) -> bool:
        """True when the system has provably converged.

        All tickets retired (nothing in flight) *and* the last closed
        round neither derived new facts nor issued messages — so no node
        holds work that could restart the exchange.
        """
        if self.outstanding():
            return False
        if not self.rounds:
            return False
        last = self.rounds[-1]
        return last.new_facts == 0 and last.issued == 0

    def convergence_clock(self) -> float:
        """Virtual time at which the last productive round closed."""
        for record in reversed(self.rounds):
            if record.new_facts or record.issued or record.retired:
                return record.clock
        return self.rounds[0].clock if self.rounds else 0.0
