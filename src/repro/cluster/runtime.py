"""The sharded evaluation runtime, scheduled by the unified ExecutionRuntime.

A :class:`Cluster` is N :class:`~repro.cluster.node.ClusterNode` shards
on a :class:`~repro.net.network.SimulatedNetwork`, evaluating one rule
program to a *distributed* fixpoint.  Since PR 4 the round loop itself
lives in :class:`~repro.cluster.scheduler.ExecutionRuntime` — the same
scheduler that drives principal workspaces in
:class:`~repro.core.system.LBTrustSystem` — in one of two modes:

* ``bsp`` — bulk-synchronous: every node runs its local fixpoint, all
  outboxes flush at a barrier through one
  :class:`~repro.net.batch.MessageBatcher`, all batches deliver, repeat;
* ``async`` — overlapped: batches deliver in virtual-clock order and
  each node re-enters semi-naive the moment a delta arrives, shipping
  its consequences immediately — no barrier.

Either way the :class:`~repro.cluster.quiescence.TicketLedger`'s
per-sender round vectors prove quiescence exactly: no tickets
outstanding, no node holding unflushed work.

The union of all shards equals the single-node fixpoint whenever the
placement is *join-compatible* — and since PR 4 that is no longer the
programmer's unchecked responsibility: ``load()`` runs the static
:func:`~repro.cluster.placement_check.check_join_compatibility` analysis
and rejects (or, under ``on_incompatible="replicate"``, repairs by
replication) any rule whose body joins cannot be co-located.
Negation/aggregation over exchanged predicates is still rejected: a
shard cannot prove a fact absent while a delta for it may be in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..datalog.builtins import BuiltinRegistry
from ..datalog.engine import EngineRule, EvalStats, normalize_rules
from ..datalog.errors import ClusterError
from ..datalog.parser import parse_statements
from ..datalog.stratify import stratify
from ..datalog.terms import Rule
from ..meta.quote import compile_rule
from ..meta.registry import RuleRegistry
from ..net.batch import DEFAULT_MAX_BATCH_BYTES
from ..net.network import SimulatedNetwork
from .node import ClusterNode
from .partition import Partitioner
from .placement_check import check_join_compatibility
from .quiescence import TicketLedger
from .scheduler import MODE_BSP, ExecutionRuntime


@dataclass
class NodeReport:
    """One shard's share of the distributed run."""

    name: str
    derivations: int
    new_facts: int
    sent_facts: int
    received_facts: int
    db_facts: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "derivations": self.derivations,
            "new_facts": self.new_facts,
            "sent_facts": self.sent_facts,
            "received_facts": self.received_facts,
            "db_facts": self.db_facts,
        }


@dataclass
class ClusterReport:
    """Outcome of one :meth:`Cluster.run` call.

    ``rounds`` counts barrier rounds in ``bsp`` mode; in ``async`` mode
    it equals ``depth``, the causal depth of the exchange (length of the
    longest send→integrate→send chain), which is the comparable
    quantity — BSP's round count *is* its causal depth.
    """

    nodes: int = 0
    mode: str = MODE_BSP
    rounds: int = 0
    depth: int = 0
    messages: int = 0
    batched_facts: int = 0
    bytes: int = 0
    virtual_time: float = 0.0
    convergence_time: float = 0.0
    new_facts: int = 0
    per_node: list = field(default_factory=list)

    def max_node_derivations(self) -> int:
        return max((n.derivations for n in self.per_node), default=0)

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "mode": self.mode,
            "rounds": self.rounds,
            "depth": self.depth,
            "messages": self.messages,
            "batched_facts": self.batched_facts,
            "bytes": self.bytes,
            "virtual_time": self.virtual_time,
            "convergence_time": self.convergence_time,
            "new_facts": self.new_facts,
            "per_node": [n.as_dict() for n in self.per_node],
        }

    def __repr__(self) -> str:
        return (f"ClusterReport(nodes={self.nodes}, mode={self.mode!r}, "
                f"rounds={self.rounds}, messages={self.messages}, "
                f"bytes={self.bytes}, virtual_time={self.virtual_time:.2f})")


class Cluster:
    """N shards + partitioner + network + the scheduled fixpoint loop."""

    def __init__(self, nodes: Union[int, Iterable[str]],
                 network: Optional[SimulatedNetwork] = None,
                 partitioner: Optional[Partitioner] = None,
                 builtins: Optional[BuiltinRegistry] = None,
                 registry: Optional[RuleRegistry] = None,
                 max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
                 mode: str = MODE_BSP,
                 on_incompatible: str = "reject") -> None:
        if isinstance(nodes, int):
            if nodes < 1:
                raise ClusterError("a cluster needs at least one node")
            names = tuple(f"node{i}" for i in range(nodes))
        else:
            names = tuple(nodes)
        self.partitioner = partitioner if partitioner is not None \
            else Partitioner(names)
        if tuple(self.partitioner.nodes) != names:
            raise ClusterError("partitioner nodes do not match cluster nodes")
        self.network = network if network is not None else SimulatedNetwork()
        for name in names:
            self.network.add_node(name)
        self.registry = registry if registry is not None else RuleRegistry()
        self.nodes: dict[str, ClusterNode] = {
            name: ClusterNode(name, self.partitioner, builtins=builtins)
            for name in names
        }
        self.ledger = TicketLedger()
        self.on_incompatible = on_incompatible
        #: predicates the join-compatibility checker flipped to
        #: replicated placement (``on_incompatible="replicate"`` only)
        self.auto_replicated: list[str] = []
        #: diagnostics from the most recent :meth:`load` static check.
        self.last_check: list = []
        #: findings pragma-suppressed during that check.
        self.last_check_suppressed: list = []
        self.runtime = ExecutionRuntime(
            self.nodes, self.network, self.registry, mode=mode,
            max_batch_bytes=max_batch_bytes, ledger=self.ledger, strict=True)
        self.batcher = self.runtime.batcher
        self._rules: list[EngineRule] = []

    @property
    def mode(self) -> str:
        return self.runtime.mode

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, source: Union[str, Iterable[Rule]]) -> None:
        """Install a program on every node (facts route by placement).

        Loading statically checks the program against the placement:
        join-incompatible rules are rejected (or repaired by replication
        under ``on_incompatible="replicate"``), and nonmonotone strata
        over exchanged predicates are refused.
        """
        if isinstance(source, str):
            statements = parse_statements(source)
        else:
            statements = list(source)
        rules: list[Rule] = []
        facts: list[tuple[str, tuple]] = []
        for statement in statements:
            if not isinstance(statement, Rule):
                raise ClusterError(
                    "cluster programs take rules and facts only "
                    f"(got {type(statement).__name__})"
                )
            if statement.is_fact():
                for head in statement.heads:
                    values = tuple(
                        term.value for term in head.all_args
                        if hasattr(term, "value")
                    )
                    if len(values) != len(head.all_args):
                        raise ClusterError(
                            f"non-ground fact {head!r} in cluster program")
                    # routed only after the static checks pass, so a
                    # rejected load seeds nothing
                    facts.append((head.pred, values))
            else:
                rules.append(statement)
        if not rules:
            for pred, values in facts:
                self.assert_fact(pred, values)
            return
        sample_builtins = next(iter(self.nodes.values())).context.builtins
        # The same analyzer the workspace gate and `repro check` use:
        # errors raise the engine's own exception types (SafetyError,
        # StratificationError, WorkspaceError); warnings are kept.
        from ..analysis.pipeline import (
            GATE_PASSES,
            analyze_statements,
            raise_for_errors,
        )
        suppressed: list = []
        report = analyze_statements(
            statements, source=source if isinstance(source, str) else None,
            builtins=sample_builtins, placement=self.partitioner,
            passes=GATE_PASSES, collect_suppressed=suppressed)
        raise_for_errors(report)
        self.last_check = report
        self.last_check_suppressed = suppressed
        engine_rules: list[EngineRule] = []
        for index, rule in enumerate(rules):
            compiled = compile_rule(rule, principal=None,
                                    builtins=sample_builtins)
            for engine_rule in normalize_rules([compiled]):
                if engine_rule.label is None:
                    engine_rule.label = f"r{len(self._rules) + len(engine_rules)}"
                engine_rules.append(engine_rule)
        # The two static checks must commit atomically: auto-replication
        # mutates the partitioner, so if the distributability check then
        # rejects the program the placement is rolled back and no facts
        # are rebroadcast — a failed load leaves the cluster untouched.
        placement_before = self.partitioner.placement_snapshot()
        flipped = check_join_compatibility(
            self._rules + engine_rules, self.partitioner,
            on_incompatible=self.on_incompatible)
        try:
            self._check_distributable(engine_rules)
        except ClusterError:
            self.partitioner.restore_placement(placement_before)
            raise
        if flipped:
            self.auto_replicated.extend(flipped)
            self._rebroadcast(flipped)
        for pred, values in facts:
            self.assert_fact(pred, values)
        self._rules.extend(engine_rules)
        for node in self.nodes.values():
            # Each node gets its own EngineRule instances: plan caches are
            # per-shard (shard cardinalities differ, so should plans).
            node.load_rules([
                EngineRule(r.head, r.body, r.agg, r.label, r.source)
                for r in engine_rules
            ])

    def _rebroadcast(self, preds: Iterable[str]) -> None:
        """Re-seed already-routed facts of newly replicated predicates.

        Auto-replication may flip a predicate *after* some of its facts
        were hash-routed to a single owner — asserted EDB *and*, when a
        ``run()`` already happened, facts the owner derived; replication
        semantics require every node to hold all of them, so the union
        of every shard's full relation is broadcast.  (Seeding records
        them as received base facts on the replicas, which is exactly
        how a remotely derived delta lands during a run.)
        """
        for pred in preds:
            everywhere: set = set()
            for node in self.nodes.values():
                everywhere |= node.db.tuples(pred)
            for node in self.nodes.values():
                for fact in everywhere:
                    node.seed(pred, fact)

    def _check_distributable(self, new_rules: list[EngineRule]) -> None:
        """Reject nonmonotonicity over exchanged predicates (N > 1).

        A shard evaluating ``!p(...)`` or an aggregate over an exchanged
        predicate could commit to absence while a delta batch for ``p``
        is still in flight; there is no sound local evaluation order, so
        the combination is refused up front.
        """
        if len(self.nodes) <= 1:
            return
        exchanged = set(self.partitioner.exchanged_preds())
        if not exchanged:
            return
        strata = stratify(self._rules + new_rules)
        for stratum in strata:
            if not stratum.nonmonotone:
                continue
            touched = (stratum.reads | stratum.preds) & exchanged
            if touched:
                raise ClusterError(
                    "negation/aggregation over exchanged predicate(s) "
                    f"{sorted(touched)} cannot be evaluated on a "
                    f"{len(self.nodes)}-node cluster"
                )

    # ------------------------------------------------------------------
    # EDB routing
    # ------------------------------------------------------------------

    def assert_fact(self, pred: str, fact: tuple,
                    at: Optional[str] = None) -> None:
        """Route one EDB fact to its shard(s) per the placement rules.

        ``at`` names the asserting node for local-mode predicates
        (default: the first node).
        """
        fact = tuple(fact)
        owner = self.partitioner.owner(pred, fact)
        if owner is not None:
            self.nodes[owner].seed(pred, fact)
        elif self.partitioner.mode(pred) == "replicated":
            for node in self.nodes.values():
                node.seed(pred, fact)
        else:
            name = at if at is not None else self.partitioner.nodes[0]
            node = self.nodes.get(name)
            if node is None:
                raise ClusterError(f"unknown node {name!r}")
            node.seed(pred, fact)

    def assert_facts(self, pred: str, facts: Iterable[tuple],
                     at: Optional[str] = None) -> None:
        for fact in facts:
            self.assert_fact(pred, fact, at=at)

    # ------------------------------------------------------------------
    # The distributed fixpoint
    # ------------------------------------------------------------------

    def run(self, max_rounds: int = 500) -> ClusterReport:
        """Drive the scheduler until the ticket ledger proves quiescence;
        returns the run's :class:`ClusterReport`."""
        stats_before = {name: node.stats.copy()
                        for name, node in self.nodes.items()}
        traffic_before = {name: (node.sent_facts, node.received_facts)
                          for name, node in self.nodes.items()}
        outcome = self.runtime.run(max_rounds)

        report = ClusterReport(nodes=len(self.nodes), mode=self.mode)
        report.rounds = outcome.rounds
        report.depth = outcome.depth
        report.messages = outcome.messages
        report.bytes = outcome.bytes
        report.batched_facts = outcome.batched_facts
        report.virtual_time = outcome.virtual_time
        report.convergence_time = outcome.convergence_time
        for name in sorted(self.nodes):
            node = self.nodes[name]
            delta = node.stats.diff(stats_before[name])
            sent_before, received_before = traffic_before[name]
            report.new_facts += delta.new_facts
            # traffic fields are per-run deltas, like derivations /
            # new_facts — node.sent_facts/received_facts themselves stay
            # lifetime-cumulative
            report.per_node.append(NodeReport(
                name=name,
                derivations=delta.derivations,
                new_facts=delta.new_facts,
                sent_facts=node.sent_facts - sent_before,
                received_facts=node.received_facts - received_before,
                db_facts=node.db.total_facts(),
            ))
        return report

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def node(self, name: str) -> ClusterNode:
        node = self.nodes.get(name)
        if node is None:
            raise ClusterError(f"unknown node {name!r}")
        return node

    def tuples(self, pred: str) -> set:
        """The distributed relation: union of every shard's tuples."""
        out: set = set()
        for node in self.nodes.values():
            out |= node.db.tuples(pred)
        return out

    def total_stats(self) -> EvalStats:
        merged = EvalStats()
        for node in self.nodes.values():
            merged.merge(node.stats)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({sorted(self.nodes)}, mode={self.mode!r})"
