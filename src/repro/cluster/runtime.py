"""The sharded evaluation runtime: BSP rounds over the simulated network.

A :class:`Cluster` is N :class:`~repro.cluster.node.ClusterNode` shards
on a :class:`~repro.net.network.SimulatedNetwork`, evaluating one rule
program to a *distributed* fixpoint:

1. every node runs its local semi-naive fixpoint over its EDB shard;
   derived facts owned elsewhere are diverted to outboxes by the
   engine's delta-exchange hook;
2. outboxes flush through a :class:`~repro.net.batch.MessageBatcher` —
   one size-capped batch message per node pair per round, each issuing
   a round-stamped ticket in the quiescence ledger;
3. delivered batches retire their tickets and integrate at the owner,
   seeding its next semi-naive pass;
4. rounds repeat until the :class:`~repro.cluster.quiescence.TicketLedger`
   proves quiescence: no tickets outstanding and a closed round with no
   new facts and no sends.

The union of all shards equals the single-node fixpoint whenever the
placement is *join-compatible* — every rule's joins line up on its body
predicates' partition columns (the programmer's responsibility, exactly
as ``predNode`` placement is in the paper).  Negation/aggregation over
exchanged predicates is rejected: a shard cannot prove a fact absent
while a delta for it may still be in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..datalog.builtins import BuiltinRegistry
from ..datalog.engine import EngineRule, EvalStats, normalize_rules
from ..datalog.errors import ClusterError, NetworkError
from ..datalog.parser import parse_statements
from ..datalog.runtime import check_rule_safety
from ..datalog.stratify import stratify
from ..datalog.terms import Rule
from ..meta.quote import compile_rule
from ..meta.registry import RuleRegistry
from ..net.batch import DEFAULT_MAX_BATCH_BYTES, MessageBatcher
from ..net.network import SimulatedNetwork
from ..net.transport import decode_batch_message
from .node import ClusterNode
from .partition import Partitioner
from .quiescence import TicketLedger


@dataclass
class NodeReport:
    """One shard's share of the distributed run."""

    name: str
    derivations: int
    new_facts: int
    sent_facts: int
    received_facts: int
    db_facts: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "derivations": self.derivations,
            "new_facts": self.new_facts,
            "sent_facts": self.sent_facts,
            "received_facts": self.received_facts,
            "db_facts": self.db_facts,
        }


@dataclass
class ClusterReport:
    """Outcome of one :meth:`Cluster.run` call."""

    nodes: int = 0
    rounds: int = 0
    messages: int = 0
    batched_facts: int = 0
    bytes: int = 0
    virtual_time: float = 0.0
    convergence_time: float = 0.0
    new_facts: int = 0
    per_node: list = field(default_factory=list)

    def max_node_derivations(self) -> int:
        return max((n.derivations for n in self.per_node), default=0)

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "rounds": self.rounds,
            "messages": self.messages,
            "batched_facts": self.batched_facts,
            "bytes": self.bytes,
            "virtual_time": self.virtual_time,
            "convergence_time": self.convergence_time,
            "new_facts": self.new_facts,
            "per_node": [n.as_dict() for n in self.per_node],
        }

    def __repr__(self) -> str:
        return (f"ClusterReport(nodes={self.nodes}, rounds={self.rounds}, "
                f"messages={self.messages}, bytes={self.bytes}, "
                f"virtual_time={self.virtual_time:.2f})")


class Cluster:
    """N shards + partitioner + network + the distributed fixpoint loop."""

    def __init__(self, nodes: Union[int, Iterable[str]],
                 network: Optional[SimulatedNetwork] = None,
                 partitioner: Optional[Partitioner] = None,
                 builtins: Optional[BuiltinRegistry] = None,
                 registry: Optional[RuleRegistry] = None,
                 max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES) -> None:
        if isinstance(nodes, int):
            if nodes < 1:
                raise ClusterError("a cluster needs at least one node")
            names = tuple(f"node{i}" for i in range(nodes))
        else:
            names = tuple(nodes)
        self.partitioner = partitioner if partitioner is not None \
            else Partitioner(names)
        if tuple(self.partitioner.nodes) != names:
            raise ClusterError("partitioner nodes do not match cluster nodes")
        self.network = network if network is not None else SimulatedNetwork()
        for name in names:
            self.network.add_node(name)
        self.registry = registry if registry is not None else RuleRegistry()
        self.nodes: dict[str, ClusterNode] = {
            name: ClusterNode(name, self.partitioner, builtins=builtins)
            for name in names
        }
        self.ledger = TicketLedger()
        self.batcher = MessageBatcher(self.network, self.registry,
                                      max_bytes=max_batch_bytes,
                                      ledger=self.ledger)
        self._rules: list[EngineRule] = []

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, source: Union[str, Iterable[Rule]]) -> None:
        """Install a program on every node (facts route by placement)."""
        if isinstance(source, str):
            statements = parse_statements(source)
        else:
            statements = list(source)
        rules: list[Rule] = []
        for statement in statements:
            if not isinstance(statement, Rule):
                raise ClusterError(
                    "cluster programs take rules and facts only "
                    f"(got {type(statement).__name__})"
                )
            if statement.is_fact():
                for head in statement.heads:
                    values = tuple(
                        term.value for term in head.all_args
                        if hasattr(term, "value")
                    )
                    if len(values) != len(head.all_args):
                        raise ClusterError(
                            f"non-ground fact {head!r} in cluster program")
                    self.assert_fact(head.pred, values)
            else:
                rules.append(statement)
        if not rules:
            return
        sample_builtins = next(iter(self.nodes.values())).context.builtins
        engine_rules: list[EngineRule] = []
        for index, rule in enumerate(rules):
            compiled = compile_rule(rule, principal=None,
                                    builtins=sample_builtins)
            check_rule_safety(compiled, sample_builtins)
            for engine_rule in normalize_rules([compiled]):
                if engine_rule.label is None:
                    engine_rule.label = f"r{len(self._rules) + len(engine_rules)}"
                engine_rules.append(engine_rule)
        self._check_distributable(engine_rules)
        self._rules.extend(engine_rules)
        for node in self.nodes.values():
            # Each node gets its own EngineRule instances: plan caches are
            # per-shard (shard cardinalities differ, so should plans).
            node.load_rules([
                EngineRule(r.head, r.body, r.agg, r.label, r.source)
                for r in engine_rules
            ])

    def _check_distributable(self, new_rules: list[EngineRule]) -> None:
        """Reject nonmonotonicity over exchanged predicates (N > 1).

        A shard evaluating ``!p(...)`` or an aggregate over an exchanged
        predicate could commit to absence while a delta batch for ``p``
        is still in flight; there is no sound local evaluation order, so
        the combination is refused up front.
        """
        if len(self.nodes) <= 1:
            return
        exchanged = set(self.partitioner.exchanged_preds())
        if not exchanged:
            return
        strata = stratify(self._rules + new_rules)
        for stratum in strata:
            if not stratum.nonmonotone:
                continue
            touched = (stratum.reads | stratum.preds) & exchanged
            if touched:
                raise ClusterError(
                    "negation/aggregation over exchanged predicate(s) "
                    f"{sorted(touched)} cannot be evaluated on a "
                    f"{len(self.nodes)}-node cluster"
                )

    # ------------------------------------------------------------------
    # EDB routing
    # ------------------------------------------------------------------

    def assert_fact(self, pred: str, fact: tuple,
                    at: Optional[str] = None) -> None:
        """Route one EDB fact to its shard(s) per the placement rules.

        ``at`` names the asserting node for local-mode predicates
        (default: the first node).
        """
        fact = tuple(fact)
        owner = self.partitioner.owner(pred, fact)
        if owner is not None:
            self.nodes[owner].seed(pred, fact)
        elif self.partitioner.mode(pred) == "replicated":
            for node in self.nodes.values():
                node.seed(pred, fact)
        else:
            name = at if at is not None else self.partitioner.nodes[0]
            node = self.nodes.get(name)
            if node is None:
                raise ClusterError(f"unknown node {name!r}")
            node.seed(pred, fact)

    def assert_facts(self, pred: str, facts: Iterable[tuple],
                     at: Optional[str] = None) -> None:
        for fact in facts:
            self.assert_fact(pred, fact, at=at)

    # ------------------------------------------------------------------
    # The distributed fixpoint
    # ------------------------------------------------------------------

    def run(self, max_rounds: int = 500) -> ClusterReport:
        """Exchange batched deltas until the ticket ledger proves
        quiescence; returns the run's :class:`ClusterReport`."""
        stats_before = {name: node.stats.copy()
                        for name, node in self.nodes.items()}
        messages_before = self.network.total.messages
        bytes_before = self.network.total.bytes
        items_before = self.batcher.sent_items
        rounds_before = len(self.ledger.rounds)
        round_number = rounds_before

        new_facts = 0
        for name in sorted(self.nodes):
            new_facts += self.nodes[name].run_initial()
        self._flush_round(round_number)
        self.ledger.close_round(round_number, new_facts, self.network.clock)

        rounds_run = 0
        while not self.ledger.quiescent():
            rounds_run += 1
            if rounds_run > max_rounds:
                raise ClusterError(
                    f"cluster did not quiesce within {max_rounds} rounds")
            round_number += 1
            incoming = self._receive_round()
            new_facts = 0
            for name in sorted(incoming):
                new_facts += self.nodes[name].integrate(incoming[name])
            self._flush_round(round_number)
            self.ledger.close_round(round_number, new_facts,
                                    self.network.clock)

        report = ClusterReport(nodes=len(self.nodes))
        report.rounds = len(self.ledger.rounds) - rounds_before
        report.messages = self.network.total.messages - messages_before
        report.bytes = self.network.total.bytes - bytes_before
        report.batched_facts = self.batcher.sent_items - items_before
        report.virtual_time = self.network.clock
        report.convergence_time = self.ledger.convergence_clock()
        for name in sorted(self.nodes):
            node = self.nodes[name]
            delta = node.stats.diff(stats_before[name])
            report.new_facts += delta.new_facts
            report.per_node.append(NodeReport(
                name=name,
                derivations=delta.derivations,
                new_facts=delta.new_facts,
                sent_facts=node.sent_facts,
                received_facts=node.received_facts,
                db_facts=node.db.total_facts(),
            ))
        return report

    def _flush_round(self, round_number: int) -> int:
        for name in sorted(self.nodes):
            node = self.nodes[name]
            node.drain_outbox(
                lambda dst, pred, fact, _src=name: self.batcher.add(
                    _src, dst, pred, fact, round_stamp=round_number))
        return self.batcher.flush(round_number)

    def _receive_round(self) -> dict[str, dict[str, set]]:
        incoming: dict[str, dict[str, set]] = {}
        for _src, dst, blob in self.network.deliver_all():
            try:
                round_stamp, items = decode_batch_message(blob, self.registry)
            except NetworkError as exc:
                raise ClusterError(f"undecodable delta batch: {exc}") from exc
            self.ledger.retire(round_stamp)
            per_node = incoming.setdefault(dst, {})
            for _to, pred, fact in items:
                per_node.setdefault(pred, set()).add(fact)
        return incoming

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def node(self, name: str) -> ClusterNode:
        node = self.nodes.get(name)
        if node is None:
            raise ClusterError(f"unknown node {name!r}")
        return node

    def tuples(self, pred: str) -> set:
        """The distributed relation: union of every shard's tuples."""
        out: set = set()
        for node in self.nodes.values():
            out |= node.db.tuples(pred)
        return out

    def total_stats(self) -> EvalStats:
        merged = EvalStats()
        for node in self.nodes.values():
            merged.merge(node.stats)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({sorted(self.nodes)})"
