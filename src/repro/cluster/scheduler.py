"""The unified execution runtime: one scheduler for every node kind.

Before this module existed the repo had two parallel drivers: the
:class:`~repro.cluster.runtime.Cluster` ran plain-Datalog shards in BSP
lockstep while :meth:`LBTrustSystem.run` drove principal workspaces over
the network layer with its own ad-hoc round loop.  The
:class:`ExecutionRuntime` collapses both into one event loop over a
*node protocol*, so a network node may host a Datalog shard
(:class:`~repro.cluster.node.ClusterNode`) or a set of full principal
workspaces (:class:`~repro.core.system.WorkspaceNode`) and the paper's
``predNode`` reconfiguration story — move the computation, keep the
program — holds across both.

**The node protocol** (duck-typed):

``name``
    the node's network identity;
``bootstrap() -> int``
    run whatever local work is possible before any exchange (a shard's
    initial fixpoint; a no-op for workspaces, which fixpoint eagerly at
    assert time); returns the number of new local facts;
``integrate(items) -> int``
    absorb one delivery's ``[(to, pred, fact), ...]`` payload, re-enter
    local evaluation, and return the number of facts accepted for
    processing;
``drain_outbox(sink) -> int``
    hand every pending outbound fact to ``sink(dst, pred, fact, to="")``
    and clear the outbox;
``quiesce()``
    (optional) called once when the runtime proves global quiescence —
    the hook where bounded-memory maintenance (e.g. generation-tagged
    dedup clears) is safe;
``integration_is_local``
    (optional, default False) set True when ``integrate`` can only ever
    create work in this node's own outbox (Datalog shards); the async
    scheduler then skips offering every other node a drain after a
    delivery here.  Workspace hosts leave it False: an import lands at
    whichever node hosts the destination principal.

**Scheduling modes**:

* ``bsp`` — bulk-synchronous rounds: every node integrates, then all
  outboxes flush at a barrier, then all messages deliver.  Rounds are
  numbered globally; the :class:`~repro.cluster.quiescence.TicketLedger`
  closes one record per barrier.
* ``async`` — overlapped rounds: messages deliver one at a time in
  virtual-clock order and the receiving node re-enters semi-naive
  *immediately*, flushing its consequent deltas without waiting for any
  barrier.  Batches carry a **causal depth** stamp (1 + the deepest
  stamp the sender had integrated), so the ledger's per-sender round
  vectors stay exact under out-of-order delivery and the run can report
  how long its longest message chain was — the async analog of BSP's
  round count.

Both modes terminate with the same guarantee: zero tickets outstanding
and no node holding unflushed work, i.e. the distributed fixpoint is
complete.  Union-of-node state equals the single-node fixpoint whenever
the placement is join-compatible — which
:func:`~repro.cluster.placement_check.check_join_compatibility` now
verifies statically at ``load()`` instead of trusting the programmer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..datalog.errors import ClusterError, NetworkError
from ..net.batch import DEFAULT_MAX_BATCH_BYTES, MessageBatcher
from ..net.transport import decode_batch_message
from .quiescence import TicketLedger

MODE_BSP = "bsp"
MODE_ASYNC = "async"

#: Valid scheduler modes, in documentation order.
SCHEDULER_MODES = (MODE_BSP, MODE_ASYNC)


@dataclass
class RuntimeReport:
    """Outcome of one :meth:`ExecutionRuntime.run` call.

    ``depth`` is the causal depth of the exchange — the length of the
    longest send→integrate→send chain.  ``rounds`` counts barrier
    rounds (closing confirm round included) in ``bsp`` mode and equals
    ``depth`` in ``async`` mode, since causal depth *is* the comparable
    round quantity under overlap (BSP's productive round count is its
    causal depth).  ``productive_rounds`` counts barrier rounds in which
    something was delivered (the LBTrust system's historical
    ``RunReport.rounds`` semantics) in ``bsp`` mode, and delivery events
    (also exposed as ``events``) in ``async`` mode.
    """

    mode: str = MODE_BSP
    rounds: int = 0
    productive_rounds: int = 0
    depth: int = 0
    events: int = 0
    messages: int = 0
    batched_facts: int = 0
    bytes: int = 0
    new_facts: int = 0
    delivered_facts: int = 0
    virtual_time: float = 0.0
    convergence_time: float = 0.0

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "rounds": self.rounds,
            "productive_rounds": self.productive_rounds,
            "depth": self.depth,
            "events": self.events,
            "messages": self.messages,
            "batched_facts": self.batched_facts,
            "bytes": self.bytes,
            "new_facts": self.new_facts,
            "delivered_facts": self.delivered_facts,
            "virtual_time": self.virtual_time,
            "convergence_time": self.convergence_time,
        }


class ExecutionRuntime:
    """Drives a set of protocol nodes to a distributed fixpoint.

    ``strict`` selects the transport contract: a closed transport (the
    cluster owns its network exclusively) treats undecodable blobs,
    unticketed traffic, unknown destinations and an exhausted
    ``max_rounds`` as fatal; an open one (the LBTrust system's network,
    where tests and adversaries inject raw messages) reports rejects
    through ``on_reject(source, reason)`` and returns a best-effort
    report when the round cap is hit.
    """

    def __init__(self, nodes: dict, network, registry,
                 mode: str = MODE_BSP,
                 max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
                 ledger: Optional[TicketLedger] = None,
                 strict: bool = True,
                 on_reject: Optional[Callable[[str, str], None]] = None) -> None:
        if mode not in SCHEDULER_MODES:
            raise ClusterError(
                f"unknown scheduler mode {mode!r}; pick one of "
                f"{'/'.join(SCHEDULER_MODES)}")
        self.nodes = dict(nodes)
        self.network = network
        self.registry = registry
        self.mode = mode
        self.ledger = ledger if ledger is not None else TicketLedger()
        self.batcher = MessageBatcher(network, registry,
                                      max_bytes=max_batch_bytes,
                                      ledger=self.ledger)
        self.strict = strict
        self.on_reject = on_reject

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, max_rounds: int = 500) -> RuntimeReport:
        report = RuntimeReport(mode=self.mode)
        messages_before = self.batcher.sent_messages
        items_before = self.batcher.sent_items
        bytes_before = self.network.total.bytes
        if self.mode == MODE_ASYNC:
            self._run_async(report, max_rounds)
        else:
            self._run_bsp(report, max_rounds)
        for name in sorted(self.nodes):
            quiesce = getattr(self.nodes[name], "quiesce", None)
            if quiesce is not None:
                quiesce()
        # Quiescence is also the safe point to compact the ledger's
        # per-slot bookkeeping (kept: the rounds trail and totals).
        self.ledger.compact()
        report.messages = self.batcher.sent_messages - messages_before
        report.batched_facts = self.batcher.sent_items - items_before
        report.bytes = self.network.total.bytes - bytes_before
        report.virtual_time = self.network.clock
        return report

    # ------------------------------------------------------------------
    # BSP: barrier rounds
    # ------------------------------------------------------------------

    def _run_bsp(self, report: RuntimeReport, max_rounds: int) -> None:
        ledger = self.ledger
        rounds_before = len(ledger.rounds)
        round_number = rounds_before

        new_facts = 0
        for name in sorted(self.nodes):
            new_facts += self.nodes[name].bootstrap()
        report.new_facts += new_facts
        if self._flush_all(round_number):
            report.depth += 1
        ledger.close_round(round_number, new_facts, self.network.clock)

        rounds_run = 0
        # Unticketed traffic (an open network's foreign messages, queued
        # before the run) never shows in the ledger; the queue must also
        # be empty before quiescence is real.
        while not ledger.quiescent() or self.network.pending():
            rounds_run += 1
            if rounds_run > max_rounds:
                if not self.strict:
                    # Open transports keep the historical best-effort
                    # contract: stop at the cap and report what landed.
                    break
                raise ClusterError(
                    f"runtime did not quiesce within {max_rounds} rounds")
            round_number += 1
            incoming = self._receive_all()
            new_facts = 0
            delivered = 0
            for name in sorted(incoming):
                node = self.nodes.get(name)
                if node is None:
                    if self.strict:
                        raise ClusterError(f"delivery to unknown node {name!r}")
                    self._reject(name, "unknown node")
                    continue
                items = incoming[name]
                delivered += len(items)
                new_facts += node.integrate(items)
            report.new_facts += new_facts
            report.delivered_facts += delivered
            if incoming:
                report.productive_rounds += 1
            if self._flush_all(round_number):
                report.depth += 1
            ledger.close_round(round_number, new_facts, self.network.clock)
        report.rounds = len(ledger.rounds) - rounds_before
        report.convergence_time = ledger.convergence_clock()

    def _flush_all(self, round_stamp: int) -> int:
        """Drain every node's outbox and flush one barrier's batches."""
        before = self.batcher.sent_messages
        for name in sorted(self.nodes):
            node = self.nodes[name]
            node.drain_outbox(
                lambda dst, pred, fact, to="", _src=name: self.batcher.add(
                    _src, dst, pred, fact, to=to, round_stamp=round_stamp))
        self.batcher.flush(round_stamp)
        return self.batcher.sent_messages - before

    def _receive_all(self) -> dict:
        """Deliver the whole queue; group decoded items per destination."""
        incoming: dict[str, list] = {}
        for src, dst, blob in self.network.deliver_all():
            for _stamp, item in self._decode(src, dst, blob):
                incoming.setdefault(dst, []).append(item)
        return incoming

    # ------------------------------------------------------------------
    # Async: overlapped rounds
    # ------------------------------------------------------------------

    def _run_async(self, report: RuntimeReport, max_rounds: int) -> None:
        network = self.network
        ledger = self.ledger
        #: causal depth stamp each node's next outgoing batch will carry
        next_stamp = {name: 1 for name in self.nodes}
        productive_clock = 0.0

        new_facts = 0
        for name in sorted(self.nodes):
            new_facts += self.nodes[name].bootstrap()
        report.new_facts += new_facts
        if new_facts:
            productive_clock = network.clock
        for name in sorted(self.nodes):
            report.depth = max(report.depth, self._drain_one(name, 1))

        max_events = max_rounds * max(1, len(self.nodes))
        while True:
            delivered = network.deliver_next()
            if delivered is None:
                break
            report.events += 1
            if report.events > max_events:
                if not self.strict:
                    break
                raise ClusterError(
                    f"async runtime did not quiesce within "
                    f"{max_events} delivery events")
            src, dst, blob = delivered
            items = self._decode(src, dst, blob)
            if not items:
                continue
            report.delivered_facts += len(items)
            stamp = items[0][0]
            payload = [item[1] for item in items]
            node = self.nodes.get(dst)
            if node is None:
                if self.strict:
                    raise ClusterError(f"delivery to unknown node {dst!r}")
                self._reject(dst, "unknown node")
                continue
            # The heart of overlap: integrate *now*, re-entering the
            # node's semi-naive propagation, and ship its consequent
            # deltas immediately — no barrier, no waiting on peers.
            new_facts = node.integrate(payload)
            report.new_facts += new_facts
            if new_facts:
                productive_clock = network.clock
            next_stamp[dst] = max(next_stamp[dst], stamp + 1)
            # An integration may create work at nodes *other than* the
            # delivery target: a workspace import lands at the
            # destination principal's host, wherever the message was
            # routed (relay-style predNode placements).  Nodes whose
            # integration is strictly local (Datalog shards fill only
            # their own outbox) advertise it and skip the sweep.
            if getattr(node, "integration_is_local", False):
                targets = (dst,)
            else:
                targets = sorted(self.nodes)
            for name in targets:
                candidate = max(next_stamp[name], stamp + 1)
                flushed = self._drain_one(name, candidate)
                if flushed:
                    next_stamp[name] = candidate
                    productive_clock = network.clock
                    report.depth = max(report.depth, flushed)

        if self.strict and ledger.outstanding():
            raise ClusterError(
                f"async runtime stopped with {ledger.outstanding()} "
                f"ticket(s) outstanding")
        # One closing record so ledger.quiescent() holds after the run.
        ledger.close_quiet(network.clock)
        report.rounds = report.depth
        report.productive_rounds = report.events
        report.convergence_time = productive_clock

    def _drain_one(self, name: str, stamp: int) -> int:
        """Flush one node's outbox under ``stamp``; returns the stamp if
        anything was sent, else 0."""
        node = self.nodes[name]
        drained = node.drain_outbox(
            lambda dst, pred, fact, to="", _src=name: self.batcher.add(
                _src, dst, pred, fact, to=to, round_stamp=stamp))
        if not drained:
            return 0
        self.batcher.flush(stamp)
        return stamp

    # ------------------------------------------------------------------
    # Shared receive path
    # ------------------------------------------------------------------

    def _decode(self, src: str, dst: str, blob: bytes):
        """Decode one wire blob; retire its ticket; return stamped items.

        Returns ``[(stamp, (to, pred, fact)), ...]`` — empty on a
        tolerated decode failure.
        """
        try:
            round_stamp, items = decode_batch_message(blob, self.registry)
        except NetworkError as exc:
            if self.strict:
                raise ClusterError(f"undecodable delta batch: {exc}") from exc
            self._reject("<decode>", str(exc))
            # an undecodable blob may still be a ticketed batch whose
            # payload (round stamp included) was corrupted in transit —
            # the arrival itself proves a ticket of this sender landed,
            # so retire the sender's oldest outstanding slot rather than
            # wedging quiescence on an unreadable stamp.
            self.ledger.retire_any(sender=src)
            return []
        if self.strict:
            self.ledger.retire(round_stamp, sender=src)
        else:
            self.ledger.retire_guarded(round_stamp, sender=src)
        return [(round_stamp, item) for item in items]

    def _reject(self, source: str, reason: str) -> None:
        if self.on_reject is not None:
            self.on_reject(source, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecutionRuntime(mode={self.mode!r}, "
                f"nodes={sorted(self.nodes)})")
