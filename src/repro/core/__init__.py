"""LBTrust core: principals, says, schemes, delegation, the system runtime."""

from .principal import Principal
from .system import LBTrustSystem, RunReport

__all__ = ["LBTrustSystem", "Principal", "RunReport"]
