"""Authorization meta-constraints (paper sections 3.3 and 4.1).

Two flavours, both straight from the paper:

* **says-based** — restrict what *communicated* rules may do::

      says(U,me,[| A <- P(T2*), A*. |]) -> mayRead(U,P).
      says(U,me,[| P(T2*) <- A*. |])    -> mayWrite(U,P).

  A received rule that reads predicate P activates only if its sender has
  been granted read access on P (and symmetrically for deriving into P).
  We add a ``U = me`` escape: a principal trusts itself.

* **owner-based** (the section 3.3 worked example) — restrict what *local*
  rules may do, given an ``owner(R,Principal)`` relation::

      owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,"read").

Violations abort the enclosing transaction, so an unauthorized import is
rejected wholesale and audited — the operational reading of "the
evaluation of the Datalog program fails" for a long-running system.
"""

from __future__ import annotations

from ..workspace.workspace import Workspace

MAY_READ_CONSTRAINT = """
authzread: says(U,me,[| A <- P(T2*), A*. |]) -> U = me ; mayRead(U,P).
"""

MAY_WRITE_CONSTRAINT = """
authzwrite: says(U,me,[| P(T2*) <- A*. |]) -> U = me ; mayWrite(U,P).
"""

#: The worked example from section 3.3, verbatim modulo the string mode.
OWNER_ACCESS_CONSTRAINT = """
owneraccess: owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,"read").
"""


def install_says_authorization(workspace: Workspace,
                               reads: bool = True,
                               writes: bool = True) -> None:
    """Gate communicated rules on mayRead/mayWrite grants."""
    if reads:
        workspace.add_constraint(MAY_READ_CONSTRAINT)
    if writes:
        workspace.add_constraint(MAY_WRITE_CONSTRAINT)


def install_owner_access(workspace: Workspace) -> None:
    """Install the section 3.3 owner/access meta-constraint."""
    workspace.add_constraint(OWNER_ACCESS_CONSTRAINT)


def record_owner(workspace: Workspace, ref, principal: str) -> None:
    """Assert that ``principal`` added rule ``ref`` (feeds owner/access)."""
    workspace.assert_fact("owner", (principal, ref))
