"""Delegation constructs (paper section 4.2): speaks-for, restricted
delegation, depth and width limits, and threshold structures.

Everything here is source text for the declarative machinery — the Python
functions only load it (optionally parameterized) into a workspace.

* **speaks-for** (sf0): all authority to one principal;
* **delegates/del1**: per-predicate speaks-for, *generated* by a meta-rule
  whenever a ``delegates`` fact appears (the paper's del1, with the
  predicate as a proper meta-variable — the printed listing's lowercase
  ``p`` is a typo, see DESIGN.md);
* **depth** (dd0-dd4): delegation chains bounded by an inferred,
  says-propagated depth limit;
* **width**: only principals in an explicitly allowed set may appear in a
  chain — the paper leaves this as "similar meta-rules", so the
  construction here is ours: the allowed set travels with the delegation;
* **thresholds** (wd0-wd2): k-of-n agreement via ``count``, and the
  weighted variant via ``total``.
"""

from __future__ import annotations

from typing import Optional

from ..workspace.workspace import Workspace

#: sf0 — parametrized speaks-for (the paper hardcodes ``bob``).
SPEAKS_FOR_TEMPLATE = 'sf0: active(R) <- says("{who}",me,R).'

#: del0/del1 — restricted delegation with automatic rule generation.
DELEGATION_RULES = """
del0: delegates(U1,U2,P) -> prin(U1), prin(U2), predicate(P).
del1: active([| active(R) <- says(U2,me,R), R = [| P(T*) <- A*. |]. |]) <-
      delegates(me,U2,P).
"""

#: dd0-dd4 — delegation depth restriction.
#:
#: ``delDepth(me,U,P,N)`` grants U a budget of N *further* delegations
#: below it (0 = U may not re-delegate).  The paper's printed dd3 sends
#: ``N-1`` guarded by ``N>0``, which (a) never informs a depth-0 delegatee
#: and (b) cannot chain, because received facts carry the *sender* as
#: first argument while dd3's body requires ``inferredDelDepth(me,…)``.
#: We realize the semantics the paper's prose describes ("if U2 delegates
#: to some other principal U3, then a new limit of N-1 is inferred between
#: U2 and U3"): dd2b performs that inference locally from any received
#: budget, and dd3 ships every inferred budget — including 0, which is
#: what arms the dd4 constraint at the delegatee.
DEPTH_RULES = """
dd0: delDepth(U1,U2,P,N) -> prin(U1), prin(U2), predicate(P), int(N).
dd1: inferredDelDepth(U1,U2,P,N) -> prin(U1), prin(U2), predicate(P), int(N).
dd2: inferredDelDepth(me,U,P,N) <- delDepth(me,U,P,N).
dd2b: inferredDelDepth(me,U,P,N-1) <- inferredDelDepth(_,me,P,N),
      delegates(me,U,P), N > 0.
dd3: says(me,U,[| inferredDelDepth(me,U,P,N). |]) <-
     inferredDelDepth(me,U,P,N), delegates(me,U,P).
dd4: inferredDelDepth(_,me,P,0) -> !delegates(me,_,P).
"""

#: Width restriction (our construction, see module docstring):
#: ``delWidth(me,W,P)`` lists the principals W allowed in chains for P
#: rooted at me; ``delWidthOn(me,P)`` switches enforcement on.  Both the
#: restriction flag and the allowed set propagate along the chain via says.
WIDTH_RULES = """
dw0: delWidth(U1,U2,P) -> prin(U1), prin(U2), predicate(P).
dwc: delegates(me,U,P) -> !delWidthOn(me,P) ; delWidth(me,U,P).
dws: says(me,U,[| delWidth(U,W,P). |]) <-
     delegates(me,U,P), delWidthOn(me,P), delWidth(me,W,P).
dwf: says(me,U,[| delWidthOn(U,P). |]) <-
     delegates(me,U,P), delWidthOn(me,P).
"""

#: wd0-wd2 — unweighted threshold (paper listing, k and arity
#: parametrized; the paper's creditOK example has one argument).
#:
#: Two channels: ``says`` (the paper's exact wd2) and ``heard`` (the
#: runtime receipt log).  In a full system where scheme rules also
#: *derive* says facts, aggregating over ``says`` is unstratifiable at
#: the predicate level — counting ``heard`` (pure EDB) expresses the same
#: thing without the false cycle.
THRESHOLD_BODY = {
    "says": 'says(U,me,[| {pred}({args}). |])',
    "heard": 'heard(U,R), R = [| {pred}({args}). |]',
}

THRESHOLD_TEMPLATE = """
wd1: {result}({args}) <- {count}({args},N), N >= {k}.
wd2: {count}({args},N) <- agg<<N = count(U)>> pringroup(U,"{group}"),
     {channel_body}.
"""

#: Weighted threshold via total (paper: "modified to use the total
#: aggregation"); ``weight(U,W)`` assigns reliability factors.
WEIGHTED_THRESHOLD_TEMPLATE = """
wt1: {result}({args}) <- {total}({args},W), W >= {k}.
wt2: {total}({args},W) <- agg<<W = total(Wt)>> pringroup(U,"{group}"),
     weight(U,Wt), {channel_body}.
"""


def install_speaks_for(workspace: Workspace, who: str) -> None:
    """``who`` speaks for this workspace's principal (activates all rules
    said by them)."""
    workspace.load(SPEAKS_FOR_TEMPLATE.format(who=who))


def install_delegation(workspace: Workspace) -> None:
    """Install del0/del1: ``delegates`` facts auto-generate speaks-for
    rules restricted to the delegated predicate."""
    workspace.load(DELEGATION_RULES)


def install_depth_restriction(workspace: Workspace) -> None:
    """Install dd0-dd4 (requires the says machinery for propagation)."""
    workspace.load(DEPTH_RULES)


def install_width_restriction(workspace: Workspace) -> None:
    workspace.load(WIDTH_RULES)


def _arg_list(arity: int) -> str:
    return ",".join(f"C{i + 1}" for i in range(arity))


def install_threshold(workspace: Workspace, pred: str, group: str, k: int,
                      result: Optional[str] = None, arity: int = 1,
                      channel: str = "says") -> str:
    """Install a k-of-n threshold: ``result(args)`` holds once ``k``
    members of ``group`` have said ``pred(args)``.  Returns the result
    predicate.  ``channel`` is ``"says"`` (the paper's wd2) or
    ``"heard"`` (see :data:`THRESHOLD_BODY`)."""
    result = result or f"{pred}OK"
    args = _arg_list(arity)
    body = THRESHOLD_BODY[channel].format(pred=pred, args=args)
    workspace.load(THRESHOLD_TEMPLATE.format(
        pred=pred, group=group, k=k, result=result,
        count=f"{pred}Count", args=args, channel_body=body))
    return result


def install_weighted_threshold(workspace: Workspace, pred: str, group: str,
                               k: float, result: Optional[str] = None,
                               arity: int = 1, channel: str = "says") -> str:
    """Weighted variant: member weights must total at least ``k``."""
    result = result or f"{pred}OK"
    args = _arg_list(arity)
    body = THRESHOLD_BODY[channel].format(pred=pred, args=args)
    workspace.load(WEIGHTED_THRESHOLD_TEMPLATE.format(
        pred=pred, group=group, k=k, result=result,
        total=f"{pred}Weight", args=args, channel_body=body))
    return result
