"""A principal: one trust-management context plus its keys and location.

Paper section 2.2: *"A principal in Binder refers to a component in a
distributed environment.  Each principal has its own local context where
its rules reside."*  Here a principal owns:

* a :class:`repro.workspace.workspace.Workspace` (the LogicBlox context),
  preloaded with the says machinery and the system's authentication
  scheme;
* a :class:`repro.crypto.keystore.KeyStore` holding its private material;
* a home *node* in the simulated network (several principals may share
  one node — location transparency, paper section 3.5).

The high-level verbs — :meth:`says`, :meth:`delegate`, :meth:`grant_read`
— are thin sugar over asserting the corresponding facts; everything
observable happens through the declarative machinery.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..datalog.errors import WorkspaceError
from ..datalog.parser import parse_statements
from ..datalog.terms import Rule, RuleRef
from ..meta.quote import compile_rule, resolve_me_rule
from ..workspace.workspace import Workspace


class Principal:
    """One named participant with its own workspace and keys."""

    def __init__(self, system, name: str, node: str) -> None:
        from ..crypto.keystore import KeyStore  # local import: layering

        self.system = system
        self.name = name
        self.node = node
        self.workspace = Workspace(
            name,
            registry=system.registry,
            builtins=system.make_builtins(),
            enable_provenance=system.enable_provenance,
        )
        self.keystore = KeyStore()
        # Crypto builtins reach the keystore through the workspace, which
        # is the evaluation-context payload.
        self.workspace.keystore = self.keystore
        #: refs of scheme machinery rules, for teardown on reconfiguration
        self.scheme_rule_refs: list[RuleRef] = []
        self.scheme_constraint_labels: list[str] = []
        self.auth_scheme: Optional[str] = None

    # ------------------------------------------------------------------
    # Policy loading (delegates to the workspace)
    # ------------------------------------------------------------------

    def load(self, source: str) -> None:
        """Load a program (facts, rules, constraints) into this context."""
        self.workspace.load(source)

    def add_rule(self, rule: Union[str, Rule]) -> RuleRef:
        return self.workspace.add_rule(rule)

    def add_constraint(self, constraint: str) -> None:
        self.workspace.add_constraint(constraint)

    def assert_fact(self, pred: str, fact: tuple) -> None:
        self.workspace.assert_fact(pred, fact)

    def assert_facts(self, pred: str, facts: Iterable[tuple]) -> None:
        self.workspace.assert_facts(pred, facts)

    def retract_fact(self, pred: str, fact: tuple) -> None:
        self.workspace.retract_fact(pred, fact)

    def tuples(self, pred: str) -> set:
        return self.workspace.tuples(pred)

    def query(self, source: str) -> list[dict]:
        return self.workspace.query(source)

    def holds(self, source: str) -> bool:
        return self.workspace.holds(source)

    # ------------------------------------------------------------------
    # Trust verbs
    # ------------------------------------------------------------------

    def says(self, listener: Union["Principal", str],
             statement: Union[str, Rule, RuleRef]) -> RuleRef:
        """Say a rule (or fact) to another principal.

        ``me`` inside the statement resolves to *this* principal (the
        speaker).  The statement is interned and a ``says(me,listener,R)``
        fact asserted; the configured scheme's exp1 rule signs and exports
        it, and the System's next :meth:`run` delivers it.
        """
        listener_name = listener.name if isinstance(listener, Principal) else listener
        ref = self.intern(statement)
        self.workspace.assert_fact("says", (self.name, listener_name, ref))
        return ref

    def intern(self, statement: Union[str, Rule, RuleRef]) -> RuleRef:
        """Intern a statement in the shared registry (resolving ``me``)."""
        if isinstance(statement, RuleRef):
            return statement
        if isinstance(statement, str):
            parsed = parse_statements(statement)
            if len(parsed) != 1 or not isinstance(parsed[0], Rule):
                raise WorkspaceError(
                    "says expects exactly one rule or fact statement"
                )
            statement = parsed[0]
        resolved = resolve_me_rule(statement, self.name)
        return self.system.registry.intern(resolved)

    def delegate(self, to: Union["Principal", str], pred: str,
                 depth: Optional[int] = None) -> None:
        """Delegate deriving ``pred`` to another principal (section 4.2).

        Requires the delegation machinery
        (:func:`repro.core.delegation.install_delegation`; enabled via
        ``LBTrustSystem(delegation=True)``).  ``depth`` adds a
        delegation-depth restriction (dd0-dd4): the delegatee may extend
        the chain by at most ``depth`` further hops — ``depth=0`` means it
        may not re-delegate at all.  The predicate must be declared in
        this context (del0's type constraint).
        """
        to_name = to.name if isinstance(to, Principal) else to
        self.workspace.assert_fact("delegates", (self.name, to_name, pred))
        if depth is not None:
            self.workspace.assert_fact("delDepth", (self.name, to_name, pred, depth))

    def grant_read(self, who: Union["Principal", str], pred: str) -> None:
        who_name = who.name if isinstance(who, Principal) else who
        self.workspace.assert_fact("mayRead", (who_name, pred))

    def grant_write(self, who: Union["Principal", str], pred: str) -> None:
        who_name = who.name if isinstance(who, Principal) else who
        self.workspace.assert_fact("mayWrite", (who_name, pred))

    # ------------------------------------------------------------------

    @property
    def audit(self) -> list:
        return self.workspace.audit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Principal({self.name!r} @ {self.node!r}, auth={self.auth_scheme})"
