"""Derivation provenance (paper section 7, built here).

*"We are currently adding provenance support to LBTrust.  In addition to
reasoning about delegation and chains of trust, provenance is useful for
analyzing derivations of security policies, runtime verification, and
dynamic type checking."*

With ``enable_provenance=True`` (workspace or system flag) every
derivation is recorded: ``(rule label, supporting facts)`` per derived
fact.  This module turns that store into:

* :func:`explain` — a derivation tree for any fact, down to EDB leaves;
* :func:`format_explanation` — a human-readable proof rendering;
* :func:`trust_chain` — the says-hops behind a fact: which principal said
  which rule, in order — the "chains of trust" reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..datalog.terms import RuleRef
from ..workspace.workspace import Workspace


@dataclass
class Explanation:
    """One node of a derivation tree."""

    pred: str
    fact: tuple
    rule: str                      # rule label, or "$edb"
    children: list = field(default_factory=list)

    @property
    def is_edb(self) -> bool:
        return self.rule == "$edb"


def explain(workspace: Workspace, pred: str, fact: tuple,
            max_depth: int = 32) -> Optional[Explanation]:
    """A derivation tree for ``fact``, or None if it has no provenance.

    One derivation is chosen per node (the store may hold several); cycles
    through recursive rules are cut by ``max_depth`` and by never
    revisiting a fact on the current path.
    """
    store = workspace.provenance
    if store is None:
        raise ValueError(
            "provenance is not enabled on this workspace; construct it "
            "with enable_provenance=True"
        )

    def build(p: str, f: tuple, depth: int, path: frozenset) -> Optional[Explanation]:
        derivations = store.of(p, f)
        if not derivations:
            return None
        if depth <= 0 or (p, f) in path:
            rule_label, _ = next(iter(derivations))
            return Explanation(p, f, rule_label)
        # Prefer an EDB justification (shortest proof) when available.
        chosen = None
        for rule_label, supports in sorted(derivations, key=lambda d: (d[0] != "$edb", d[0])):
            children = []
            ok = True
            for child_pred, child_fact in supports:
                child = build(child_pred, child_fact, depth - 1,
                              path | {(p, f)})
                if child is None:
                    ok = False
                    break
                children.append(child)
            if ok:
                chosen = Explanation(p, f, rule_label, children)
                break
        return chosen

    return build(pred, fact, max_depth, frozenset())


def format_explanation(node: Explanation, indent: int = 0) -> str:
    """Render a derivation tree as an indented proof."""
    pad = "  " * indent
    label = "asserted" if node.is_edb else f"by rule {node.rule}"
    lines = [f"{pad}{node.pred}{node.fact!r}  [{label}]"]
    for child in node.children:
        lines.append(format_explanation(child, indent + 1))
    return "\n".join(lines)


def trust_chain(workspace: Workspace, pred: str, fact: tuple) -> list:
    """The says-hops supporting a fact: ``[(speaker, listener, rule), …]``.

    Walks the derivation tree collecting every ``says`` support.  A fact
    derived by an *activated* rule (one that arrived via communication) is
    additionally supported by its ``active(R)`` fact, whose own derivation
    (says1) contains the says hop — so the chain crosses activation
    boundaries, which is exactly the "chains of trust" reading the paper
    wants provenance to expose.
    """
    hops: list = []
    seen_hops: set = set()
    visited_nodes: set = set()

    def add_hop(speaker, listener, ref) -> None:
        key = (speaker, listener, ref)
        if key not in seen_hops and isinstance(ref, RuleRef):
            seen_hops.add(key)
            hops.append((speaker, listener,
                         workspace.registry.canonical_text(ref)))

    def ref_of_label(label: str) -> Optional[RuleRef]:
        if not label.startswith("r"):
            return None
        try:
            candidate = RuleRef(int(label[1:]))
        except ValueError:
            return None
        return candidate if candidate in workspace._activated else None

    def walk(node: Optional[Explanation]) -> None:
        if node is None or (node.pred, node.fact, node.rule) in visited_nodes:
            return
        visited_nodes.add((node.pred, node.fact, node.rule))
        if node.pred == "says" and len(node.fact) == 3:
            add_hop(*node.fact)
        ref = ref_of_label(node.rule)
        if ref is not None:
            walk(explain(workspace, "active", (ref,)))
        for child in node.children:
            walk(child)

    walk(explain(workspace, pred, fact))
    return hops
