"""The ``says`` machinery (paper section 4.1).

``says(U1,U2,R)`` associates a rule R with the principal U1 who said it
and the principal U2 it was said to.  Two rules are common to every
authentication scheme and every principal:

* **says1** — any rule said to the local principal is activated
  (``active(R) <- says(_,me,R)``);
* **exp2** — received exports turn into says facts
  (``says(U,me,R) <- export[me](U,R,S)``).

What varies per scheme is how exports are *produced* (exp1: signature
generation) and what the import must *satisfy* (exp3: a verification
constraint).  Those live in :mod:`repro.core.schemes` — swapping them, and
nothing else, is the paper's reconfigurability claim, demonstrated by
``tests/core/test_reconfigure.py`` and benchmark E1.
"""

from __future__ import annotations

from ..workspace.workspace import Workspace

#: Rule says1 (paper listing, section 4.1).
SAYS1 = "says1: active(R) <- says(_,me,R)."

#: Rule exp2 (paper listing, section 4.1.1).
EXP2 = "exp2: says(U,me,R) <- export[me](U,R,S)."

#: ``heard(U,R)`` — receipt metadata, asserted by the runtime when an
#: export is imported (a mail log).  It carries the same (speaker, rule)
#: information as ``says`` but is pure EDB, which matters for aggregation:
#: a threshold like wd2 that counts incoming messages *and* feeds rules
#: that derive outgoing ``says`` would make ``says`` unstratifiable at the
#: predicate level.  Counting ``heard`` instead breaks the false cycle
#: while preserving the paper's semantics (see
#: :func:`repro.core.delegation.install_threshold` and DESIGN.md §6).
HEARD_DECLARATION = "heard(U,R) -> prin(U), rule(R)."

#: Type declarations says0 / exp0 (paper listings).  ``prin`` and ``rule``
#: are satisfied dynamically; the declarations primarily record shapes in
#: the catalog and document intent.
DECLARATIONS = """
says0: says(U1,U2,R) -> prin(U1), prin(U2), rule(R).
exp0: export[U1](U2,R,S) -> prin(U1), prin(U2), rule(R), string(S).
"""


def install_says_machinery(workspace: Workspace,
                           with_declarations: bool = False) -> None:
    """Install the scheme-independent half of the says machinery.

    ``with_declarations`` additionally enforces says0/exp0 as dynamic
    constraints; that requires the ``prin`` relation to be populated
    (the System does this for every known principal).
    """
    workspace.load(SAYS1)
    workspace.load(EXP2)
    if with_declarations:
        workspace.load(DECLARATIONS)


def say(workspace: Workspace, speaker: str, listener: str, ref) -> None:
    """Assert a says fact (used by the Principal API)."""
    workspace.assert_fact("says", (speaker, listener, ref))
