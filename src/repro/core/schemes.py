"""Authentication schemes: the reconfigurable exp1/exp3 pairs.

The paper's central demonstration (section 4.1.2): replacing the RSA
scheme with HMAC changes **exactly two rules** — signature generation
(exp1 → exp1') and the import verification constraint (exp3 → exp3') —
"while the trust policies that utilize the says predicate remain
unchanged".  Each :class:`SchemeDef` below carries those two pieces of
source text plus a provisioning function that installs key material.

Schemes:

``rsa``
    1024-bit (configurable) RSA signatures — paper exp1/exp3.
``hmac``
    HMAC-SHA1 over pairwise shared secrets — paper exp1'/exp3'.
``plaintext``
    Cleartext principal headers, no signature — the paper's "more benign
    world" configuration.
``mixed``
    Per-peer policy (section 2.2: signatures "only … when communicating
    with specific principals"): an ``authpolicy(Peer,Scheme)`` relation
    selects rsa/hmac/plaintext per destination; the import constraint
    checks whatever the local policy demands of each sender.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..crypto import rsa
from ..crypto.keystore import (
    KeyStore,
    generate_shared_secret,
    rsa_private_id,
    rsa_public_id,
    shared_secret_id,
)

# --------------------------------------------------------------------------
# Scheme rule texts (paper listings)
# --------------------------------------------------------------------------

RSA_EXP1 = """
exp1: export[U2](me,R,S) <- says(me,U2,R), rsasign(R,S,K), rsaprivkey(me,K).
"""
RSA_EXP3 = """
exp3: says(U,me,R) -> U = me ;
      (export[me](U,R,S), rsapubkey(U,K), rsaverify(R,S,K)).
"""

HMAC_EXP1 = """
exp1': export[U2](me,R,S) <- says(me,U2,R), hmacsign(R,K,S),
       sharedsecret(me,U2,K).
"""
HMAC_EXP3 = """
exp3': says(U,me,R) -> U = me ;
       (export[me](U,R,S), sharedsecret(me,U,K), hmacverify(R,S,K)).
"""

PLAINTEXT_EXP1 = """
exp1p: export[U2](me,R,"cleartext") <- says(me,U2,R).
"""

MIXED_EXP1 = """
exp1mr: export[U2](me,R,S) <- says(me,U2,R), authpolicy(U2,"rsa"),
        rsasign(R,S,K), rsaprivkey(me,K).
exp1mh: export[U2](me,R,S) <- says(me,U2,R), authpolicy(U2,"hmac"),
        hmacsign(R,K,S), sharedsecret(me,U2,K).
exp1mp: export[U2](me,R,"cleartext") <- says(me,U2,R),
        authpolicy(U2,"plaintext").
"""
MIXED_EXP3 = """
exp3m: says(U,me,R) -> U = me ;
       (authpolicy(U,"plaintext"), export[me](U,R,S)) ;
       (authpolicy(U,"rsa"), export[me](U,R,S), rsapubkey(U,K), rsaverify(R,S,K)) ;
       (authpolicy(U,"hmac"), export[me](U,R,S), sharedsecret(me,U,K), hmacverify(R,S,K)).
"""

#: Note: the paper's exp3 lacks the ``U = me`` escape because its listing
#: only considers remote says facts; locally a principal trivially trusts
#: itself (self-says never crosses the network, so there is no export
#: tuple to verify unless exp1 derived one).


@dataclass
class SchemeDef:
    """One pluggable authentication scheme."""

    name: str
    exp1_text: str
    exp3_text: Optional[str]
    provision: Callable[["object", "object", random.Random], None]
    #: label prefixes of the rules/constraints this scheme installs, used
    #: to tear it down on reconfiguration
    rule_labels: tuple


# --------------------------------------------------------------------------
# Provisioning
# --------------------------------------------------------------------------

def _provision_rsa(system, principal, rng: random.Random) -> None:
    """Own keypair; everyone's public key + pubkey facts (certificates)."""
    name = principal.name
    if name not in system.rsa_keys:
        system.rsa_keys[name] = rsa.generate_keypair(system.rsa_bits, rng)
    # Distribute: every principal learns every public key.
    for other in system.principals.values():
        other_key = system.rsa_keys.get(other.name)
        if other_key is None:
            system.rsa_keys[other.name] = rsa.generate_keypair(system.rsa_bits, rng)
            other_key = system.rsa_keys[other.name]
        principal.keystore.install_rsa_public(
            rsa_public_id(other.name), other_key.public())
        principal.workspace.assert_fact(
            "rsapubkey", (other.name, rsa_public_id(other.name)))
        other.keystore.install_rsa_public(
            rsa_public_id(name), system.rsa_keys[name].public())
        other.workspace.assert_fact(
            "rsapubkey", (name, rsa_public_id(name)))
    principal.keystore.install_rsa_private(
        rsa_private_id(name), system.rsa_keys[name])
    principal.workspace.assert_fact(
        "rsaprivkey", (name, rsa_private_id(name)))


def _provision_hmac(system, principal, rng: random.Random) -> None:
    """Pairwise shared secrets with every other principal (and itself)."""
    name = principal.name
    for other in system.principals.values():
        key_id = shared_secret_id(name, other.name)
        secret = system.shared_secrets.get(key_id)
        if secret is None:
            secret = generate_shared_secret(name, other.name, rng)
            system.shared_secrets[key_id] = secret
        for side in (principal, other):
            if not side.keystore.has_secret(key_id):
                side.keystore.install_secret(key_id, secret)
        principal.workspace.assert_fact("sharedsecret", (name, other.name, key_id))
        other.workspace.assert_fact("sharedsecret", (other.name, name, key_id))


def _provision_plaintext(system, principal, rng: random.Random) -> None:
    """Nothing to provision — that is the point."""


def _provision_mixed(system, principal, rng: random.Random) -> None:
    _provision_rsa(system, principal, rng)
    _provision_hmac(system, principal, rng)


SCHEMES: dict[str, SchemeDef] = {
    "rsa": SchemeDef(
        name="rsa",
        exp1_text=RSA_EXP1,
        exp3_text=RSA_EXP3,
        provision=_provision_rsa,
        rule_labels=("exp1", "exp3"),
    ),
    "hmac": SchemeDef(
        name="hmac",
        exp1_text=HMAC_EXP1,
        exp3_text=HMAC_EXP3,
        provision=_provision_hmac,
        rule_labels=("exp1'", "exp3'"),
    ),
    "plaintext": SchemeDef(
        name="plaintext",
        exp1_text=PLAINTEXT_EXP1,
        exp3_text=None,
        provision=_provision_plaintext,
        rule_labels=("exp1p",),
    ),
    "mixed": SchemeDef(
        name="mixed",
        exp1_text=MIXED_EXP1,
        exp3_text=MIXED_EXP3,
        provision=_provision_mixed,
        rule_labels=("exp1mr", "exp1mh", "exp1mp", "exp3m"),
    ),
}


def scheme(name: str) -> SchemeDef:
    definition = SCHEMES.get(name)
    if definition is None:
        raise KeyError(
            f"unknown auth scheme {name!r}; available: {sorted(SCHEMES)}"
        )
    return definition
