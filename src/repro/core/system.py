"""The multi-principal LBTrust runtime.

Ties every substrate together: a shared rule registry, one workspace per
principal, the simulated network, key provisioning, and the global
fixpoint loop:

1. each principal's workspace runs its local fixpoint (this happens
   eagerly inside its transactions);
2. the system collects facts of partitioned predicates whose ``predNode``
   placement maps them to another principal's partition (paper section
   3.5 — the ld1/ld2 placement rules are installed verbatim);
3. messages are serialized, sent through the network (FIFO + latency),
   and imported at the destination in a transaction — where the scheme's
   verification constraint (exp3) and any authorization meta-constraints
   either accept them (activating said rules, via says1) or reject the
   import, which is rolled back and audited;
4. repeat until no messages flow.

Usage::

    system = LBTrustSystem(auth="rsa")
    alice, bob = system.create_principal("alice"), system.create_principal("bob")
    bob.load('access(P,O,"read") <- good(P), object(O).')
    alice.says(bob, 'good("carol").')
    system.run()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from ..cluster.partition import PlacementMap
from ..cluster.quiescence import TicketLedger
from ..crypto.datalog_builtins import register_crypto_builtins
from ..datalog.builtins import BuiltinRegistry, standard_registry
from ..datalog.errors import ConstraintViolation, NetworkError, WorkspaceError
from ..datalog.parser import parse_statements
from ..datalog.terms import Constraint, Rule
from ..meta.registry import RuleRegistry
from ..net.batch import DEFAULT_MAX_BATCH_BYTES, MessageBatcher
from ..net.network import SimulatedNetwork
from ..net.transport import decode_batch_message
from .authorization import install_says_authorization
from .delegation import install_delegation, install_depth_restriction
from .principal import Principal
from .says import install_says_machinery
from .schemes import SchemeDef, scheme

#: The paper's placement rules (section 5.2 listing ld1/ld2).
PLACEMENT_RULES = """
ld1: loc(P,N) -> prin(P), node(N).
ld2: predNode(export[P],N) <- loc(P,N).
"""


@dataclass
class RunReport:
    """Outcome of one :meth:`LBTrustSystem.run` call.

    ``delivered``/``rejected`` count *facts*; ``batches`` counts wire
    messages — since PR 3 each node pair exchanges one size-capped batch
    per round, so the network's message statistics measure batches.
    """

    rounds: int = 0
    delivered: int = 0
    rejected: int = 0
    batches: int = 0
    bytes: int = 0
    virtual_time: float = 0.0
    rejected_detail: list = field(default_factory=list)

    def __repr__(self) -> str:
        return (f"RunReport(rounds={self.rounds}, delivered={self.delivered}, "
                f"rejected={self.rejected}, batches={self.batches}, "
                f"bytes={self.bytes}, "
                f"virtual_time={self.virtual_time:.2f})")


class LBTrustSystem:
    """A set of principals, their network, and the global run loop."""

    def __init__(self, auth: str = "rsa", rsa_bits: int = 1024,
                 seed: Optional[int] = 7,
                 network: Optional[SimulatedNetwork] = None,
                 enable_provenance: bool = False,
                 authorization: bool = False,
                 delegation: bool = False,
                 max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES) -> None:
        self.registry = RuleRegistry()
        self.network = network if network is not None else SimulatedNetwork()
        self.max_batch_bytes = max_batch_bytes
        self.principals: dict[str, Principal] = {}
        self.rsa_bits = rsa_bits
        self.rsa_keys: dict = {}
        self.shared_secrets: dict[str, bytes] = {}
        self.rng = random.Random(seed)
        self.enable_provenance = enable_provenance
        self.authorization = authorization
        self.delegation = delegation
        self.auth_name = auth
        self._scheme: SchemeDef = scheme(auth)
        self._sent: set = set()

    # ------------------------------------------------------------------
    # Principals
    # ------------------------------------------------------------------

    def make_builtins(self) -> BuiltinRegistry:
        registry = standard_registry().child()
        register_crypto_builtins(registry)
        return registry

    def create_principal(self, name: str, node: Optional[str] = None) -> Principal:
        """Add a principal; provisions keys and installs all machinery."""
        if name in self.principals:
            raise WorkspaceError(f"principal {name!r} already exists")
        node = node if node is not None else name
        self.network.add_node(node)
        principal = Principal(self, name, node)
        self.principals[name] = principal

        install_says_machinery(principal.workspace)
        principal.workspace.load(PLACEMENT_RULES)
        if self.delegation:
            install_delegation(principal.workspace)
            install_depth_restriction(principal.workspace)
        if self.authorization:
            install_says_authorization(principal.workspace)
        self._install_scheme(principal)

        # Location facts: everyone learns where everyone is (paper: "users
        # can easily enforce various distribution plans by modifying the
        # loc table").
        for other in self.principals.values():
            with other.workspace.transaction():
                other.workspace.assert_fact("node", (node,))
                other.workspace.assert_fact("prin", (name,))
                other.workspace.assert_fact("loc", (name, node))
            if other.name != name:
                with principal.workspace.transaction():
                    principal.workspace.assert_fact("node", (other.node,))
                    principal.workspace.assert_fact("prin", (other.name,))
                    principal.workspace.assert_fact("loc", (other.name, other.node))
        return principal

    def principal(self, name: str) -> Principal:
        principal = self.principals.get(name)
        if principal is None:
            raise WorkspaceError(f"unknown principal {name!r}")
        return principal

    # ------------------------------------------------------------------
    # Authentication scheme management (the "reconfigurable" part)
    # ------------------------------------------------------------------

    def _install_scheme(self, principal: Principal) -> None:
        definition = self._scheme
        for statement in parse_statements(definition.exp1_text):
            if isinstance(statement, Rule):
                ref = principal.workspace.add_rule(statement)
                principal.scheme_rule_refs.append(ref)
        if definition.exp3_text:
            for statement in parse_statements(definition.exp3_text):
                if isinstance(statement, Constraint):
                    principal.workspace.add_constraint(statement)
                    if statement.label:
                        principal.scheme_constraint_labels.append(statement.label)
        definition.provision(self, principal, self.rng)
        principal.auth_scheme = definition.name

    def reconfigure_auth(self, auth: str) -> None:
        """Swap the authentication scheme system-wide.

        Exactly the paper's section 4.1.2 move: the exp1 rules and exp3
        constraints are replaced; every trust policy using ``says`` stays
        untouched.

        Transport state is regime-specific: previously imported exports
        carry old-scheme signatures, which the new verification constraint
        would (correctly) reject.  So reconfiguration flushes the received
        ``export`` history; the *says* facts at each sender are durable
        policy state, and the next :meth:`run` re-signs and re-delivers
        everything under the new scheme — received knowledge reconverges.
        """
        self._scheme = scheme(auth)
        self.auth_name = auth
        for principal in self.principals.values():
            workspace = principal.workspace
            for label in principal.scheme_constraint_labels:
                workspace.remove_constraints(label)
            principal.scheme_constraint_labels = []
            for ref in principal.scheme_rule_refs:
                workspace.deactivate_rule(ref)
            principal.scheme_rule_refs = []
            old_exports = set(workspace.edb.get("export", set()))
            if old_exports:
                workspace.retract_facts("export", old_exports)
        for principal in self.principals.values():
            self._install_scheme(principal)
        # Everything re-exports under the new regime.
        self._sent.clear()

    # ------------------------------------------------------------------
    # The global fixpoint
    # ------------------------------------------------------------------

    def run(self, max_rounds: int = 100) -> RunReport:
        """Exchange batched messages until the whole system quiesces.

        Since PR 3 this loop runs on the cluster machinery: placement is
        a :class:`~repro.cluster.partition.PlacementMap` built from each
        workspace's ``predNode`` table, per-round traffic coalesces into
        one size-capped batch per node pair
        (:class:`~repro.net.batch.MessageBatcher`), and a round-stamped
        :class:`~repro.cluster.quiescence.TicketLedger` confirms that
        quiescence was declared with no batch still in flight.
        """
        report = RunReport()
        bytes_before = self.network.total.bytes
        ledger = TicketLedger()
        for round_number in range(max_rounds):
            batcher = MessageBatcher(self.network, self.registry,
                                     max_bytes=self.max_batch_bytes,
                                     ledger=ledger)
            sent_any = self._collect_and_send(batcher, round_number)
            batcher.flush(round_number)
            # sent_messages includes early size-capped flushes inside
            # add(), which flush()'s return value does not cover.
            report.batches += batcher.sent_messages
            deliveries = self.network.deliver_all()
            if not deliveries and not sent_any:
                break
            report.rounds += 1
            delivered = self._import_deliveries(deliveries, report, ledger)
            ledger.close_round(round_number, delivered, self.network.clock)
        report.bytes = self.network.total.bytes - bytes_before
        report.virtual_time = self.network.clock
        return report

    def _collect_and_send(self, batcher: MessageBatcher,
                          round_number: int) -> bool:
        sent_any = False
        for principal in self.principals.values():
            workspace = principal.workspace
            placement = PlacementMap.from_prednode_facts(
                workspace.tuples("predNode"))
            if not len(placement):
                continue
            for pred in list(workspace.db.relations):
                info = workspace.catalog.get(pred)
                if info is None or info.key_arity == 0:
                    continue
                for fact in workspace.db.tuples(pred):
                    key = fact[:info.key_arity]
                    node = placement.owner(pred, key)
                    if node is None:
                        continue
                    target = key[0]
                    if not isinstance(target, str) or target == principal.name:
                        continue
                    if target not in self.principals:
                        continue
                    marker = (principal.name, pred, fact)
                    if marker in self._sent:
                        continue
                    self._sent.add(marker)
                    batcher.add(principal.node, node, pred, fact,
                                to=target, round_stamp=round_number)
                    sent_any = True
        return sent_any

    def _import_deliveries(self, deliveries: list, report: RunReport,
                           ledger: TicketLedger) -> int:
        """Decode batches, retire their tickets, import per principal.

        Returns the number of facts handed to import transactions.
        """
        grouped: dict[str, list] = {}
        count = 0
        for _src, _dst, blob in deliveries:
            try:
                round_stamp, items = decode_batch_message(blob, self.registry)
            except NetworkError as exc:
                report.rejected += 1
                report.rejected_detail.append(("<decode>", str(exc)))
                # an undecodable blob may still be a ticketed batch whose
                # payload was corrupted in transit — account for it
                self._retire_guarded(ledger, 0)
                continue
            self._retire_guarded(ledger, round_stamp)
            for to, pred, fact in items:
                grouped.setdefault(to, []).append((pred, fact))
                count += 1
        for to, items in grouped.items():
            principal = self.principals.get(to)
            if principal is None:
                report.rejected += len(items)
                report.rejected_detail.append((to, "unknown principal"))
                continue
            self._import_batch(principal, items, report)
        return count

    @staticmethod
    def _retire_guarded(ledger: TicketLedger, round_stamp: int) -> None:
        """Retire one ticket, tolerating unticketed traffic.

        Unlike the cluster runtime — which owns its transport exclusively
        and keeps the strict issue/retire invariant — the system's network
        is open: tests (and adversaries) inject raw messages that no
        batcher ever ticketed.  Retiring at most what was issued keeps
        the ledger consistent without turning foreign traffic into a
        crash.
        """
        if ledger.outstanding() > 0:
            ledger.retire(round_stamp)

    def _import_batch(self, principal: Principal, items: list,
                      report: RunReport) -> None:
        """Import a batch in one transaction; isolate failures per item."""
        try:
            with principal.workspace.transaction():
                for pred, fact in items:
                    self._import_one(principal, pred, fact)
            report.delivered += len(items)
            return
        except ConstraintViolation:
            pass  # fall through to per-item isolation
        for pred, fact in items:
            try:
                with principal.workspace.transaction():
                    self._import_one(principal, pred, fact)
                report.delivered += 1
            except ConstraintViolation as exc:
                report.rejected += 1
                report.rejected_detail.append((principal.name, str(exc)))
                principal.workspace.audit.append(
                    _import_rejected_event(principal.name, pred, fact, exc))

    def _import_one(self, principal: Principal, pred: str, fact: tuple) -> None:
        principal.workspace.assert_fact(pred, fact)
        # Receipt metadata: heard(speaker, rule) — see repro.core.says.
        if pred == "export" and len(fact) == 4:
            _to, source, rule_ref, _sig = fact
            principal.workspace.assert_fact("heard", (source, rule_ref))

    # ------------------------------------------------------------------

    def audit_trail(self) -> list:
        events = []
        for principal in self.principals.values():
            events.extend(principal.workspace.audit)
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LBTrustSystem(auth={self.auth_name!r}, "
                f"principals={sorted(self.principals)})")


def _import_rejected_event(name: str, pred: str, fact: tuple, exc: Exception):
    from ..workspace.workspace import AuditEvent

    return AuditEvent("import_rejected", {
        "workspace": name,
        "pred": pred,
        "fact": tuple(str(v) for v in fact),
        "reason": str(exc),
    })
