"""The multi-principal LBTrust runtime.

Ties every substrate together: a shared rule registry, one workspace per
principal, the simulated network, key provisioning, and the global
fixpoint loop:

1. each principal's workspace runs its local fixpoint (this happens
   eagerly inside its transactions);
2. each physical node's :class:`WorkspaceNode` collects facts of
   partitioned predicates whose ``predNode`` placement maps them to
   another principal's partition (paper section 3.5 — the ld1/ld2
   placement rules are installed verbatim);
3. messages are serialized, sent through the network (FIFO + latency),
   and imported at the destination in a transaction — where the scheme's
   verification constraint (exp3) and any authorization meta-constraints
   either accept them (activating said rules, via says1) or reject the
   import, which is rolled back and audited;
4. repeat until the ticket ledger proves quiescence.

Since PR 4 steps 2–4 are the cluster's
:class:`~repro.cluster.scheduler.ExecutionRuntime` — the same scheduler
that drives Datalog shards — in ``bsp`` (barrier rounds, the default) or
``async`` (overlapped: each arrival imports and re-exports immediately)
mode.

Usage::

    system = LBTrustSystem(auth="rsa")
    alice, bob = system.create_principal("alice"), system.create_principal("bob")
    bob.load('access(P,O,"read") <- good(P), object(O).')
    alice.says(bob, 'good("carol").')
    system.run()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..cluster.partition import PlacementMap
from ..cluster.scheduler import MODE_BSP, ExecutionRuntime
from ..crypto.datalog_builtins import register_crypto_builtins
from ..datalog.builtins import BuiltinRegistry, standard_registry
from ..datalog.errors import ConstraintViolation, WorkspaceError
from ..datalog.parser import parse_statements
from ..datalog.terms import Constraint, Rule
from ..meta.registry import RuleRegistry
from ..net.batch import DEFAULT_MAX_BATCH_BYTES
from ..net.network import SimulatedNetwork
from .authorization import install_says_authorization
from .delegation import install_delegation, install_depth_restriction
from .principal import Principal
from .says import install_says_machinery
from .schemes import SchemeDef, scheme

#: The paper's placement rules (section 5.2 listing ld1/ld2).
PLACEMENT_RULES = """
ld1: loc(P,N) -> prin(P), node(N).
ld2: predNode(export[P],N) <- loc(P,N).
"""


@dataclass
class RunReport:
    """Outcome of one :meth:`LBTrustSystem.run` call.

    ``delivered``/``rejected`` count *facts*; ``batches`` counts wire
    messages — since PR 3 each node pair exchanges one size-capped batch
    per round, so the network's message statistics measure batches.
    """

    rounds: int = 0
    delivered: int = 0
    rejected: int = 0
    batches: int = 0
    bytes: int = 0
    depth: int = 0
    virtual_time: float = 0.0
    rejected_detail: list = field(default_factory=list)

    def __repr__(self) -> str:
        return (f"RunReport(rounds={self.rounds}, delivered={self.delivered}, "
                f"rejected={self.rejected}, batches={self.batches}, "
                f"bytes={self.bytes}, "
                f"virtual_time={self.virtual_time:.2f})")


class WorkspaceNode:
    """Every principal co-located on one physical network node, presented
    to the :class:`~repro.cluster.scheduler.ExecutionRuntime` as a single
    protocol node.

    This is the second node kind of the unified runtime (the first being
    the plain-Datalog :class:`~repro.cluster.node.ClusterNode`): the
    outbox is computed from each hosted workspace's ``predNode``
    placement table (paper section 3.5 — the ``loc`` table, not the
    scheduler, decides where facts go), and integration runs the full
    import pipeline — scheme verification constraints, authorization
    meta-constraints, audited rollback — inside each principal's
    transaction.  ``says``-attribution therefore survives the exchange
    path unchanged: what travels are the same ``export`` facts, whatever
    the scheduling mode.
    """

    def __init__(self, system: "LBTrustSystem", name: str,
                 principals: Iterable[Principal],
                 report: "RunReport") -> None:
        self.system = system
        self.name = name
        self.principals = list(principals)
        self.report = report
        #: principal -> (predNode Relation, version, PlacementMap):
        #: the placement table rarely changes mid-run, so it is rebuilt
        #: only when its backing relation object or version moves.
        self._placements: dict = {}
        #: principal -> {pred: (Relation, version)} — relations whose
        #: facts were already fully offered to the outbox at that exact
        #: state; unchanged relations are skipped on the next drain.
        #: Holding the Relation object keeps its id from being reused,
        #: so object-identity + version is a sound change signature.
        self._scanned: dict = {}

    def bootstrap(self) -> int:
        """Workspaces fixpoint eagerly inside their transactions; nothing
        to do before the first exchange."""
        return 0

    def _placement_of(self, principal: Principal):
        """The principal's placement map, rebuilt only on predNode change."""
        workspace = principal.workspace
        relation = workspace.db.get("predNode")
        version = relation._version if relation is not None else None
        cached = self._placements.get(principal.name)
        if cached is not None and cached[0] is relation \
                and cached[1] == version:
            return cached[2]
        placement = PlacementMap.from_prednode_facts(
            workspace.tuples("predNode"))
        self._placements[principal.name] = (relation, version, placement)
        # new placement may make previously scanned facts exportable
        self._scanned.pop(principal.name, None)
        return placement

    def drain_outbox(self, sink) -> int:
        """Queue every unexported fact owned elsewhere per ``predNode``.

        ``sink(dst, pred, fact, to)`` — ``dst`` is the destination
        *node*, ``to`` the destination *principal* (several principals
        may share one node).  The system-wide ``_sent`` marker set keeps
        re-derived exports from re-shipping every round; unlike a
        shard's dedup set it must survive quiescence, because workspaces
        retain their full state between runs and would otherwise re-send
        (and re-count) every historical export on the next run.

        The async scheduler drains after *every* delivery event, so the
        scan is incremental: a keyed relation whose object identity and
        version are unchanged since the last drain has already offered
        every fact and is skipped.
        """
        drained = 0
        system = self.system
        for principal in self.principals:
            workspace = principal.workspace
            placement = self._placement_of(principal)
            if not len(placement):
                continue
            scanned = self._scanned.setdefault(principal.name, {})
            for pred in list(workspace.db.relations):
                info = workspace.catalog.get(pred)
                if info is None or info.key_arity == 0:
                    continue
                relation = workspace.db.get(pred)
                signature = (relation, relation._version) \
                    if relation is not None else None
                if scanned.get(pred) == signature:
                    continue
                scanned[pred] = signature
                for fact in workspace.db.tuples(pred):
                    key = fact[:info.key_arity]
                    node = placement.owner(pred, key)
                    if node is None:
                        continue
                    target = key[0]
                    if not isinstance(target, str) or target == principal.name:
                        continue
                    if target not in system.principals:
                        continue
                    marker = (principal.name, pred, fact)
                    if marker in system._sent:
                        continue
                    system._sent.add(marker)
                    sink(node, pred, fact, target)
                    drained += 1
        return drained

    def integrate(self, items: list) -> int:
        """Import one delivery's facts at their destination principals.

        Returns the number of facts handed to import transactions (the
        quiescence protocol's activity measure); acceptance/rejection
        accounting lands on the shared :class:`RunReport`.
        """
        grouped: dict[str, list] = {}
        for to, pred, fact in items:
            grouped.setdefault(to, []).append((pred, fact))
        for to, batch in grouped.items():
            principal = self.system.principals.get(to)
            if principal is None:
                self.report.rejected += len(batch)
                self.report.rejected_detail.append((to, "unknown principal"))
                continue
            self.system._import_batch(principal, batch, self.report)
        return len(items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WorkspaceNode({self.name!r}, "
                f"{[p.name for p in self.principals]})")


class LBTrustSystem:
    """A set of principals, their network, and the global run loop."""

    def __init__(self, auth: str = "rsa", rsa_bits: int = 1024,
                 seed: Optional[int] = 7,
                 network: Optional[SimulatedNetwork] = None,
                 enable_provenance: bool = False,
                 authorization: bool = False,
                 delegation: bool = False,
                 max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
                 mode: str = MODE_BSP) -> None:
        self.registry = RuleRegistry()
        self.network = network if network is not None else SimulatedNetwork()
        self.max_batch_bytes = max_batch_bytes
        self.principals: dict[str, Principal] = {}
        self.rsa_bits = rsa_bits
        self.rsa_keys: dict = {}
        self.shared_secrets: dict[str, bytes] = {}
        self.rng = random.Random(seed)
        self.enable_provenance = enable_provenance
        self.authorization = authorization
        self.delegation = delegation
        self.auth_name = auth
        self.mode = mode
        self._scheme: SchemeDef = scheme(auth)
        self._sent: set = set()

    # ------------------------------------------------------------------
    # Principals
    # ------------------------------------------------------------------

    def make_builtins(self) -> BuiltinRegistry:
        registry = standard_registry().child()
        register_crypto_builtins(registry)
        return registry

    def create_principal(self, name: str, node: Optional[str] = None) -> Principal:
        """Add a principal; provisions keys and installs all machinery."""
        if name in self.principals:
            raise WorkspaceError(f"principal {name!r} already exists")
        node = node if node is not None else name
        self.network.add_node(node)
        principal = Principal(self, name, node)
        self.principals[name] = principal

        install_says_machinery(principal.workspace)
        principal.workspace.load(PLACEMENT_RULES)
        if self.delegation:
            install_delegation(principal.workspace)
            install_depth_restriction(principal.workspace)
        if self.authorization:
            install_says_authorization(principal.workspace)
        self._install_scheme(principal)

        # Location facts: everyone learns where everyone is (paper: "users
        # can easily enforce various distribution plans by modifying the
        # loc table").
        for other in self.principals.values():
            with other.workspace.transaction():
                other.workspace.assert_fact("node", (node,))
                other.workspace.assert_fact("prin", (name,))
                other.workspace.assert_fact("loc", (name, node))
            if other.name != name:
                with principal.workspace.transaction():
                    principal.workspace.assert_fact("node", (other.node,))
                    principal.workspace.assert_fact("prin", (other.name,))
                    principal.workspace.assert_fact("loc", (other.name, other.node))
        return principal

    def principal(self, name: str) -> Principal:
        principal = self.principals.get(name)
        if principal is None:
            raise WorkspaceError(f"unknown principal {name!r}")
        return principal

    # ------------------------------------------------------------------
    # Authentication scheme management (the "reconfigurable" part)
    # ------------------------------------------------------------------

    def _install_scheme(self, principal: Principal) -> None:
        definition = self._scheme
        for statement in parse_statements(definition.exp1_text):
            if isinstance(statement, Rule):
                ref = principal.workspace.add_rule(statement)
                principal.scheme_rule_refs.append(ref)
        if definition.exp3_text:
            for statement in parse_statements(definition.exp3_text):
                if isinstance(statement, Constraint):
                    principal.workspace.add_constraint(statement)
                    if statement.label:
                        principal.scheme_constraint_labels.append(statement.label)
        definition.provision(self, principal, self.rng)
        principal.auth_scheme = definition.name

    def reconfigure_auth(self, auth: str) -> None:
        """Swap the authentication scheme system-wide.

        Exactly the paper's section 4.1.2 move: the exp1 rules and exp3
        constraints are replaced; every trust policy using ``says`` stays
        untouched.

        Transport state is regime-specific: previously imported exports
        carry old-scheme signatures, which the new verification constraint
        would (correctly) reject.  So reconfiguration flushes the received
        ``export`` history; the *says* facts at each sender are durable
        policy state, and the next :meth:`run` re-signs and re-delivers
        everything under the new scheme — received knowledge reconverges.
        """
        self._scheme = scheme(auth)
        self.auth_name = auth
        for principal in self.principals.values():
            workspace = principal.workspace
            for label in principal.scheme_constraint_labels:
                workspace.remove_constraints(label)
            principal.scheme_constraint_labels = []
            for ref in principal.scheme_rule_refs:
                workspace.deactivate_rule(ref)
            principal.scheme_rule_refs = []
            old_exports = set(workspace.edb.get("export", set()))
            if old_exports:
                workspace.retract_facts("export", old_exports)
        for principal in self.principals.values():
            self._install_scheme(principal)
        # Everything re-exports under the new regime.
        self._sent.clear()

    # ------------------------------------------------------------------
    # The global fixpoint
    # ------------------------------------------------------------------

    def run(self, max_rounds: int = 100,
            mode: Optional[str] = None) -> RunReport:
        """Exchange batched messages until the whole system quiesces.

        Since PR 4 the loop *is* the cluster scheduler: principals are
        grouped by physical node into :class:`WorkspaceNode` hosts and an
        :class:`~repro.cluster.scheduler.ExecutionRuntime` drives them —
        barrier rounds under ``bsp`` (the default), immediate per-arrival
        import and re-export under ``async``.  Placement is still each
        workspace's ``predNode`` table, traffic still coalesces per node
        pair (:class:`~repro.net.batch.MessageBatcher`), and the
        :class:`~repro.cluster.quiescence.TicketLedger`'s per-sender
        round vectors confirm nothing was in flight at quiescence.  The
        network stays *open*: foreign or corrupted traffic is rejected
        and audited, never fatal.

        ``report.rounds`` counts rounds in which messages were delivered
        (``bsp``) or delivery events (``async``); ``report.depth`` is the
        causal depth of the exchange in either mode.
        """
        report = RunReport()
        # Every network node gets a host — including nodes no principal
        # lives on: a predNode placement may route a message *through*
        # such a node, and import still finds the destination principal
        # by the message's ``to`` field, wherever it is hosted.
        hosts: dict[str, list] = {name: [] for name in self.network.nodes()}
        for principal in self.principals.values():
            hosts.setdefault(principal.node, []).append(principal)
        nodes = {
            name: WorkspaceNode(self, name, principals, report)
            for name, principals in hosts.items()
        }

        def reject(source: str, reason: str) -> None:
            report.rejected += 1
            report.rejected_detail.append((source, reason))

        runtime = ExecutionRuntime(
            nodes, self.network, self.registry,
            mode=mode if mode is not None else self.mode,
            max_batch_bytes=self.max_batch_bytes,
            strict=False, on_reject=reject)
        outcome = runtime.run(max_rounds)
        report.rounds = outcome.productive_rounds
        report.depth = outcome.depth
        report.batches = outcome.messages
        report.bytes = outcome.bytes
        report.virtual_time = outcome.virtual_time
        return report

    def _import_batch(self, principal: Principal, items: list,
                      report: RunReport) -> None:
        """Import a batch in one transaction; isolate failures per item."""
        try:
            with principal.workspace.transaction():
                for pred, fact in items:
                    self._import_one(principal, pred, fact)
            report.delivered += len(items)
            return
        except ConstraintViolation:
            pass  # fall through to per-item isolation
        for pred, fact in items:
            try:
                with principal.workspace.transaction():
                    self._import_one(principal, pred, fact)
                report.delivered += 1
            except ConstraintViolation as exc:
                report.rejected += 1
                report.rejected_detail.append((principal.name, str(exc)))
                principal.workspace.audit.append(
                    _import_rejected_event(principal.name, pred, fact, exc))

    def _import_one(self, principal: Principal, pred: str, fact: tuple) -> None:
        principal.workspace.assert_fact(pred, fact)
        # Receipt metadata: heard(speaker, rule) — see repro.core.says.
        if pred == "export" and len(fact) == 4:
            _to, source, rule_ref, _sig = fact
            principal.workspace.assert_fact("heard", (source, rule_ref))

    # ------------------------------------------------------------------

    def audit_trail(self) -> list:
        events = []
        for principal in self.principals.values():
            events.extend(principal.workspace.audit)
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LBTrustSystem(auth={self.auth_name!r}, "
                f"principals={sorted(self.principals)})")


def _import_rejected_event(name: str, pred: str, fact: tuple, exc: Exception):
    from ..workspace.workspace import AuditEvent

    return AuditEvent("import_rejected", {
        "workspace": name,
        "pred": pred,
        "fact": tuple(str(v) for v in fact),
        "reason": str(exc),
    })
