"""Cryptographic substrate: RSA, HMAC-SHA1, stream cipher, checksums."""

from .keystore import KeyStore
from .rsa import RSAPrivateKey, RSAPublicKey, generate_keypair, sign, verify

__all__ = ["KeyStore", "RSAPrivateKey", "RSAPublicKey", "generate_keypair",
           "sign", "verify"]
