"""Integrity primitives: CRC-32 (from scratch) and hash helpers.

The paper mentions integrity support "such as checksums and cryptographic
hashes" (section 4.1.3).  CRC-32 is implemented table-driven from the
reflected polynomial 0xEDB88320 and tested against :func:`zlib.crc32`;
the hash helpers are thin, typed wrappers over hashlib used by the
confidentiality/integrity builtins.
"""

from __future__ import annotations

import hashlib


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xEDB88320
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, value: int = 0) -> int:
    """CRC-32 (IEEE 802.3), compatible with ``zlib.crc32``."""
    crc = value ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha1_hex(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()
