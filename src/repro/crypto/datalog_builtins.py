"""Cryptographic builtin predicates for the Datalog engine.

Paper section 3: *"LogicBlox further allows application-defined libraries
of custom predicates to be imported, such as the cryptographic functions
required for implementing certain security constructs."*  This module is
that library.  Signatures follow the paper's rule listings exactly:

====================  ======  =====================================
builtin               mode    meaning
====================  ======  =====================================
``rsasign(R,S,K)``    i o i   S := RSA signature of rule R under private key K
``rsaverify(R,S,K)``  i i i   test: S verifies R under public key K
``hmacsign(R,K,S)``   i i o   S := HMAC-SHA1 tag of R under shared key K
``hmacverify(R,S,K)`` i i i   test: tag S matches R under shared key K
``encryptrule(R,K,C)`` i i o  C := stream-encrypted canonical text of R
``decryptrule(C,K,R)`` i i o  R := rule parsed+interned from decrypted C
``sha256hash(X,H)``   i o     H := SHA-256 hex of X's canonical form
``checksum(X,C)``     i o     C := CRC-32 of X's canonical form
====================  ======  =====================================

Rules are signed over their registry-canonical text (alpha-renamed,
deterministic), so a signature made at one principal verifies anywhere the
same logical rule arrives, independent of variable names — the property
Binder certificates rely on.

The builtins need the calling workspace (for its registry and keystore);
they receive it as the evaluation-context payload.
"""

from __future__ import annotations

from typing import Any

from ..datalog.builtins import BuiltinRegistry
from ..datalog.errors import CryptoError
from ..datalog.pretty import format_value
from ..datalog.terms import RuleRef
from . import rsa, stream
from .checksums import crc32, sha256_hex
from .hmac_sha1 import hmac_sha1_hex, verify_hmac_sha1


def _canonical_bytes(workspace: Any, value: Any) -> bytes:
    """The byte string that signatures/MACs/hashes cover."""
    if isinstance(value, RuleRef):
        return workspace.registry.canonical_text(value).encode("utf-8")
    return format_value(value).encode("utf-8")


def _keystore(workspace: Any):
    keystore = getattr(workspace, "keystore", None)
    if keystore is None:
        raise CryptoError(
            "workspace has no keystore attached; provision an auth scheme first"
        )
    return keystore


def register_crypto_builtins(registry: BuiltinRegistry) -> None:
    """Install the cryptographic library into a builtin registry."""

    def bi_rsasign(workspace, rule_value, key_id):
        key = _keystore(workspace).rsa_private(key_id)
        signature = rsa.sign(_canonical_bytes(workspace, rule_value), key)
        return [(format(signature, "x"),)]

    def bi_rsaverify(workspace, rule_value, signature_hex, key_id):
        try:
            key = _keystore(workspace).rsa_public(key_id)
            signature = int(signature_hex, 16)
        except (CryptoError, ValueError):
            return False
        return rsa.verify(_canonical_bytes(workspace, rule_value), signature, key)

    def bi_hmacsign(workspace, rule_value, key_id):
        secret = _keystore(workspace).secret(key_id)
        return [(hmac_sha1_hex(secret, _canonical_bytes(workspace, rule_value)),)]

    def bi_hmacverify(workspace, rule_value, tag_hex, key_id):
        keystore = _keystore(workspace)
        if not keystore.has_secret(key_id):
            return False
        try:
            tag = bytes.fromhex(tag_hex)
        except ValueError:
            return False
        secret = keystore.secret(key_id)
        return verify_hmac_sha1(secret, _canonical_bytes(workspace, rule_value), tag)

    def bi_encryptrule(workspace, rule_value, key_id):
        secret = _keystore(workspace).secret(key_id)
        blob = stream.encrypt(secret, _canonical_bytes(workspace, rule_value))
        return [(blob.hex(),)]

    def bi_decryptrule(workspace, blob_hex, key_id):
        keystore = _keystore(workspace)
        if not keystore.has_secret(key_id):
            return []
        try:
            blob = bytes.fromhex(blob_hex)
        except ValueError:
            return []
        text = stream.decrypt(keystore.secret(key_id), blob).decode(
            "utf-8", errors="replace")
        from ..datalog.parser import parse_statements
        from ..datalog.errors import ParseError
        try:
            statements = parse_statements(text)
        except ParseError:
            return []
        if len(statements) != 1:
            return []
        ref = workspace.registry.intern(statements[0])
        return [(ref,)]

    def bi_sha256hash(workspace, value):
        return [(sha256_hex(_canonical_bytes(workspace, value)),)]

    def bi_checksum(workspace, value):
        return [(crc32(_canonical_bytes(workspace, value)),)]

    registry.register("rsasign", "ioi", bi_rsasign, needs_context=True)
    registry.register("rsaverify", "iii", bi_rsaverify, needs_context=True)
    registry.register("hmacsign", "iio", bi_hmacsign, needs_context=True)
    registry.register("hmacverify", "iii", bi_hmacverify, needs_context=True)
    registry.register("encryptrule", "iio", bi_encryptrule, needs_context=True)
    registry.register("decryptrule", "iio", bi_decryptrule, needs_context=True)
    registry.register("sha256hash", "io", bi_sha256hash, needs_context=True)
    registry.register("checksum", "io", bi_checksum, needs_context=True)
