"""HMAC-SHA1 built from the HMAC construction (RFC 2104).

The paper's alternative `says` scheme signs each message with "a 160-bit
SHA-1 cryptographic hash of the message data and a secret key shared
between the two communicating principals".  We implement the HMAC
construction ourselves — ``H((K ^ opad) || H((K ^ ipad) || m))`` — over a
pluggable SHA-1 core: :mod:`hashlib`'s by default, or the from-scratch
:mod:`repro.crypto.sha1` when ``pure=True``.  RFC 2202 test vectors are
checked in the test-suite, as is equality with the stdlib ``hmac`` module
on random inputs.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from .sha1 import sha1 as _pure_sha1

_BLOCK_SIZE = 64  # SHA-1 block size in bytes


def _hashlib_sha1(message: bytes) -> bytes:
    return hashlib.sha1(message).digest()


def hmac_sha1(key: bytes, message: bytes, pure: bool = False) -> bytes:
    """The 20-byte HMAC-SHA1 tag of ``message`` under ``key``."""
    core: Callable[[bytes], bytes] = _pure_sha1 if pure else _hashlib_sha1
    if len(key) > _BLOCK_SIZE:
        key = core(key)
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    return core(opad + core(ipad + message))


def hmac_sha1_hex(key: bytes, message: bytes, pure: bool = False) -> str:
    return hmac_sha1(key, message, pure).hex()


def constant_time_equal(left: bytes, right: bytes) -> bool:
    """Compare two tags without early exit (timing-safe verification)."""
    if len(left) != len(right):
        return False
    diff = 0
    for a, b in zip(left, right):
        diff |= a ^ b
    return diff == 0


def verify_hmac_sha1(key: bytes, message: bytes, tag: bytes,
                     pure: bool = False) -> bool:
    return constant_time_equal(hmac_sha1(key, message, pure), tag)
