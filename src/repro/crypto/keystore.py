"""Key material storage, referenced from Datalog by opaque key ids.

Key *facts* (``rsaprivkey(me,K)``, ``rsapubkey(U,K)``,
``sharedsecret(me,U2,K)``) live in the workspace like any other relation —
that is what makes the paper's schemes ordinary Datalog.  The actual key
*material* never enters the database: facts carry string ids, and the
cryptographic builtins resolve ids through this store.
"""

from __future__ import annotations

import random
from typing import Optional

from ..datalog.errors import CryptoError
from . import rsa


class KeyStore:
    """Per-principal key material, addressed by string key ids."""

    def __init__(self) -> None:
        self._rsa_private: dict[str, rsa.RSAPrivateKey] = {}
        self._rsa_public: dict[str, rsa.RSAPublicKey] = {}
        self._secrets: dict[str, bytes] = {}

    # -- RSA -----------------------------------------------------------------

    def install_rsa_private(self, key_id: str, key: rsa.RSAPrivateKey) -> None:
        self._rsa_private[key_id] = key

    def install_rsa_public(self, key_id: str, key: rsa.RSAPublicKey) -> None:
        self._rsa_public[key_id] = key

    def rsa_private(self, key_id: str) -> rsa.RSAPrivateKey:
        key = self._rsa_private.get(key_id)
        if key is None:
            raise CryptoError(f"no RSA private key under id {key_id!r}")
        return key

    def rsa_public(self, key_id: str) -> rsa.RSAPublicKey:
        key = self._rsa_public.get(key_id)
        if key is None:
            raise CryptoError(f"no RSA public key under id {key_id!r}")
        return key

    # -- shared secrets ---------------------------------------------------------

    def install_secret(self, key_id: str, secret: bytes) -> None:
        self._secrets[key_id] = secret

    def secret(self, key_id: str) -> bytes:
        secret = self._secrets.get(key_id)
        if secret is None:
            raise CryptoError(f"no shared secret under id {key_id!r}")
        return secret

    def has_secret(self, key_id: str) -> bool:
        return key_id in self._secrets


# -- conventional key-id naming -------------------------------------------------

def rsa_private_id(owner: str) -> str:
    return f"rsa-priv:{owner}"


def rsa_public_id(owner: str) -> str:
    return f"rsa-pub:{owner}"


def shared_secret_id(a: str, b: str) -> str:
    """Symmetric id for the pair — both ends compute the same name."""
    first, second = sorted((a, b))
    return f"hmac:{first}:{second}"


def generate_shared_secret(a: str, b: str,
                           rng: Optional[random.Random] = None) -> bytes:
    rng = rng or random.Random()
    return bytes(rng.getrandbits(8) for _ in range(32))
