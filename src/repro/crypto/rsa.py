"""Textbook RSA, implemented from scratch (keygen, sign/verify, encrypt).

The paper's Figure 2 workload signs every exported Binder fact with a
1024-bit RSA signature.  OpenSSL is not available offline, so we implement
RSA directly:

* key generation: random odd candidates filtered by small-prime trial
  division, then Miller-Rabin (deterministic witness set below 3.3e24,
  40 random rounds above — error probability < 2^-80);
* signatures: hash-then-modexp (SHA-256 digest as the message
  representative), i.e. ``s = H(m)^d mod n``;
* encryption: hybrid — RSA encrypts a random session key; the payload is
  XORed with a SHA-256 counter-mode keystream (see
  :mod:`repro.crypto.stream`).

Security caveat, stated plainly: this is a *reproduction substrate*, not
audited cryptography.  It preserves what the experiment measures — the
cost asymmetry between public-key signatures, MACs and plaintext — and the
functional behaviour (verification fails on any tampered bit), which the
security tests exercise.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from ..datalog.errors import CryptoError

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
]

#: Deterministic Miller-Rabin witnesses: correct for all n < 3.3e24.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981


def is_probable_prime(candidate: int, rng: Optional[random.Random] = None,
                      rounds: int = 40) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    # write candidate-1 as 2^r * d with d odd
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if candidate < _DETERMINISTIC_LIMIT:
        witnesses = [w for w in _DETERMINISTIC_WITNESSES if w < candidate - 1]
    else:
        rng = rng or random.Random()
        witnesses = [rng.randrange(2, candidate - 1) for _ in range(rounds)]
    for witness in witnesses:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError(f"prime size {bits} too small")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # top bit set, odd
        if is_probable_prime(candidate, rng):
            return candidate


def _modinv(a: int, m: int) -> int:
    g, x = _egcd(a, m)
    if g != 1:
        raise CryptoError("modular inverse does not exist")
    return x % m


def _egcd(a: int, b: int) -> tuple[int, int]:
    old_r, r = a, b
    old_x, x = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
    return old_r, old_x


@dataclass(frozen=True)
class RSAPublicKey:
    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def fingerprint(self) -> str:
        digest = hashlib.sha256(f"{self.n}:{self.e}".encode()).hexdigest()
        return f"rsa:{self.bits}:{digest[:12]}"


@dataclass(frozen=True)
class RSAPrivateKey:
    n: int
    e: int
    d: int
    p: int
    q: int

    def public(self) -> RSAPublicKey:
        return RSAPublicKey(self.n, self.e)


def generate_keypair(bits: int = 1024,
                     rng: Optional[random.Random] = None,
                     seed: Optional[int] = None) -> RSAPrivateKey:
    """Generate an RSA key pair (``bits`` is the modulus size)."""
    if rng is None:
        rng = random.Random(seed)
    e = 65537
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = _modinv(e, phi)
        return RSAPrivateKey(n, e, d, p, q)


def _digest_int(message: bytes, n: int) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % n


def sign(message: bytes, key: RSAPrivateKey) -> int:
    """Hash-then-modexp signature: ``H(m)^d mod n``."""
    return pow(_digest_int(message, key.n), key.d, key.n)


def verify(message: bytes, signature: int, key: RSAPublicKey) -> bool:
    """True iff ``signature`` matches ``message`` under ``key``."""
    if not 0 <= signature < key.n:
        return False
    return pow(signature, key.e, key.n) == _digest_int(message, key.n)


def encrypt_int(plaintext: int, key: RSAPublicKey) -> int:
    """Raw RSA on an integer < n (used for session-key wrapping)."""
    if not 0 <= plaintext < key.n:
        raise CryptoError("plaintext out of range for modulus")
    return pow(plaintext, key.e, key.n)


def decrypt_int(ciphertext: int, key: RSAPrivateKey) -> int:
    if not 0 <= ciphertext < key.n:
        raise CryptoError("ciphertext out of range for modulus")
    return pow(ciphertext, key.d, key.n)
