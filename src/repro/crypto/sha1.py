"""Pure-Python SHA-1 (FIPS 180-4), used as the HMAC core when requested.

The paper's HMAC scheme produces "a 160-bit SHA-1 cryptographic hash of
the message data and a secret key".  The default HMAC implementation in
:mod:`repro.crypto.hmac_sha1` uses :mod:`hashlib`'s C core for speed; this
module provides the same function implemented from first principles, and
the test-suite asserts byte equality between the two on random inputs —
so the substrate is fully self-contained even where we borrow the fast
path.
"""

from __future__ import annotations

import struct

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_MASK = 0xFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def sha1(message: bytes) -> bytes:
    """The 20-byte SHA-1 digest of ``message``."""
    h0, h1, h2, h3, h4 = _H0

    length_bits = len(message) * 8
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack(">Q", length_bits)

    for block_start in range(0, len(padded), 64):
        block = padded[block_start:block_start + 64]
        w = list(struct.unpack(">16I", block))
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))

        a, b, c, d, e = h0, h1, h2, h3, h4
        for t in range(80):
            if t < 20:
                f = (b & c) | ((~b) & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK
            e, d, c, b, a = d, c, _rotl(b, 30), a, temp

        h0 = (h0 + a) & _MASK
        h1 = (h1 + b) & _MASK
        h2 = (h2 + c) & _MASK
        h3 = (h3 + d) & _MASK
        h4 = (h4 + e) & _MASK

    return struct.pack(">5I", h0, h1, h2, h3, h4)


def sha1_hex(message: bytes) -> str:
    return sha1(message).hex()
