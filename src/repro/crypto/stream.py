"""A SHA-256 counter-mode stream cipher for confidentiality (section 4.1.3).

``keystream(key, nonce)`` yields ``SHA256(key || nonce || counter)``
blocks; XOR with the plaintext gives the ciphertext.  Paired with RSA
session-key wrapping (:func:`repro.crypto.rsa.encrypt_int`) this provides
the "encrypted facts" capability LBTrust needs for rules that only
authorized principals may interpret.  Same caveat as the rest of the
substrate: faithful behaviour, not audited cryptography.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterator

from ..datalog.errors import CryptoError

_BLOCK = 32  # SHA-256 digest size


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(hashlib.sha256(
            key + nonce + counter.to_bytes(8, "big")
        ).digest())
        counter += 1
    return b"".join(blocks)[:length]


def encrypt(key: bytes, plaintext: bytes, nonce: bytes | None = None) -> bytes:
    """``nonce || ciphertext``; a fresh random nonce unless provided."""
    if nonce is None:
        nonce = os.urandom(16)
    if len(nonce) != 16:
        raise CryptoError("nonce must be 16 bytes")
    stream = _keystream(key, nonce, len(plaintext))
    return nonce + bytes(p ^ s for p, s in zip(plaintext, stream))


def decrypt(key: bytes, blob: bytes) -> bytes:
    if len(blob) < 16:
        raise CryptoError("ciphertext too short to contain a nonce")
    nonce, ciphertext = blob[:16], blob[16:]
    stream = _keystream(key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))
