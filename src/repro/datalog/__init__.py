"""The Datalog substrate: AST, parser, evaluators (pure logic, no state)."""

from .database import Database, Relation
from .engine import (
    EngineRule,
    EvalStats,
    ProvenanceStore,
    StratumStats,
    evaluate,
    normalize_rules,
)
from .naive import evaluate_naive
from .parser import parse_atom, parse_program, parse_rule, parse_statements, parse_term
from .pretty import canonical_rule, format_statement
from .runtime import EvalContext, solve
from .stratify import stratify
from .terms import (
    Atom,
    Constant,
    Constraint,
    Literal,
    Program,
    Quote,
    Rule,
    RuleRef,
    Variable,
)

__all__ = [
    "Atom", "Constant", "Constraint", "Database", "EngineRule", "EvalContext",
    "EvalStats", "Literal", "Program", "ProvenanceStore", "Quote", "Relation",
    "StratumStats",
    "Rule", "RuleRef", "Variable", "canonical_rule", "evaluate",
    "evaluate_naive", "format_statement", "normalize_rules", "parse_atom",
    "parse_program", "parse_rule", "parse_statements", "parse_term", "solve",
    "stratify",
]
