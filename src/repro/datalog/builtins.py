"""Builtin predicate registry and arithmetic/comparison evaluation.

The paper relies on builtins in two places: ordinary comparisons and
arithmetic (``N >= 3``, ``N-1``) and *application-defined libraries of
custom predicates* — the cryptographic functions ``rsasign``, ``rsaverify``,
``hmacsign``, ``hmacverify`` (section 3).  This module provides the
registry those libraries plug into; :mod:`repro.crypto.schemes` registers
the actual cryptographic builtins.

A builtin is declared with a *mode string*: one character per argument,
``i`` for an input that must be bound, ``o`` for an output the builtin
binds.  Functions receive the evaluated input values (plus an optional
context object) and return:

* for all-input builtins: a truth value, or
* for builtins with outputs: an iterable of output tuples (possibly empty),
  one element per ``o`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from .errors import BuiltinError


@dataclass(frozen=True)
class BuiltinDef:
    """A registered builtin: name, mode string, implementation."""

    name: str
    mode: str                      # e.g. "iio" — inputs and outputs per arg
    func: Callable[..., Any]
    needs_context: bool = False    # pass the EvalContext as first argument
    #: a volatile builtin reads state outside its arguments (e.g. the
    #: whole database); rules using one are re-evaluated on every commit
    #: because semi-naive deltas cannot see their hidden dependencies
    volatile: bool = False

    @property
    def arity(self) -> int:
        return len(self.mode)

    @property
    def output_positions(self) -> tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.mode) if m == "o")

    @property
    def input_positions(self) -> tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.mode) if m == "i")


class BuiltinRegistry:
    """Name → :class:`BuiltinDef` lookup used at rule-compile time."""

    def __init__(self, parent: Optional["BuiltinRegistry"] = None) -> None:
        self._defs: dict[str, BuiltinDef] = {}
        self._parent = parent

    def register(self, name: str, mode: str, func: Callable[..., Any],
                 needs_context: bool = False,
                 volatile: bool = False) -> BuiltinDef:
        if any(m not in "io" for m in mode):
            raise BuiltinError(f"bad mode string {mode!r} for builtin {name!r}")
        definition = BuiltinDef(name, mode, func, needs_context, volatile)
        self._defs[name] = definition
        return definition

    def lookup(self, name: str) -> Optional[BuiltinDef]:
        definition = self._defs.get(name)
        if definition is None and self._parent is not None:
            return self._parent.lookup(name)
        return definition

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def child(self) -> "BuiltinRegistry":
        """A registry layered on this one (workspace-local builtins)."""
        return BuiltinRegistry(parent=self)


def invoke_builtin(definition: BuiltinDef, inputs: tuple, context: Any = None) -> Iterable[tuple]:
    """Call a builtin; normalize the result to an iterable of output rows.

    All-input builtins return truthiness → ``[()]`` or ``[]``.
    Builtins with outputs return an iterable of tuples (a bare value is
    accepted for single-output builtins).
    """
    args = (context, *inputs) if definition.needs_context else inputs
    result = definition.func(*args)
    if not definition.output_positions:
        return [()] if result else []
    if result is None:
        return []
    rows = []
    for row in result:
        if not isinstance(row, tuple):
            row = (row,)
        if len(row) != len(definition.output_positions):
            raise BuiltinError(
                f"builtin {definition.name!r} returned a row of width {len(row)}, "
                f"expected {len(definition.output_positions)}"
            )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Arithmetic and comparisons
# ---------------------------------------------------------------------------

_NUMERIC = (int, float)


def apply_arith(op: str, left: Any, right: Any) -> Any:
    """Evaluate one arithmetic operator with light type discipline."""
    if op == "+":
        if isinstance(left, str) and isinstance(right, str):
            return left + right
        _require_numeric(op, left, right)
        return left + right
    _require_numeric(op, left, right)
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise BuiltinError("division by zero")
        result = left / right
        if isinstance(left, int) and isinstance(right, int) and left % right == 0:
            return left // right
        return result
    if op == "%":
        if right == 0:
            raise BuiltinError("modulo by zero")
        return left % right
    raise BuiltinError(f"unknown arithmetic operator {op!r}")  # pragma: no cover


def _require_numeric(op: str, left: Any, right: Any) -> None:
    if not isinstance(left, _NUMERIC) or isinstance(left, bool) \
            or not isinstance(right, _NUMERIC) or isinstance(right, bool):
        raise BuiltinError(
            f"arithmetic {op!r} needs numbers, got {type(left).__name__} "
            f"and {type(right).__name__}"
        )


def apply_comparison(op: str, left: Any, right: Any) -> bool:
    """Evaluate a comparison; ordering requires like-typed operands."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    ordered_ok = (
        (isinstance(left, _NUMERIC) and not isinstance(left, bool)
         and isinstance(right, _NUMERIC) and not isinstance(right, bool))
        or (isinstance(left, str) and isinstance(right, str))
    )
    if not ordered_ok:
        raise BuiltinError(
            f"cannot order {type(left).__name__} against {type(right).__name__}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise BuiltinError(f"unknown comparison {op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# A small standard library (strings, lists-as-tuples)
# ---------------------------------------------------------------------------

def standard_registry() -> BuiltinRegistry:
    """The default builtins every workspace starts from."""
    registry = BuiltinRegistry()
    # Primitive type predicates (LogicBlox treats types as unary
    # predicates; the primitive ones are satisfied by a dynamic check).
    registry.register("int", "i",
                      lambda v: isinstance(v, int) and not isinstance(v, bool))
    registry.register("string", "i", lambda v: isinstance(v, str))
    registry.register("float", "i", lambda v: isinstance(v, float))
    registry.register("number", "i",
                      lambda v: isinstance(v, (int, float)) and not isinstance(v, bool))
    registry.register("bool", "i", lambda v: isinstance(v, bool))
    registry.register("any", "i", lambda v: True)
    registry.register("strlen", "io", lambda s: [(len(s),)] if isinstance(s, str) else [])
    registry.register("concat", "iio", lambda a, b: [(str(a) + str(b),)])
    registry.register("tostring", "io", lambda v: [(_value_to_string(v),)])
    # Tuples double as immutable lists (used by SeNDlog path-vector rules).
    registry.register("list_nil", "o", lambda: [((),)])
    registry.register("list_cons", "iio", lambda head, rest: [((head,) + tuple(rest),)])
    registry.register("list_append", "iio", lambda rest, last: [(tuple(rest) + (last,),)])
    registry.register("list_member", "ii", lambda item, items: item in tuple(items))
    registry.register("list_not_member", "ii",
                      lambda item, items: item not in tuple(items))
    registry.register("list_length", "io", lambda items: [(len(tuple(items)),)])
    registry.register("list_first", "io",
                      lambda items: [(items[0],)] if len(tuple(items)) > 0 else [])
    return registry


def _value_to_string(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
