"""Schema-constraint checking (paper section 3.2).

A constraint ``F1 -> F2.`` means ``fail() <- F1, !(F2)``: evaluation fails
whenever some assignment satisfies F1 but no extension of it satisfies F2.
Both sides are stored in DNF.  RHS variables not bound by the LHS are
existentially quantified — exactly what rules like exp3 need::

    says(U,me,R) -> export[me](U,R,S), rsapubkey(U,K), rsaverify(R,S,K).

(the witness S, K may be any signature/key pair that verifies).

The checker enumerates LHS witnesses with the shared join core and probes
each RHS alternative as a seeded sub-query, so builtins and negation work
on both sides.  Violations are returned (not raised) — the workspace
decides whether to abort a transaction or reject an imported message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .database import Database
from .errors import SafetyError
from .runtime import (
    Bindings,
    EvalContext,
    build_plan,
    cache_plan_bounded,
    cardinality_band,
    relation_sizes,
    solve,
)
from .terms import Constraint

#: FIFO bound on a workspace's constraint-plan cache (band-keyed entries
#: go stale as relations move between cardinality bands).
_MAX_CACHED_PLANS = 128


@dataclass
class Violation:
    """One constraint violation witness."""

    constraint: Constraint
    bindings: Bindings

    def __repr__(self) -> str:
        rendered = ", ".join(
            f"{name}={value!r}" for name, value in sorted(self.bindings.items())
            if not name.startswith("_")
        )
        return f"Violation({self.constraint!r} [{rendered}])"


def check_constraint(constraint: Constraint, db: Database,
                     context: EvalContext,
                     limit: Optional[int] = None,
                     plan_cache: Optional[dict] = None) -> list[Violation]:
    """All (or the first ``limit``) violations of one constraint.

    ``plan_cache`` memoizes compiled LHS/RHS probe plans; every witness of
    one LHS alternative binds the same variable names, so the RHS plan is
    compiled once per (alternative, binding shape) instead of once per
    witness.  A caller-supplied cache (the workspace passes a long-lived
    one) amortizes compilation across commits; it must be invalidated
    whenever the constraint set changes, since entries are keyed by
    constraint identity.
    """
    if constraint.is_declaration():
        return []
    violations: list[Violation] = []
    if plan_cache is None:
        plan_cache = {}
    # The database is fixed for the duration of one check, so each
    # alternative's size/band signature is computed once, not per witness.
    size_memo: dict = {}
    for witness in _lhs_witnesses(constraint, db, context, plan_cache,
                                  size_memo):
        if _rhs_satisfied(constraint, db, context, witness, plan_cache,
                          size_memo):
            continue
        violations.append(Violation(constraint, witness))
        if limit is not None and len(violations) >= limit:
            break
    return violations


def check_constraints(constraints: list, db: Database, context: EvalContext,
                      limit: Optional[int] = None,
                      plan_cache: Optional[dict] = None) -> list[Violation]:
    """Check every constraint; returns the accumulated violations."""
    violations: list[Violation] = []
    for constraint in constraints:
        remaining = None if limit is None else limit - len(violations)
        if remaining is not None and remaining <= 0:
            break
        violations.extend(check_constraint(constraint, db, context, remaining,
                                           plan_cache))
    return violations


def _cached_plan(plan_cache: dict, key: tuple, alternative: tuple,
                 shape: frozenset, db: Database, context: EvalContext,
                 size_memo: dict):
    # The key carries the cardinality-band signature of the alternative's
    # body relations, so long-lived caches (the workspace keeps one across
    # commits) re-plan with fresh cost estimates when some relation grows
    # by an order of magnitude, mirroring EngineRule's band-keyed cache.
    # ``size_memo`` (fresh per check_constraint call) makes the signature
    # per-alternative, not per-witness.
    memo_key = key[:3]  # (constraint id, side, alternative number)
    memoized = size_memo.get(memo_key)
    if memoized is None:
        sizes = relation_sizes(alternative, db)
        if sizes is None:
            bands = None
        else:
            # values are live Relations (or 0 placeholders) since the
            # distinct-count statistics landed; band on their cardinality
            bands = tuple(
                cardinality_band(source if source.__class__ is int
                                 else len(source))
                for source in sizes.values())
        memoized = size_memo[memo_key] = (sizes, bands)
    sizes, bands = memoized
    key = key + (bands,)
    plan = plan_cache.get(key)
    if plan is None:
        plan = build_plan(alternative, shape, builtins=context.builtins,
                          sizes=sizes)
        # FIFO bound, shared with EngineRule's plan cache: long-lived
        # workspace caches otherwise accumulate one entry per band a
        # relation ever passed through (deletion-heavy workloads walk
        # bands downward and never revisit the old keys).
        cache_plan_bounded(plan_cache, key, plan, _MAX_CACHED_PLANS,
                           context.stats)
        if context.stats is not None:
            context.stats.plans_built += 1
            if plan.reordered:
                context.stats.reorder_wins += 1
    elif context.stats is not None:
        context.stats.plan_cache_hits += 1
    return plan


def _lhs_witnesses(constraint: Constraint, db: Database, context: EvalContext,
                   plan_cache: dict, size_memo: dict) -> Iterator[Bindings]:
    for number, alternative in enumerate(constraint.lhs):
        try:
            plan = _cached_plan(plan_cache, (id(constraint), "lhs", number),
                                alternative, frozenset(), db, context,
                                size_memo)
            yield from solve(alternative, db, context, plan=plan)
        except SafetyError as exc:
            raise SafetyError(
                f"constraint {constraint!r} has an unsafe left-hand side: {exc}"
            ) from exc


def _rhs_satisfied(constraint: Constraint, db: Database, context: EvalContext,
                   witness: Bindings, plan_cache: dict,
                   size_memo: dict) -> bool:
    shape = frozenset(witness)
    for number, alternative in enumerate(constraint.rhs):
        try:
            plan = _cached_plan(plan_cache,
                                (id(constraint), "rhs", number, shape),
                                alternative, shape, db, context, size_memo)
        except SafetyError as exc:
            raise SafetyError(
                f"constraint {constraint!r} has an unsafe right-hand "
                f"side: {exc}"
            ) from exc
        for _ in solve(alternative, db, context, bindings=witness, plan=plan):
            return True
    return False
