"""Schema-constraint checking (paper section 3.2).

A constraint ``F1 -> F2.`` means ``fail() <- F1, !(F2)``: evaluation fails
whenever some assignment satisfies F1 but no extension of it satisfies F2.
Both sides are stored in DNF.  RHS variables not bound by the LHS are
existentially quantified — exactly what rules like exp3 need::

    says(U,me,R) -> export[me](U,R,S), rsapubkey(U,K), rsaverify(R,S,K).

(the witness S, K may be any signature/key pair that verifies).

The checker enumerates LHS witnesses with the shared join core and probes
each RHS alternative as a seeded sub-query, so builtins and negation work
on both sides.  Violations are returned (not raised) — the workspace
decides whether to abort a transaction or reject an imported message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .database import Database
from .errors import SafetyError
from .runtime import Bindings, EvalContext, build_plan, solve
from .terms import Constraint


@dataclass
class Violation:
    """One constraint violation witness."""

    constraint: Constraint
    bindings: Bindings

    def __repr__(self) -> str:
        rendered = ", ".join(
            f"{name}={value!r}" for name, value in sorted(self.bindings.items())
            if not name.startswith("_")
        )
        return f"Violation({self.constraint!r} [{rendered}])"


def check_constraint(constraint: Constraint, db: Database,
                     context: EvalContext,
                     limit: Optional[int] = None) -> list[Violation]:
    """All (or the first ``limit``) violations of one constraint."""
    if constraint.is_declaration():
        return []
    violations: list[Violation] = []
    for witness in _lhs_witnesses(constraint, db, context):
        if _rhs_satisfied(constraint, db, context, witness):
            continue
        violations.append(Violation(constraint, witness))
        if limit is not None and len(violations) >= limit:
            break
    return violations


def check_constraints(constraints: list, db: Database, context: EvalContext,
                      limit: Optional[int] = None) -> list[Violation]:
    """Check every constraint; returns the accumulated violations."""
    violations: list[Violation] = []
    for constraint in constraints:
        remaining = None if limit is None else limit - len(violations)
        if remaining is not None and remaining <= 0:
            break
        violations.extend(check_constraint(constraint, db, context, remaining))
    return violations


def _lhs_witnesses(constraint: Constraint, db: Database,
                   context: EvalContext) -> Iterator[Bindings]:
    for alternative in constraint.lhs:
        try:
            yield from solve(alternative, db, context)
        except SafetyError as exc:
            raise SafetyError(
                f"constraint {constraint!r} has an unsafe left-hand side: {exc}"
            ) from exc


def _rhs_satisfied(constraint: Constraint, db: Database, context: EvalContext,
                   witness: Bindings) -> bool:
    for alternative in constraint.rhs:
        try:
            plan = build_plan(alternative, frozenset(witness),
                              builtins=context.builtins)
        except SafetyError as exc:
            raise SafetyError(
                f"constraint {constraint!r} has an unsafe right-hand side: {exc}"
            ) from exc
        for _ in solve(alternative, db, context, bindings=witness, plan=plan):
            return True
    return False
