"""In-memory relations with on-demand hash indexes.

A :class:`Relation` is a set of ground tuples plus any number of hash
indexes keyed by column subsets.  Indexes are built lazily the first time a
join needs them and are maintained incrementally on insertion, which keeps
the semi-naive fixpoint loop cheap (the paper's workloads — says/export
chains — are join-heavy on one or two key columns).

The :class:`Database` is a name → relation mapping with copy-on-write
snapshots used by the workspace's transactional constraint enforcement.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

#: When set, an object with ``index_builds``/``index_hits`` integer
#: attributes (an :class:`repro.datalog.engine.EvalStats`) that
#: :meth:`Relation.lookup` increments.  Installed/removed via
#: :func:`set_index_stats`; the common path pays one ``is None`` check.
_index_stats: Optional[Any] = None


def set_index_stats(stats: Optional[Any]) -> Optional[Any]:
    """Install ``stats`` as the active index-counter sink; return the old one.

    Callers must restore the returned previous value when done (see
    ``EvalStats.capture_indexes``), so nested captures compose.
    """
    global _index_stats
    previous = _index_stats
    _index_stats = stats
    return previous


class Relation:
    """A named set of equal-length tuples with incremental hash indexes."""

    __slots__ = ("name", "tuples", "_indexes")

    def __init__(self, name: str, tuples: Optional[Iterable[tuple]] = None) -> None:
        self.name = name
        self.tuples: set[tuple] = set(tuples) if tuples else set()
        self._indexes: dict[tuple, dict[tuple, list[tuple]]] = {}

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, item: tuple) -> bool:
        return item in self.tuples

    def add(self, item: tuple) -> bool:
        """Insert a tuple; return True if it was new."""
        if item in self.tuples:
            return False
        self.tuples.add(item)
        for positions, index in self._indexes.items():
            key = tuple(item[p] for p in positions)
            index.setdefault(key, []).append(item)
        return True

    def discard(self, item: tuple) -> bool:
        """Remove a tuple; return True if it was present."""
        if item not in self.tuples:
            return False
        self.tuples.discard(item)
        for positions, index in self._indexes.items():
            key = tuple(item[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(item)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del index[key]
        return True

    def lookup(self, positions: tuple, key: tuple) -> list[tuple]:
        """All tuples whose ``positions`` columns equal ``key`` (indexed)."""
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for item in self.tuples:
                item_key = tuple(item[p] for p in positions)
                index.setdefault(item_key, []).append(item)
            self._indexes[positions] = index
            if _index_stats is not None:
                _index_stats.index_builds += 1
        elif _index_stats is not None:
            _index_stats.index_hits += 1
        return index.get(key, [])

    def copy(self) -> "Relation":
        """A snapshot copy (indexes are rebuilt lazily on the copy)."""
        return Relation(self.name, self.tuples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name}, {len(self.tuples)} tuples)"


class Database:
    """A mutable mapping from predicate name to :class:`Relation`."""

    __slots__ = ("relations",)

    def __init__(self) -> None:
        self.relations: dict[str, Relation] = {}

    def rel(self, name: str) -> Relation:
        """The relation for ``name``, created empty on first reference."""
        relation = self.relations.get(name)
        if relation is None:
            relation = Relation(name)
            self.relations[name] = relation
        return relation

    def get(self, name: str) -> Optional[Relation]:
        return self.relations.get(name)

    def tuples(self, name: str) -> set[tuple]:
        relation = self.relations.get(name)
        return relation.tuples if relation is not None else set()

    def add(self, name: str, item: tuple) -> bool:
        return self.rel(name).add(item)

    def discard(self, name: str, item: tuple) -> bool:
        relation = self.relations.get(name)
        return relation.discard(item) if relation is not None else False

    def preds(self) -> list[str]:
        return sorted(self.relations)

    def total_facts(self) -> int:
        return sum(len(r) for r in self.relations.values())

    def snapshot(self) -> "Database":
        """A deep-enough copy for transactional rollback."""
        copy = Database()
        for name, relation in self.relations.items():
            copy.relations[name] = relation.copy()
        return copy

    def restore(self, snapshot: "Database") -> None:
        """Replace all contents with ``snapshot``'s (rollback)."""
        self.relations = {name: rel.copy() for name, rel in snapshot.relations.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.total_facts()} facts in {len(self.relations)} relations)"
