"""Interned columnar fact storage: id-space relations with COW snapshots.

Ground terms are *interned* at relation boundaries: a per-:class:`Database`
:class:`TermInterner` maps each distinct ground value to a dense integer
id (with an inverse table for materialization), so :class:`Relation` rows
are ``tuple[int, ...]`` and every hash index maps id-keys to id-row
buckets.  The join core (:mod:`repro.datalog.runtime`) probes and binds in
id space; boxed Python values are materialized only at output boundaries
— builtins, comparisons, aggregation, wire encoding, and user-facing
reads through the value-level API (``tuples``, ``lookup``, iteration).

Why ids win: equality of interned values is equality of small ints, so
row hashing, index probes and duplicate checks stop touching the boxed
values entirely; single-column index keys are the bare id (no 1-tuple
allocation per probe).

Snapshots are **copy-on-write**: :meth:`Relation.view` returns an O(1)
handle sharing the relation's row set *and* its indexes; the first
mutation through either handle unshares by copying, so unmutated
relations never pay for a snapshot.  The interner itself is **append
only** — ids are never reassigned or dropped — so snapshots share it by
reference forever and :meth:`Database.restore` never touches it.

Index maintenance is *checked*: a row present in ``rows`` whose index
entry is missing raises :class:`~repro.datalog.errors.IndexIntegrityError`
instead of silently returning wrong join results.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from .errors import IndexIntegrityError

#: When set, an object with integer counter attributes (an
#: :class:`repro.datalog.engine.EvalStats`) that the storage layer
#: increments: ``index_builds``/``index_hits`` on :meth:`Relation` index
#: activity, ``terms_interned``/``intern_hits`` on :class:`TermInterner`
#: traffic, and ``value_materializations`` on id-row → value-tuple
#: conversions.  Installed/removed via :func:`set_index_stats`; the
#: common path pays one ``is None`` check.
_index_stats: Optional[Any] = None


def set_index_stats(stats: Optional[Any]) -> Optional[Any]:
    """Install ``stats`` as the active storage-counter sink; return the old one.

    Callers must restore the returned previous value when done (see
    ``EvalStats.capture_indexes``), so nested captures compose.
    """
    global _index_stats
    previous = _index_stats
    _index_stats = stats
    return previous


class TermInterner:
    """A bijection between ground values and dense integer ids.

    ``ids`` maps value → id; ``values`` is the inverse table (id → value,
    a plain list indexed by id).  The table is **append-only**: interning
    never reassigns or frees an id, so any number of COW snapshots can
    share one interner by reference and materialize rows years later.

    Interning is keyed on value equality, exactly like the tuple-set
    storage it replaces: ``1``, ``1.0`` and ``True`` share an id the same
    way they collided in a ``set`` before.
    """

    __slots__ = ("ids", "values")

    def __init__(self) -> None:
        self.ids: dict[Any, int] = {}
        self.values: list[Any] = []

    def __len__(self) -> int:
        return len(self.values)

    def intern(self, value: Any) -> int:
        """The id for ``value``, allocating the next dense id if new."""
        ids = self.ids
        found = ids.get(value)
        if found is not None:
            if _index_stats is not None:
                _index_stats.intern_hits += 1
            return found
        values = self.values
        assigned = len(values)
        ids[value] = assigned
        values.append(value)
        if _index_stats is not None:
            _index_stats.terms_interned += 1
        return assigned

    def id_of(self, value: Any) -> Optional[int]:
        """The id for ``value``, or None — never allocates (lookups)."""
        return self.ids.get(value)

    def intern_row(self, fact: tuple) -> tuple:
        """Intern every term of a ground fact: value tuple → id row."""
        try:
            # All-hits fast path: direct subscript, no per-term call.
            row = tuple([self.ids[value] for value in fact])
        except KeyError:
            intern = self.intern
            return tuple([intern(value) for value in fact])
        if _index_stats is not None:
            _index_stats.intern_hits += len(fact)
        return row

    def row_of(self, fact: tuple) -> Optional[tuple]:
        """The id row for ``fact``, or None if any term was never interned.

        The non-creating twin of :meth:`intern_row`: membership tests and
        discards use it so probing for unknown values cannot grow the
        table.
        """
        try:
            return tuple([self.ids[value] for value in fact])
        except KeyError:
            return None

    def materialize_row(self, row: tuple) -> tuple:
        """Id row → value tuple (an output-boundary conversion)."""
        values = self.values
        if _index_stats is not None:
            _index_stats.value_materializations += 1
        return tuple([values[i] for i in row])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TermInterner({len(self.values)} terms)"


def _row_key(row: tuple, positions: tuple):
    """The index key of ``row`` at ``positions``.

    Single-column indexes are keyed by the **bare id** — the hot probe
    path then hashes one small int instead of allocating a 1-tuple per
    probe.  Multi-column keys are id tuples in position order.
    """
    if len(positions) == 1:
        return row[positions[0]]
    return tuple([row[p] for p in positions])


class Relation:
    """A named set of equal-length id rows with incremental hash indexes.

    ``rows`` holds ``tuple[int, ...]`` rows over the shared ``interner``;
    ``rows`` and ``_indexes`` may be shared with other :class:`Relation`
    handles (``_shared`` is then True); every mutating method unshares
    first, so holders of other handles never observe the mutation.

    The value-level API (``tuples``, ``add``, ``discard``, ``lookup``,
    iteration, membership) interns/materializes at the boundary; the
    id-level API (``rows``, ``add_row``, ``discard_row``,
    ``bucket_rows``) is the join core's hot path.
    """

    __slots__ = ("name", "rows", "interner", "_indexes", "_shared",
                 "_version", "_col_stats", "_values", "_buckets")

    def __init__(self, name: str, tuples: Optional[Iterable[tuple]] = None,
                 interner: Optional[TermInterner] = None) -> None:
        self.name = name
        self.interner = interner if interner is not None else TermInterner()
        intern_row = self.interner.intern_row
        self.rows: set[tuple] = (
            {intern_row(fact) for fact in tuples} if tuples else set())
        self._indexes: dict[tuple, dict[Any, list[tuple]]] = {}
        self._shared = False
        self._version = 0
        self._col_stats: dict[int, tuple[int, int]] = {}
        self._values: Optional[tuple[int, set]] = None
        self._buckets: Optional[tuple[int, dict]] = None

    @classmethod
    def wrap(cls, name: str, tuples: set,
             interner: Optional[TermInterner] = None) -> "Relation":
        """A relation over an existing *value* set — the donor is never
        mutated.  Terms are interned up front (into ``interner`` when
        given, else a private table); the id-row hot path
        (:meth:`wrap_rows`) is what the engine's delta exchange uses."""
        relation = cls.__new__(cls)
        relation.name = name
        relation.interner = interner if interner is not None else TermInterner()
        intern_row = relation.interner.intern_row
        relation.rows = {intern_row(fact) for fact in tuples}
        relation._indexes = {}
        relation._shared = False
        relation._version = 0
        relation._col_stats = {}
        relation._values = None
        relation._buckets = None
        return relation

    @classmethod
    def wrap_rows(cls, name: str, rows: set,
                  interner: TermInterner) -> "Relation":
        """A COW relation adopting an existing *id-row* set — no copy.

        The donor set is adopted as shared state: reads (including lazy
        index builds) touch it directly, while the first mutation copies,
        leaving the donor untouched.  Used for semi-naive delta
        relations, which are read-heavy and usually never mutated; the
        rows must be interned against ``interner`` (the database's, so
        id-space probes against them are meaningful).
        """
        relation = cls.__new__(cls)
        relation.name = name
        relation.interner = interner
        relation.rows = rows
        relation._indexes = {}
        relation._shared = True
        relation._version = 0
        relation._col_stats = {}
        relation._values = None
        relation._buckets = None
        return relation

    def view(self) -> "Relation":
        """An O(1) copy-on-write handle onto this relation's state.

        Both handles share rows and indexes (and the append-only
        interner, which is never copied) until one of them mutates; the
        mutating side copies its state first (see :meth:`_unshare`), so
        the other side keeps the pre-mutation contents.

        Per-column distinct counts are shared too — same dict, same
        version tag — so statistics computed through *either* handle
        (e.g. the planner costing a magic-sets overlay) serve every
        handle of the unmutated state; the first mutation takes a
        private copy along with the rows.
        """
        other = Relation.__new__(Relation)
        other.name = self.name
        other.interner = self.interner
        other.rows = self.rows
        other._indexes = self._indexes
        other._shared = True
        other._version = self._version
        other._col_stats = self._col_stats
        other._values = self._values
        other._buckets = self._buckets
        self._shared = True
        return other

    def copy(self) -> "Relation":
        """A snapshot copy (copy-on-write; indexes are shared until mutation)."""
        return self.view()

    def _unshare(self) -> None:
        """Take private ownership of rows and indexes before a mutation."""
        self.rows = set(self.rows)
        self._indexes = {
            positions: {key: list(bucket) for key, bucket in index.items()}
            for positions, index in self._indexes.items()
        }
        self._col_stats = dict(self._col_stats)
        self._shared = False

    # ------------------------------------------------------------------
    # Value-level API (interns / materializes at the boundary)
    # ------------------------------------------------------------------

    @property
    def tuples(self) -> set:
        """The relation's contents as a set of *value* tuples.

        Materialized lazily from the id rows and cached until the next
        mutation, so repeated reads of a quiescent relation pay one
        conversion.  Callers must treat the set as read-only.
        """
        cached = self._values
        version = self._version
        if cached is not None and cached[0] == version:
            return cached[1]
        values = self.interner.values
        materialized = {tuple([values[i] for i in row]) for row in self.rows}
        if _index_stats is not None:
            _index_stats.value_materializations += len(materialized)
        self._values = (version, materialized)
        return materialized

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, item: tuple) -> bool:
        row = self.interner.row_of(item)
        return row is not None and row in self.rows

    def add(self, item: tuple) -> bool:
        """Insert a value tuple; return True if it was new."""
        return self.add_row(self.interner.intern_row(item))

    def discard(self, item: tuple) -> bool:
        """Remove a value tuple; return True if it was present."""
        row = self.interner.row_of(item)
        if row is None:
            return False
        return self.discard_row(row)

    def lookup(self, positions: tuple, key: tuple) -> list[tuple]:
        """All value tuples whose ``positions`` columns equal ``key``.

        Probes the id-space index (the key is interned without ever
        growing the table — unknown values simply match nothing) and
        materializes the hits in one pass.  The result is immutable —
        callers must not mutate it: it is cached per (positions, key)
        until the relation's next mutation, so repeated probes of a
        quiescent relation (negation checks, constraint sweeps) pay one
        materialization.  It is independent of the live bucket by
        construction — later mutations of the relation do not affect
        it, so callers may interleave iteration with insertions into
        this very relation.
        """
        id_of = self.interner.id_of
        if len(positions) == 1:
            id_key = id_of(key[0])
            if id_key is None:
                return []
        else:
            id_key_list = []
            for value in key:
                found = id_of(value)
                if found is None:
                    return []
                id_key_list.append(found)
            id_key = tuple(id_key_list)
        cache = self._buckets
        version = self._version
        if cache is None or cache[0] != version:
            cache = (version, {})
            self._buckets = cache
        cache_key = (positions, id_key)
        hit = cache[1].get(cache_key)
        if hit is not None:
            # A memoized probe still counts as an index hit: the bucket
            # was answered from index-derived state, just without paying
            # re-materialization.
            if _index_stats is not None:
                _index_stats.index_hits += 1
            return hit
        bucket = self.bucket_rows(positions, id_key)
        if bucket:
            values = self.interner.values
            if _index_stats is not None:
                _index_stats.value_materializations += len(bucket)
            result = [tuple([values[i] for i in row]) for row in bucket]
        else:
            result = []
        cache[1][cache_key] = result
        return result

    # ------------------------------------------------------------------
    # Id-level API (the join core's hot path)
    # ------------------------------------------------------------------

    def add_row(self, row: tuple) -> bool:
        """Insert an id row; return True if it was new."""
        if row in self.rows:
            return False
        if self._shared:
            self._unshare()
        self._version += 1
        self.rows.add(row)
        for positions, index in self._indexes.items():
            key = row[positions[0]] if len(positions) == 1 \
                else tuple([row[p] for p in positions])
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
            else:
                bucket.append(row)
        return True

    def add_rows(self, rows: set) -> set:
        """Bulk :meth:`add_row`: insert many id rows, return the new ones.

        The dedup against existing rows is one C-level set difference
        (the semi-naive merge loop calls this once per rule application
        instead of paying a Python call per derived fact); index
        maintenance runs only over the genuinely fresh rows.
        """
        fresh = rows - self.rows
        if not fresh:
            return fresh
        if self._shared:
            self._unshare()
        self._version += 1
        self.rows |= fresh
        for positions, index in self._indexes.items():
            single = len(positions) == 1
            column = positions[0]
            for row in fresh:
                key = row[column] if single \
                    else tuple([row[p] for p in positions])
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
        return fresh

    def discard_row(self, row: tuple) -> bool:
        """Remove an id row; return True if it was present.

        Every maintained index must agree with ``rows``; a missing
        bucket or bucket entry means maintenance went wrong somewhere and
        raises :class:`IndexIntegrityError` rather than silently leaving
        the index disagreeing with the row set.
        """
        if row not in self.rows:
            return False
        if self._shared:
            self._unshare()
        self._version += 1
        self.rows.discard(row)
        for positions, index in self._indexes.items():
            key = _row_key(row, positions)
            bucket = index.get(key)
            if bucket is None:
                raise IndexIntegrityError(
                    f"relation {self.name!r}: index {positions} has no bucket "
                    f"for {row!r}"
                )
            try:
                bucket.remove(row)
            except ValueError:
                raise IndexIntegrityError(
                    f"relation {self.name!r}: index {positions} bucket is "
                    f"missing {row!r}"
                ) from None
            if not bucket:
                del index[key]
        return True

    def index_for(self, positions: tuple) -> dict:
        """The live id-row hash index on ``positions`` (built on first use).

        Returns the raw ``key -> bucket`` dict so hot join loops can bind
        ``index.get`` once per rule application instead of paying a
        method call per probe; counts one ``index_builds`` or
        ``index_hits`` per call, so the flat join core's prefetch counts
        index traffic per rule application while per-probe callers
        (:meth:`bucket_rows`, :meth:`lookup`) keep per-probe counts.
        Keys are bare ids for single-column indexes, id tuples otherwise.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            single = len(positions) == 1
            column = positions[0]
            for row in self.rows:
                row_key = row[column] if single \
                    else tuple([row[p] for p in positions])
                bucket = index.get(row_key)
                if bucket is None:
                    index[row_key] = [row]
                else:
                    bucket.append(row)
            self._indexes[positions] = index
            if _index_stats is not None:
                _index_stats.index_builds += 1
        elif _index_stats is not None:
            _index_stats.index_hits += 1
        return index

    def bucket_rows(self, positions: tuple, id_key):
        """The raw id-row index bucket for ``id_key`` (no copy).

        Zero-copy fast path for the engine's staged rule application,
        where the relation is by contract not mutated while the bucket
        is being iterated.  ``id_key`` is a bare id for single-column
        indexes, an id tuple otherwise.  Returns ``()`` on a miss.
        """
        return self.index_for(positions).get(id_key, ())

    def distinct_count(self, position: int) -> int:
        """Number of distinct values in one column (cached per version).

        Interning is a bijection, so distinct ids ≡ distinct values.
        Feeds the join cost model's per-column selectivity (``1/distinct``
        rather than an assumed constant).  An existing single-column hash
        index answers in O(1); otherwise one scan computes the count, and
        the result stays cached until the relation next mutates.
        """
        cached = self._col_stats.get(position)
        version = self._version
        if cached is not None and cached[0] == version:
            return cached[1]
        index = self._indexes.get((position,))
        if index is not None:
            count = len(index)
        else:
            count = len({
                row[position] for row in self.rows if len(row) > position
            })
            if _index_stats is not None:
                _index_stats.column_stats_built += 1
        self._col_stats[position] = (version, count)
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name}, {len(self.rows)} rows)"


class Database:
    """A mutable mapping from predicate name to :class:`Relation`.

    All relations (and every snapshot taken from this database) share one
    append-only :class:`TermInterner`, so id rows are comparable across
    relations, deltas, and COW overlays.
    """

    __slots__ = ("relations", "interner")

    def __init__(self, interner: Optional[TermInterner] = None) -> None:
        self.relations: dict[str, Relation] = {}
        self.interner = interner if interner is not None else TermInterner()

    def rel(self, name: str) -> Relation:
        """The relation for ``name``, created empty on first reference."""
        relation = self.relations.get(name)
        if relation is None:
            relation = Relation(name, interner=self.interner)
            self.relations[name] = relation
        return relation

    def get(self, name: str) -> Optional[Relation]:
        return self.relations.get(name)

    def tuples(self, name: str) -> set[tuple]:
        relation = self.relations.get(name)
        return relation.tuples if relation is not None else set()

    def add(self, name: str, item: tuple) -> bool:
        return self.rel(name).add(item)

    def discard(self, name: str, item: tuple) -> bool:
        relation = self.relations.get(name)
        return relation.discard(item) if relation is not None else False

    def preds(self) -> list[str]:
        return sorted(self.relations)

    def total_facts(self) -> int:
        return sum(len(r) for r in self.relations.values())

    def snapshot(self) -> "Database":
        """A copy-on-write snapshot: O(number of relations), not O(facts).

        The snapshot shares every relation's state through
        :meth:`Relation.view` and the interner by reference (append-only,
        so it never needs copying).  Also serves as a cheap *overlay* (a
        scratch database seeded with this one's contents — see
        :func:`repro.datalog.magic.query_magic`).
        """
        copy = Database(interner=self.interner)
        relations = copy.relations
        for name, relation in self.relations.items():
            relations[name] = relation.view()
        return copy

    def restore(self, snapshot: "Database") -> None:
        """Replace all contents with ``snapshot``'s (rollback).

        Untouched relations — those still sharing state with the snapshot
        — keep their live :class:`Relation` object, so their identity and
        any built indexes survive the round-trip.  The snapshot remains
        valid and can be restored again.
        """
        relations: dict[str, Relation] = {}
        live_map = self.relations
        for name, snap_rel in snapshot.relations.items():
            live = live_map.get(name)
            if live is not None and live.rows is snap_rel.rows:
                relations[name] = live
            else:
                relations[name] = snap_rel.view()
        self.relations = relations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.total_facts()} facts in {len(self.relations)} relations)"
