"""In-memory relations with on-demand hash indexes and COW snapshots.

A :class:`Relation` is a set of ground tuples plus any number of hash
indexes keyed by column subsets.  Indexes are built lazily the first time a
join needs them and are maintained incrementally on insertion, which keeps
the semi-naive fixpoint loop cheap (the paper's workloads — says/export
chains — are join-heavy on one or two key columns).

Snapshots are **copy-on-write**: :meth:`Relation.view` returns an O(1)
handle sharing the relation's tuple set *and* its indexes; the first
mutation through either handle unshares by copying, so unmutated relations
never pay for a snapshot.  :meth:`Database.snapshot` builds a database of
views in O(number of relations), and :meth:`Database.restore` keeps the
live relation object (identity, indexes and all) wherever it still shares
state with the snapshot — rollback costs O(changed relations), not
O(total facts).

Index maintenance is *checked*: a tuple present in ``tuples`` whose index
entry is missing raises :class:`~repro.datalog.errors.IndexIntegrityError`
instead of silently returning wrong join results.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from .errors import IndexIntegrityError

#: When set, an object with ``index_builds``/``index_hits`` integer
#: attributes (an :class:`repro.datalog.engine.EvalStats`) that
#: :meth:`Relation.lookup` increments.  Installed/removed via
#: :func:`set_index_stats`; the common path pays one ``is None`` check.
_index_stats: Optional[Any] = None


def set_index_stats(stats: Optional[Any]) -> Optional[Any]:
    """Install ``stats`` as the active index-counter sink; return the old one.

    Callers must restore the returned previous value when done (see
    ``EvalStats.capture_indexes``), so nested captures compose.
    """
    global _index_stats
    previous = _index_stats
    _index_stats = stats
    return previous


class Relation:
    """A named set of equal-length tuples with incremental hash indexes.

    ``tuples`` and ``_indexes`` may be shared with other :class:`Relation`
    handles (``_shared`` is then True); every mutating method unshares
    first, so holders of other handles never observe the mutation.
    """

    __slots__ = ("name", "tuples", "_indexes", "_shared", "_version",
                 "_col_stats")

    def __init__(self, name: str, tuples: Optional[Iterable[tuple]] = None) -> None:
        self.name = name
        self.tuples: set[tuple] = set(tuples) if tuples else set()
        self._indexes: dict[tuple, dict[tuple, list[tuple]]] = {}
        self._shared = False
        self._version = 0
        self._col_stats: dict[int, tuple[int, int]] = {}

    @classmethod
    def wrap(cls, name: str, tuples: set) -> "Relation":
        """A COW relation over an existing set — no copy up front.

        The donor set is adopted as shared state: reads (including lazy
        index builds) touch it directly, while the first mutation copies,
        leaving the donor untouched.  Used for semi-naive delta relations,
        which are read-heavy and usually never mutated.
        """
        relation = cls.__new__(cls)
        relation.name = name
        relation.tuples = tuples
        relation._indexes = {}
        relation._shared = True
        relation._version = 0
        relation._col_stats = {}
        return relation

    def view(self) -> "Relation":
        """An O(1) copy-on-write handle onto this relation's state.

        Both handles share tuples and indexes until one of them mutates;
        the mutating side copies its state first (see :meth:`_unshare`),
        so the other side keeps the pre-mutation contents.

        Per-column distinct counts are shared too — same dict, same
        version tag — so statistics computed through *either* handle
        (e.g. the planner costing a magic-sets overlay) serve every
        handle of the unmutated state; the first mutation takes a
        private copy along with the tuples.
        """
        other = Relation.__new__(Relation)
        other.name = self.name
        other.tuples = self.tuples
        other._indexes = self._indexes
        other._shared = True
        other._version = self._version
        other._col_stats = self._col_stats
        self._shared = True
        return other

    def copy(self) -> "Relation":
        """A snapshot copy (copy-on-write; indexes are shared until mutation)."""
        return self.view()

    def _unshare(self) -> None:
        """Take private ownership of tuples and indexes before a mutation."""
        self.tuples = set(self.tuples)
        self._indexes = {
            positions: {key: list(bucket) for key, bucket in index.items()}
            for positions, index in self._indexes.items()
        }
        self._col_stats = dict(self._col_stats)
        self._shared = False

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def __contains__(self, item: tuple) -> bool:
        return item in self.tuples

    def add(self, item: tuple) -> bool:
        """Insert a tuple; return True if it was new."""
        if item in self.tuples:
            return False
        if self._shared:
            self._unshare()
        self._version += 1
        self.tuples.add(item)
        for positions, index in self._indexes.items():
            key = tuple([item[p] for p in positions])
            bucket = index.get(key)
            if bucket is None:
                index[key] = [item]
            else:
                bucket.append(item)
        return True

    def discard(self, item: tuple) -> bool:
        """Remove a tuple; return True if it was present.

        Every maintained index must agree with ``tuples``; a missing
        bucket or bucket entry means maintenance went wrong somewhere and
        raises :class:`IndexIntegrityError` rather than silently leaving
        the index disagreeing with the tuple set.
        """
        if item not in self.tuples:
            return False
        if self._shared:
            self._unshare()
        self._version += 1
        self.tuples.discard(item)
        for positions, index in self._indexes.items():
            key = tuple([item[p] for p in positions])
            bucket = index.get(key)
            if bucket is None:
                raise IndexIntegrityError(
                    f"relation {self.name!r}: index {positions} has no bucket "
                    f"for {item!r}"
                )
            try:
                bucket.remove(item)
            except ValueError:
                raise IndexIntegrityError(
                    f"relation {self.name!r}: index {positions} bucket is "
                    f"missing {item!r}"
                ) from None
            if not bucket:
                del index[key]
        return True

    def lookup(self, positions: tuple, key: tuple) -> list[tuple]:
        """All tuples whose ``positions`` columns equal ``key`` (indexed).

        Returns a *stable* list: later mutations of the relation do not
        affect it, so callers may interleave iteration with insertions
        into this very relation.
        """
        bucket = self.live_bucket(positions, key)
        return list(bucket) if bucket else []

    def live_bucket(self, positions: tuple, key: tuple):
        """The raw index bucket for ``key`` (no defensive copy).

        Zero-copy fast path for the engine's staged rule application,
        where the relation is by contract not mutated while the bucket is
        being iterated.  Anyone who may mutate between reads must use
        :meth:`lookup` instead.  Returns ``()`` on a miss.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for item in self.tuples:
                item_key = tuple([item[p] for p in positions])
                bucket = index.get(item_key)
                if bucket is None:
                    index[item_key] = [item]
                else:
                    bucket.append(item)
            self._indexes[positions] = index
            if _index_stats is not None:
                _index_stats.index_builds += 1
        elif _index_stats is not None:
            _index_stats.index_hits += 1
        return index.get(key, ())

    def distinct_count(self, position: int) -> int:
        """Number of distinct values in one column (cached per version).

        Feeds the join cost model's per-column selectivity (``1/distinct``
        rather than an assumed constant).  An existing single-column hash
        index answers in O(1); otherwise one scan computes the count, and
        the result stays cached until the relation next mutates.
        """
        cached = self._col_stats.get(position)
        version = self._version
        if cached is not None and cached[0] == version:
            return cached[1]
        index = self._indexes.get((position,))
        if index is not None:
            count = len(index)
        else:
            count = len({
                row[position] for row in self.tuples if len(row) > position
            })
            if _index_stats is not None:
                _index_stats.column_stats_built += 1
        self._col_stats[position] = (version, count)
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name}, {len(self.tuples)} tuples)"


class Database:
    """A mutable mapping from predicate name to :class:`Relation`."""

    __slots__ = ("relations",)

    def __init__(self) -> None:
        self.relations: dict[str, Relation] = {}

    def rel(self, name: str) -> Relation:
        """The relation for ``name``, created empty on first reference."""
        relation = self.relations.get(name)
        if relation is None:
            relation = Relation(name)
            self.relations[name] = relation
        return relation

    def get(self, name: str) -> Optional[Relation]:
        return self.relations.get(name)

    def tuples(self, name: str) -> set[tuple]:
        relation = self.relations.get(name)
        return relation.tuples if relation is not None else set()

    def add(self, name: str, item: tuple) -> bool:
        return self.rel(name).add(item)

    def discard(self, name: str, item: tuple) -> bool:
        relation = self.relations.get(name)
        return relation.discard(item) if relation is not None else False

    def preds(self) -> list[str]:
        return sorted(self.relations)

    def total_facts(self) -> int:
        return sum(len(r) for r in self.relations.values())

    def snapshot(self) -> "Database":
        """A copy-on-write snapshot: O(number of relations), not O(facts).

        The snapshot shares every relation's state through
        :meth:`Relation.view`; mutations on either side unshare just the
        touched relation.  Also serves as a cheap *overlay* (a scratch
        database seeded with this one's contents — see
        :func:`repro.datalog.magic.query_magic`).
        """
        copy = Database()
        relations = copy.relations
        for name, relation in self.relations.items():
            relations[name] = relation.view()
        return copy

    def restore(self, snapshot: "Database") -> None:
        """Replace all contents with ``snapshot``'s (rollback).

        Untouched relations — those still sharing state with the snapshot
        — keep their live :class:`Relation` object, so their identity and
        any built indexes survive the round-trip.  The snapshot remains
        valid and can be restored again.
        """
        relations: dict[str, Relation] = {}
        live_map = self.relations
        for name, snap_rel in snapshot.relations.items():
            live = live_map.get(name)
            if live is not None and live.tuples is snap_rel.tuples:
                relations[name] = live
            else:
                relations[name] = snap_rel.view()
        self.relations = relations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.total_facts()} facts in {len(self.relations)} relations)"
