"""Bottom-up semi-naive fixpoint evaluation (the LogicBlox execution model).

The paper (section 3.1): *"LogicBlox utilizes a bottom-up semi-naive
fixpoint execution model for executing Datalog programs."*  This module is
that execution model:

* :func:`evaluate` — run a stratified program to fixpoint over a database;
* :func:`propagate_insertions` — incremental maintenance for newly added
  facts (semi-naive deltas through the strata; nonmonotone strata are
  selectively recomputed from their EDB);
* :func:`propagate_deletions` — DRed-style delete-and-rederive.

Rules entering the engine are *normalized*: single head, ``me`` resolved,
body quotes already compiled away by the meta layer (heads may still carry
quote templates — instantiating those is code generation and happens here,
through ``context.instantiate_quote``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, ClassVar, Iterable, Iterator, Optional

from .database import Database, Relation, set_index_stats
from .errors import SafetyError
from .runtime import (
    Bindings,
    EvalContext,
    Plan,
    build_plan,
    cache_plan_bounded,
    cardinality_band,
    instantiate_head,
    run_flat,
    solve,
)
from .stratify import Stratum, stratify
from .terms import Aggregate, Atom, Constant, Literal, Rule, Variable

#: pred -> set of tuples; the currency of incremental propagation.
FactSet = dict[str, set]


def _compile_head(atom: Atom):
    """A fast ground-tuple constructor for an all-const/var head, else None."""
    spec = []
    for term in atom.all_args:
        if isinstance(term, Variable):
            spec.append((True, term.name))
        elif isinstance(term, Constant):
            spec.append((False, term.value))
        else:
            return None  # quotes / expressions need the generic path
    spec = tuple(spec)
    pred = atom.pred

    def construct(bindings: Bindings) -> tuple:
        try:
            return tuple([bindings[payload] if is_var else payload
                          for is_var, payload in spec])
        except KeyError as exc:
            raise SafetyError(
                f"head variable {exc.args[0]!r} of {pred} is not bound by the body"
            ) from None

    return construct


@dataclass
class EngineRule:
    """A normalized single-head rule plus its cached join plans.

    Plans are cached per ``(delta_position, cardinality bands)``: the band
    signature maps each positive body relation's live size through
    :func:`repro.datalog.runtime.cardinality_band` (empty / small / one
    band per power of *four*), so a cached plan is reused until some
    input relation grows or shrinks past a band boundary — coarse enough
    to keep rebuilds rare, fine enough that the cost model reacts to
    order-of-magnitude cardinality shifts.
    """

    MAX_CACHED_PLANS: ClassVar[int] = 128

    head: Atom
    body: tuple
    agg: Optional[Aggregate] = None
    label: Optional[str] = None
    source: Optional[Rule] = None
    _plans: dict = field(default_factory=dict, repr=False)
    _size_preds: Optional[tuple] = field(default=None, repr=False)
    _head_ctor: Any = field(default=False, repr=False)
    _positive_positions: Optional[list] = field(default=None, repr=False)

    @property
    def heads(self) -> tuple:
        # Shape-compatibility with terms.Rule for stratify().
        return (self.head,)

    def head_ctor(self):
        """Compiled head instantiator, or None when the head needs quotes."""
        if self._head_ctor is False:
            self._head_ctor = _compile_head(self.head)
        return self._head_ctor

    def plan(self, context: EvalContext, delta_position: Optional[int],
             db: Optional[Database] = None,
             stats: Optional["EvalStats"] = None) -> Plan:
        if stats is None:
            stats = context.stats
        sizes = None
        preds = self._size_preds
        if preds is None:
            preds = self._size_preds = tuple(dict.fromkeys(
                item.atom.pred for item in self.body
                if isinstance(item, Literal) and not item.negated))
        sized = False
        if db is None or len(preds) <= 1:
            # One distinct positive predicate: every candidate literal has
            # the same cardinality, so the cost model cannot change the
            # order — don't let size churn invalidate the cached plan.
            key = (delta_position, None)
        else:
            relations = db.relations
            signature = []
            for pred in preds:
                relation = relations.get(pred)
                signature.append(cardinality_band(
                    len(relation) if relation is not None else 0))
            if max(signature) <= 1:
                # Everything is small: any order is fine, so share one
                # greedy plan instead of churning sized plans while the
                # relations fill up.
                key = (delta_position, None)
            else:
                sized = True
                key = (delta_position, tuple(signature))
        plan = self._plans.get(key)
        if plan is None:
            if sized:
                # The live relations go to the cost model (they answer
                # per-column distinct counts); built only on a cache
                # miss — the hot path is a band-keyed hit.
                relations = db.relations
                sizes = {
                    pred: relations.get(pred) if pred in relations else 0
                    for pred in preds
                }
            plan = build_plan(self.body, first=delta_position,
                              builtins=context.builtins, sizes=sizes)
            cache_plan_bounded(self._plans, key, plan,
                               self.MAX_CACHED_PLANS, stats)
            if stats is not None:
                stats.plans_built += 1
                if plan.reordered:
                    stats.reorder_wins += 1
        elif stats is not None:
            stats.plan_cache_hits += 1
        return plan

    def evict_shrunk_plans(self, db: Database,
                           shrunk: Iterable[str]) -> int:
        """Drop cached plans keyed to bands a shrunk relation has left.

        Deletion-heavy maintenance moves relations *down* through
        cardinality bands; plans cached under the old, larger band would
        never be served again (their key no longer matches) yet occupy
        FIFO slots, evicting still-live entries.  For every predicate in
        ``shrunk`` that this rule's body reads, cached plans whose band
        signature records a band above the relation's current one are
        dropped.  Returns the number of evicted plans.
        """
        if not self._plans:
            return 0
        preds = self._size_preds
        if not preds:
            return 0
        relations = db.relations
        stale_slots = []
        for index, pred in enumerate(preds):
            if pred not in shrunk:
                continue
            relation = relations.get(pred)
            size = len(relation) if relation is not None else 0
            stale_slots.append((index, cardinality_band(size)))
        if not stale_slots:
            return 0
        stale_keys = [
            key for key in self._plans
            if key[1] is not None and any(
                key[1][index] > band for index, band in stale_slots)
        ]
        for key in stale_keys:
            del self._plans[key]
        return len(stale_keys)

    def positive_positions(self) -> list[int]:
        positions = self._positive_positions
        if positions is None:
            positions = self._positive_positions = [
                index for index, item in enumerate(self.body)
                if isinstance(item, Literal) and not item.negated
            ]
        return positions

    def body_preds(self) -> set:
        return {
            item.atom.pred for item in self.body if isinstance(item, Literal)
        }

    def __repr__(self) -> str:
        name = self.label or "rule"
        return f"<{name}: {self.head!r} <- {len(self.body)} items>"


def normalize_rules(rules: Iterable[Rule]) -> list[EngineRule]:
    """Split multi-head rules and wrap them for the engine."""
    normalized = []
    for rule in rules:
        for head in rule.heads:
            normalized.append(EngineRule(head, rule.body, rule.agg, rule.label, rule))
    return normalized


class ProvenanceStore:
    """Optional why-provenance: one or more derivations per derived fact.

    A derivation is ``(rule_label, ((pred, tuple), ...))`` listing the
    positive body facts that supported the head.  EDB assertions are
    recorded with the pseudo-label ``"$edb"``.
    """

    def __init__(self) -> None:
        self.derivations: dict[tuple, set] = {}

    def record(self, pred: str, fact: tuple, rule_label: str,
               supports: tuple) -> None:
        self.derivations.setdefault((pred, fact), set()).add((rule_label, supports))

    def record_edb(self, pred: str, fact: tuple) -> None:
        self.record(pred, fact, "$edb", ())

    def forget(self, pred: str, fact: tuple) -> None:
        self.derivations.pop((pred, fact), None)

    def of(self, pred: str, fact: tuple) -> set:
        return self.derivations.get((pred, fact), set())


@dataclass
class StratumStats:
    """One :func:`eval_stratum` pass, as seen by the benchmark harness.

    ``delta_sizes[i]`` is the number of delta facts consumed by semi-naive
    iteration ``i`` (the initial seed delta included — on the incremental
    path the seed is drained by the initial pass, which counts as the
    first iteration here), so the shape of the fixpoint — how fast the
    frontier drains — is visible, not just its total cost.  ``rounds``
    always equals ``len(delta_sizes)``.
    """

    number: int
    rounds: int = 0
    new_facts: int = 0
    elapsed: float = 0.0
    delta_sizes: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "stratum": self.number,
            "rounds": self.rounds,
            "new_facts": self.new_facts,
            "elapsed": self.elapsed,
            "delta_sizes": list(self.delta_sizes),
        }


@dataclass
class EvalStats:
    """Counters describing evaluation work (recorded by benchmarks).

    Beyond the aggregate counters, an instance carries:

    * ``rule_firings`` — head tuples produced per rule, keyed by the rule's
      label (falling back to the head predicate for unlabeled rules);
    * ``strata`` — a bounded trail of :class:`StratumStats` records, one
      per :func:`eval_stratum` pass (oldest dropped beyond ``MAX_STRATA``
      so long-lived accumulators like ``Workspace.stats`` stay small);
    * ``index_builds`` / ``index_hits`` — :meth:`Relation.lookup` activity
      while this instance is installed via :meth:`capture_indexes` (the
      engine installs it for the duration of each stratum pass);
    * ``terms_interned`` / ``intern_hits`` — :class:`TermInterner` traffic
      while installed: new ids allocated vs values already interned;
    * ``id_joins`` — indexed id-space probes issued by the flat join core
      (:func:`repro.datalog.runtime.run_flat`), i.e. joins that never
      touched a boxed value;
    * ``value_materializations`` — id rows (or whole relations' worth of
      rows, counted per row) converted back to boxed value tuples at an
      output boundary: ``Relation.tuples`` / ``lookup`` reads, stratum
      results, remote-emit hand-off;
    * ``literal_scans`` / ``full_scans`` — positive-literal matches issued
      by the join core, and how many of those had no bound column and had
      to scan the whole relation;
    * ``plans_built`` / ``plan_cache_hits`` — join plans compiled vs
      served from a rule's band-keyed plan cache;
    * ``reorder_wins`` — built plans where the cardinality cost model
      chose a different positive-literal order than the boundness-greedy
      baseline would have;
    * ``column_stats_built`` — per-column distinct-count computations that
      had to scan (:meth:`Relation.distinct_count` cache misses without a
      usable single-column index);
    * ``remote_emissions`` — derived facts diverted to a remote owner by a
      cluster delta-exchange hook instead of being asserted locally;
    * ``plans_evicted`` — cached plans dropped, either because a body
      relation's cardinality band fell (deletion-heavy maintenance would
      otherwise fill the plan cache with stale large-band entries) or by
      a cache's FIFO bound (:func:`repro.datalog.runtime.cache_plan_bounded`);
    * ``sent_dedup_evictions`` — cluster-node ``_sent`` dedup markers
      cleared by the generation-tagged reset at quiescence (bounding a
      long-running node's memory by one run's traffic);
    * ``magic_programs_built`` / ``magic_cache_hits`` — magic-sets
      rewrites normalized into engine rules vs served from
      :mod:`repro.datalog.magic`'s program cache (a cache hit reuses the
      rewrite's :class:`EngineRule` objects, so their band-keyed join
      plans survive across point queries instead of being rebuilt);
    * ``dred_strata`` / ``strata_recomputed`` — deletion-propagation
      strata maintained by DRed over-delete/re-derive vs recomputed from
      their EDB (non-monotone strata take the recompute path).  The
      online serving tests pin these: a served update must maintain
      incrementally, never trigger a from-scratch recompute;
    * ``full_recomputes`` — whole-workspace resets (rule deactivation is
      the only legitimate trigger; pinned to zero under serve traffic).
    """

    MAX_STRATA: ClassVar[int] = 256

    rounds: int = 0
    derivations: int = 0
    new_facts: int = 0
    index_builds: int = 0
    index_hits: int = 0
    terms_interned: int = 0
    intern_hits: int = 0
    id_joins: int = 0
    value_materializations: int = 0
    literal_scans: int = 0
    full_scans: int = 0
    plans_built: int = 0
    plan_cache_hits: int = 0
    reorder_wins: int = 0
    column_stats_built: int = 0
    remote_emissions: int = 0
    plans_evicted: int = 0
    sent_dedup_evictions: int = 0
    magic_programs_built: int = 0
    magic_cache_hits: int = 0
    dred_strata: int = 0
    strata_recomputed: int = 0
    full_recomputes: int = 0
    rule_firings: dict = field(default_factory=dict)
    strata: list = field(default_factory=list)

    def fire(self, key: str, count: int = 1) -> None:
        self.rule_firings[key] = self.rule_firings.get(key, 0) + count

    def record_stratum(self, record: StratumStats) -> None:
        self.strata.append(record)
        if len(self.strata) > self.MAX_STRATA:
            del self.strata[: len(self.strata) - self.MAX_STRATA]

    @contextmanager
    def capture_indexes(self) -> Iterator["EvalStats"]:
        """Route :meth:`Relation.lookup` counters here while the block runs."""
        previous = set_index_stats(self)
        try:
            yield self
        finally:
            set_index_stats(previous)

    def copy(self) -> "EvalStats":
        """A snapshot of the counters (used to diff around a region)."""
        snapshot = EvalStats(
            rounds=self.rounds, derivations=self.derivations,
            new_facts=self.new_facts, index_builds=self.index_builds,
            index_hits=self.index_hits,
            terms_interned=self.terms_interned,
            intern_hits=self.intern_hits,
            id_joins=self.id_joins,
            value_materializations=self.value_materializations,
            literal_scans=self.literal_scans,
            full_scans=self.full_scans, plans_built=self.plans_built,
            plan_cache_hits=self.plan_cache_hits,
            reorder_wins=self.reorder_wins,
            column_stats_built=self.column_stats_built,
            remote_emissions=self.remote_emissions,
            plans_evicted=self.plans_evicted,
            sent_dedup_evictions=self.sent_dedup_evictions,
            magic_programs_built=self.magic_programs_built,
            magic_cache_hits=self.magic_cache_hits,
            dred_strata=self.dred_strata,
            strata_recomputed=self.strata_recomputed,
            full_recomputes=self.full_recomputes,
            rule_firings=dict(self.rule_firings),
            strata=list(self.strata))
        return snapshot

    def diff(self, before: "EvalStats") -> "EvalStats":
        """The work done since ``before`` (a prior :meth:`copy` of this).

        Lets a benchmark attribute a long-lived accumulator's counters
        (e.g. ``Workspace.stats``) to just its measured region.  The
        ``strata`` tail assumes append-only growth, which holds until
        ``MAX_STRATA`` trimming kicks in.
        """
        delta = EvalStats(
            rounds=self.rounds - before.rounds,
            derivations=self.derivations - before.derivations,
            new_facts=self.new_facts - before.new_facts,
            index_builds=self.index_builds - before.index_builds,
            index_hits=self.index_hits - before.index_hits,
            terms_interned=self.terms_interned - before.terms_interned,
            intern_hits=self.intern_hits - before.intern_hits,
            id_joins=self.id_joins - before.id_joins,
            value_materializations=self.value_materializations
            - before.value_materializations,
            literal_scans=self.literal_scans - before.literal_scans,
            full_scans=self.full_scans - before.full_scans,
            plans_built=self.plans_built - before.plans_built,
            plan_cache_hits=self.plan_cache_hits - before.plan_cache_hits,
            reorder_wins=self.reorder_wins - before.reorder_wins,
            column_stats_built=self.column_stats_built
            - before.column_stats_built,
            remote_emissions=self.remote_emissions - before.remote_emissions,
            plans_evicted=self.plans_evicted - before.plans_evicted,
            sent_dedup_evictions=self.sent_dedup_evictions
            - before.sent_dedup_evictions,
            magic_programs_built=self.magic_programs_built
            - before.magic_programs_built,
            magic_cache_hits=self.magic_cache_hits
            - before.magic_cache_hits,
            dred_strata=self.dred_strata - before.dred_strata,
            strata_recomputed=self.strata_recomputed
            - before.strata_recomputed,
            full_recomputes=self.full_recomputes - before.full_recomputes)
        for key, count in self.rule_firings.items():
            fired = count - before.rule_firings.get(key, 0)
            if fired:
                delta.rule_firings[key] = fired
        delta.strata = self.strata[len(before.strata):]
        return delta

    def merge(self, other: "EvalStats") -> None:
        self.rounds += other.rounds
        self.derivations += other.derivations
        self.new_facts += other.new_facts
        self.index_builds += other.index_builds
        self.index_hits += other.index_hits
        self.terms_interned += other.terms_interned
        self.intern_hits += other.intern_hits
        self.id_joins += other.id_joins
        self.value_materializations += other.value_materializations
        self.literal_scans += other.literal_scans
        self.full_scans += other.full_scans
        self.plans_built += other.plans_built
        self.plan_cache_hits += other.plan_cache_hits
        self.reorder_wins += other.reorder_wins
        self.column_stats_built += other.column_stats_built
        self.remote_emissions += other.remote_emissions
        self.plans_evicted += other.plans_evicted
        self.sent_dedup_evictions += other.sent_dedup_evictions
        self.magic_programs_built += other.magic_programs_built
        self.magic_cache_hits += other.magic_cache_hits
        self.dred_strata += other.dred_strata
        self.strata_recomputed += other.strata_recomputed
        self.full_recomputes += other.full_recomputes
        for key, count in other.rule_firings.items():
            self.fire(key, count)
        for record in other.strata:
            self.record_stratum(record)

    def as_dict(self) -> dict:
        """A JSON-safe summary (recorded into benchmark artifacts)."""
        return {
            "rounds": self.rounds,
            "derivations": self.derivations,
            "new_facts": self.new_facts,
            "index_builds": self.index_builds,
            "index_hits": self.index_hits,
            "terms_interned": self.terms_interned,
            "intern_hits": self.intern_hits,
            "id_joins": self.id_joins,
            "value_materializations": self.value_materializations,
            "literal_scans": self.literal_scans,
            "full_scans": self.full_scans,
            "plans_built": self.plans_built,
            "plan_cache_hits": self.plan_cache_hits,
            "reorder_wins": self.reorder_wins,
            "column_stats_built": self.column_stats_built,
            "remote_emissions": self.remote_emissions,
            "plans_evicted": self.plans_evicted,
            "sent_dedup_evictions": self.sent_dedup_evictions,
            "magic_programs_built": self.magic_programs_built,
            "magic_cache_hits": self.magic_cache_hits,
            "dred_strata": self.dred_strata,
            "strata_recomputed": self.strata_recomputed,
            "full_recomputes": self.full_recomputes,
            "rule_firings": dict(sorted(self.rule_firings.items())),
            "strata": [record.as_dict() for record in self.strata],
        }


# ---------------------------------------------------------------------------
# Rule application
# ---------------------------------------------------------------------------

def apply_rule(rule: EngineRule, db: Database, context: EvalContext,
               delta: Optional[FactSet] = None,
               delta_position: Optional[int] = None,
               provenance: Optional[ProvenanceStore] = None,
               stats: Optional[EvalStats] = None,
               as_rows: bool = False) -> set:
    """All head tuples derivable by one rule (optionally delta-restricted).

    Returns tuples *not yet present* in the database — value tuples by
    default, interned id rows over ``db.interner`` with ``as_rows=True``
    (the stratum loop's currency, skipping the materialize/re-intern
    round-trip on the hot path).  Does not mutate the database — callers
    merge the result so rounds stay well-defined.  ``delta`` values may
    be fact sets or prebuilt :class:`Relation` objects (the stratum loop
    passes COW-wrapped relations so they are built once per round, not
    once per rule application); wrapped delta relations share
    ``db.interner`` so the flat path can probe them in id space.
    """
    interner = db.interner
    head_relation = db.rel(rule.head.pred)
    delta_relations: Optional[dict[str, Relation]] = None
    if delta is not None:
        if all(isinstance(facts, Relation) for facts in delta.values()):
            delta_relations = delta
        else:
            delta_relations = {
                pred: (facts if isinstance(facts, Relation)
                       else Relation.wrap(pred, facts, interner))
                for pred, facts in delta.items()
            }
    plan = rule.plan(context, delta_position, db=db, stats=stats)
    fired = 0
    head_ctor = rule.head_ctor()
    if head_ctor is not None and provenance is None:
        flat = plan.flat()
        spec = _flat_head_spec(rule, flat) if flat is not None else None
        if spec is not None:
            produced_rows: set = set()
            fired = _apply_rule_flat(flat, spec, db, context, delta_relations,
                                     delta_position, head_relation,
                                     produced_rows)
            if stats is not None and fired:
                stats.derivations += fired
                stats.fire(rule.label or rule.head.pred, fired)
            if as_rows:
                return produced_rows
            materialize = interner.materialize_row
            return {materialize(row) for row in produced_rows}
        produced: set = set()
        for bindings in solve(rule.body, db, context, plan=plan,
                              delta=delta_relations,
                              delta_position=delta_position):
            fact = head_ctor(bindings)
            fired += 1
            if fact in head_relation or fact in produced:
                continue
            produced.add(fact)
    else:
        produced = set()
        solutions = solve(rule.body, db, context, plan=plan,
                          delta=delta_relations, delta_position=delta_position)
        for bindings in solutions:
            fact = instantiate_head(rule.head, bindings, context)
            fired += 1
            if fact in head_relation or fact in produced:
                if provenance is not None:
                    _record_provenance(provenance, rule, fact, bindings, context)
                continue
            produced.add(fact)
            if provenance is not None:
                _record_provenance(provenance, rule, fact, bindings, context)
    if stats is not None and fired:
        stats.derivations += fired
        stats.fire(rule.label or rule.head.pred, fired)
    if as_rows:
        intern_row = interner.intern_row
        return {intern_row(fact) for fact in produced}
    return produced


def _flat_head_spec(rule: EngineRule, flat) -> Optional[tuple]:
    """Head template in register terms: ``(is_slot, slot_or_const)`` pairs.

    None when some head variable has no register (not bound by the body's
    positive literals) — the generic path then reports the safety error.
    """
    spec = flat.head_spec
    if spec is None:
        slot_of = flat.slot_of
        entries: Optional[list] = []
        for term in rule.head.all_args:
            if isinstance(term, Variable):
                slot = slot_of.get(term.name)
                if slot is None:
                    entries = None
                    break
                entries.append((True, slot))
            else:  # head_ctor() ensured only Variable/Constant occur
                entries.append((False, term.value))
        spec = flat.head_spec = (
            tuple(entries) if entries is not None else False)
    return spec if spec is not False else None


def _apply_rule_flat(flat, spec: tuple, db: Database, context: EvalContext,
                     delta_relations, delta_position,
                     head_relation: Relation, produced: set) -> int:
    """Register-based rule application entirely in id space.

    ``produced`` collects id rows over ``db.interner``; head constants
    are interned per call (never baked into the cached plan — plans are
    shared across databases with different interners).  Emission and
    against-the-head dedup happen inside :func:`run_flat` itself.
    Returns the number of firings.
    """
    intern = db.interner.intern
    id_spec = tuple(
        (is_slot, payload if is_slot else intern(payload))
        for is_slot, payload in spec)
    return run_flat(flat, db, context, delta_relations, delta_position,
                    id_spec, head_relation.rows, produced)


def _record_provenance(provenance: ProvenanceStore, rule: EngineRule,
                       fact: tuple, bindings: Bindings,
                       context: EvalContext) -> None:
    supports = []
    for item in rule.body:
        if isinstance(item, Literal) and not item.negated:
            body_fact = instantiate_head(item.atom, bindings, context)
            supports.append((item.atom.pred, body_fact))
    provenance.record(rule.head.pred, fact, rule.label or "rule",
                      tuple(supports))


def apply_aggregate_rule(rule: EngineRule, db: Database, context: EvalContext,
                         stats: Optional[EvalStats] = None) -> set:
    """Evaluate one aggregate rule over the (complete) lower strata.

    Grouping keys are the head variables other than the aggregate result;
    solutions are deduplicated on the full variable assignment before the
    aggregate function is applied (set semantics, matching LogicBlox's
    ``agg<<>>`` over distinct derivations).
    """
    agg = rule.agg
    if agg is None:  # pragma: no cover - guarded by callers
        raise SafetyError("apply_aggregate_rule on a non-aggregate rule")
    groups: dict[tuple, list] = {}
    seen_signatures: set = set()
    from .runtime import eval_term  # local import to avoid cycle at module load

    head_vars = [
        term for term in rule.head.all_args
    ]
    fired = 0
    for bindings in solve(rule.body, db, context,
                          plan=rule.plan(context, None, db=db, stats=stats)):
        signature = tuple(sorted(bindings.items(),
                                 key=lambda pair: pair[0]))
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        over_value = eval_term(agg.over, bindings, context)
        group_key = tuple(
            eval_term(term, bindings, context)
            for term in head_vars
            if not (isinstance(term, Variable) and term.name == agg.result.name)
        )
        groups.setdefault(group_key, []).append(over_value)
        fired += 1
    if stats is not None and fired:
        stats.derivations += fired
        stats.fire(rule.label or rule.head.pred, fired)

    produced: set = set()
    head_relation = db.rel(rule.head.pred)
    for group_key, values in groups.items():
        result = _aggregate(agg.func, values)
        if result is None:
            continue
        key_iter = iter(group_key)
        fact = []
        for term in head_vars:
            if isinstance(term, Variable) and term.name == agg.result.name:
                fact.append(result)
            else:
                fact.append(next(key_iter))
        fact_tuple = tuple(fact)
        if fact_tuple not in head_relation:
            produced.add(fact_tuple)
    return produced


def _aggregate(func: str, values: list):
    if func == "count":
        return len(values)
    if not values:
        return None
    if func == "total":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    raise SafetyError(f"unknown aggregate {func!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Stratum evaluation
# ---------------------------------------------------------------------------

def eval_stratum(stratum: Stratum, db: Database, context: EvalContext,
                 provenance: Optional[ProvenanceStore] = None,
                 changed: Optional[FactSet] = None,
                 stats: Optional[EvalStats] = None) -> FactSet:
    """Run one stratum to fixpoint; return the facts it added.

    ``changed`` restricts the initial pass to delta positions (incremental
    mode); when None the initial pass applies every rule in full.
    """
    stats = stats if stats is not None else EvalStats()
    record = StratumStats(number=stratum.number)
    started = perf_counter()
    interner = db.interner
    intern_row = interner.intern_row
    #: pred -> set of id rows; the stratum loop's internal currency —
    #: derivation, dedup, merge and delta exchange all stay in id space,
    #: and values are materialized once at the return boundary.
    added_rows: dict[str, set] = {}
    remote_emit = context.remote_emit
    remote_emit_rows = context.remote_emit_rows

    def merge(new_rows: set, pred: str, delta_pool: dict) -> None:
        if not new_rows:
            return
        if remote_emit_rows is not None:
            # Id-space delta exchange: the hook decides ownership on id
            # rows directly and materializes only the facts it ships to
            # a remote owner, so locally-kept derivations never leave id
            # space.
            kept_rows = remote_emit_rows(pred, new_rows)
            stats.remote_emissions += len(new_rows) - len(kept_rows)
            if not kept_rows:
                return
            new_rows = kept_rows
        elif remote_emit is not None:
            # Distributed evaluation: facts owned by another node are
            # diverted to its outbox instead of asserted here; only the
            # locally-owned remainder joins this node's delta frontier.
            # The hook speaks values (facts cross process boundaries), so
            # this is a materialization boundary.
            materialize = interner.materialize_row
            new_facts = {materialize(row) for row in new_rows}
            kept = remote_emit(pred, new_facts)
            stats.remote_emissions += len(new_facts) - len(kept)
            if not kept:
                return
            if len(kept) != len(new_facts):
                new_rows = {intern_row(fact) for fact in kept}
        fresh = db.rel(pred).add_rows(new_rows)
        if fresh:
            added_rows.setdefault(pred, set()).update(fresh)
            # The delta pool takes ownership of ``fresh`` (a set
            # ``add_rows`` built for us) instead of copying it — the
            # common case is one rule per head predicate per round.
            pooled = delta_pool.get(pred)
            if pooled is None:
                delta_pool[pred] = fresh
            else:
                pooled.update(fresh)
            stats.new_facts += len(fresh)

    with stats.capture_indexes():
        # 1. Aggregate rules: bodies live strictly below this stratum.
        delta: dict[str, set] = {}
        for rule in stratum.agg_rules:
            agg_facts = apply_aggregate_rule(rule, db, context, stats)
            merge({intern_row(fact) for fact in agg_facts},
                  rule.head.pred, delta)

        # 2. Initial pass.
        if changed is None:
            for rule in stratum.rules:
                merge(apply_rule(rule, db, context, provenance=provenance,
                                 stats=stats, as_rows=True),
                      rule.head.pred, delta)
        else:
            for pred, facts in changed.items():
                delta.setdefault(pred, set()).update(
                    intern_row(fact) for fact in facts)
            record.rounds += 1
            record.delta_sizes.append(
                sum(len(rows) for rows in delta.values()))
            delta_rels = {pred: Relation.wrap_rows(pred, rows, interner)
                          for pred, rows in delta.items()}
            next_delta: dict[str, set] = {}
            for rule in stratum.rules:
                for position in rule.positive_positions():
                    literal = rule.body[position]
                    if literal.atom.pred in delta:
                        merge(apply_rule(rule, db, context, delta_rels,
                                         position, provenance, stats,
                                         as_rows=True),
                              rule.head.pred, next_delta)
            delta = next_delta

        # 3. Semi-naive rounds.
        while delta:
            stats.rounds += 1
            record.rounds += 1
            record.delta_sizes.append(
                sum(len(rows) for rows in delta.values()))
            delta_rels = {pred: Relation.wrap_rows(pred, rows, interner)
                          for pred, rows in delta.items()}
            next_delta = {}
            for rule in stratum.rules:
                for position in rule.positive_positions():
                    literal = rule.body[position]
                    if literal.atom.pred in delta:
                        merge(apply_rule(rule, db, context, delta_rels,
                                         position, provenance, stats,
                                         as_rows=True),
                              rule.head.pred, next_delta)
            delta = next_delta

        # Output boundary: the stratum's result is a value-space FactSet.
        # Materialization is inlined with the counter batched, not paid
        # per row; binary facts (the overwhelmingly common arity) take a
        # tuple-unpacking comprehension — no inner list, no tuple() call.
        term_values = interner.values
        added: FactSet = {}
        for pred, rows in added_rows.items():
            try:
                added[pred] = {
                    (term_values[a], term_values[b]) for a, b in rows}
            except ValueError:      # mixed or non-binary arity
                added[pred] = {
                    tuple([term_values[i] for i in row]) for row in rows}
            stats.value_materializations += len(rows)

    record.elapsed = perf_counter() - started
    record.new_facts = sum(len(facts) for facts in added.values())
    stats.record_stratum(record)
    return added


# ---------------------------------------------------------------------------
# Full evaluation
# ---------------------------------------------------------------------------

def evaluate(rules: Iterable[Rule], db: Database,
             context: Optional[EvalContext] = None,
             provenance: Optional[ProvenanceStore] = None,
             stats: Optional[EvalStats] = None) -> FactSet:
    """Run a whole program to fixpoint; return every fact added."""
    context = context or EvalContext()
    rule_list = list(rules)
    if all(isinstance(r, EngineRule) for r in rule_list):
        engine_rules = rule_list
    else:
        engine_rules = normalize_rules(rule_list)
    strata = stratify(engine_rules)
    added: FactSet = {}
    for stratum in strata:
        stratum_added = eval_stratum(stratum, db, context, provenance,
                                     changed=None, stats=stats)
        for pred, facts in stratum_added.items():
            added.setdefault(pred, set()).update(facts)
    return added


# ---------------------------------------------------------------------------
# Incremental insertion
# ---------------------------------------------------------------------------

def propagate_insertions(strata: list, db: Database, context: EvalContext,
                         inserted: FactSet,
                         edb_facts: Optional[Callable[[str], set]] = None,
                         provenance: Optional[ProvenanceStore] = None,
                         stats: Optional[EvalStats] = None) -> FactSet:
    """Incrementally maintain the database after EDB insertions.

    ``inserted`` are facts already added to ``db``.  Monotone strata are
    maintained with semi-naive deltas; strata containing negation or
    aggregation whose inputs changed are recomputed from their EDB
    (``edb_facts`` supplies the asserted facts of a predicate).
    """
    changed: FactSet = {pred: set(facts) for pred, facts in inserted.items()}
    total_added: FactSet = {}
    for stratum in strata:
        relevant = stratum.reads | stratum.preds
        if not (relevant & changed.keys()):
            continue
        if stratum.nonmonotone:
            added, removed = recompute_stratum(stratum, db, context, edb_facts,
                                               provenance, stats)
            for pred, facts in added.items():
                changed.setdefault(pred, set()).update(facts)
                total_added.setdefault(pred, set()).update(facts)
            # Removals from a recomputed stratum propagate as deletions.
            if removed:
                _propagate_removals_upward(strata, stratum, db, context,
                                           removed, edb_facts, provenance,
                                           stats, changed, total_added)
        else:
            added = eval_stratum(stratum, db, context, provenance,
                                 changed=changed, stats=stats)
            for pred, facts in added.items():
                changed.setdefault(pred, set()).update(facts)
                total_added.setdefault(pred, set()).update(facts)
    return total_added


def recompute_stratum(stratum: Stratum, db: Database, context: EvalContext,
                      edb_facts: Optional[Callable[[str], set]],
                      provenance: Optional[ProvenanceStore] = None,
                      stats: Optional[EvalStats] = None) -> tuple:
    """Reset a stratum's predicates to their EDB and re-derive.

    Returns ``(added, removed)`` fact-sets relative to the prior state.
    """
    if edb_facts is None:
        raise SafetyError(
            "nonmonotone stratum changed but no EDB accessor was provided; "
            "use a full re-evaluation instead"
        )
    old: dict[str, set] = {}
    for pred in stratum.preds:
        relation = db.rel(pred)
        old[pred] = set(relation.tuples)
        base = edb_facts(pred) or set()
        for fact in old[pred] - base:
            relation.discard(fact)
            if provenance is not None:
                provenance.forget(pred, fact)
    eval_stratum(stratum, db, context, provenance, changed=None, stats=stats)
    added: FactSet = {}
    removed: FactSet = {}
    for pred in stratum.preds:
        new_facts = db.tuples(pred)
        grew = new_facts - old[pred]
        shrank = old[pred] - new_facts
        if grew:
            added[pred] = grew
        if shrank:
            removed[pred] = shrank
    return added, removed


def _propagate_removals_upward(strata, from_stratum, db, context, removed,
                               edb_facts, provenance, stats, changed,
                               total_added) -> None:
    """Feed deletions produced by a recomputed stratum into higher strata."""
    from .incremental import propagate_deletions_from  # late import (cycle)
    higher = [s for s in strata if s.number > from_stratum.number]
    propagate_deletions_from(higher, db, context, removed, edb_facts,
                             provenance, stats)
