"""Exception hierarchy for the Datalog substrate and the LBTrust layers.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch one base class.  The evaluation-facing errors carry
structured payloads (the offending rule, bindings, …) because trust
management treats constraint violations as *data*: a rejected import is an
auditable event, not just a stack trace.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """A syntax error in a Datalog / LBTrust source text.

    Carries the source position so front-ends can point at the offending
    token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class SafetyError(ReproError):
    """A rule violates Datalog safety (unbound head/negated variables)."""


class StratificationError(ReproError):
    """The program has negation or aggregation inside a recursive cycle."""


class IndexIntegrityError(ReproError):
    """A relation's hash index disagrees with its tuple set.

    Raised by :meth:`repro.datalog.database.Relation.discard` when index
    maintenance is found to have diverged — always a bug in the engine,
    never a user error, so it surfaces loudly instead of being swallowed
    (a silently stale index returns *wrong join results*, which in a trust
    engine means wrong authorization decisions)."""


class TypeError_(ReproError):
    """A static or dynamic type-declaration constraint failed."""


class BuiltinError(ReproError):
    """A builtin predicate was called with an unsupported binding pattern."""


class ConstraintViolation(ReproError):
    """A schema constraint or meta-constraint derived ``fail()``.

    Attributes:
        constraint: the source-level constraint (or fail-rule) that fired.
        bindings: one witness assignment of values that violated it.
    """

    def __init__(self, constraint: Any, bindings: dict[str, Any] | None = None,
                 message: str | None = None) -> None:
        self.constraint = constraint
        self.bindings = dict(bindings or {})
        if message is None:
            message = f"constraint violated: {constraint}"
            if self.bindings:
                rendered = ", ".join(
                    f"{name}={value!r}" for name, value in sorted(self.bindings.items())
                )
                message = f"{message} [{rendered}]"
        super().__init__(message)


class ActivationLimitError(ReproError):
    """Meta-programmed code generation did not quiesce within the cap."""


class CryptoError(ReproError):
    """Signature/MAC verification failed or key material is missing."""


class WorkspaceError(ReproError):
    """Misuse of the workspace API (unknown predicate, arity clash, …)."""


class NetworkError(ReproError):
    """Simulated-network misuse (unknown node, undeliverable message)."""


class ClusterError(ReproError):
    """Misuse of the sharded evaluation runtime (unknown node, placement
    conflict, or a program shape distributed evaluation cannot run)."""


class ServeError(ReproError):
    """Online-serving failure: a request the server rejected, a reply
    that never arrived, or a protocol violation on the serve plane."""
