"""Exception hierarchy for the Datalog substrate and the LBTrust layers.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch one base class.  The evaluation-facing errors carry
structured payloads (the offending rule, bindings, …) because trust
management treats constraint violations as *data*: a rejected import is an
auditable event, not just a stack trace.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """A syntax error in a Datalog / LBTrust source text.

    Carries the source position so front-ends can point at the offending
    token, and — when the parsing entry point knows the full source text —
    the offending source line itself, rendered with a caret marker::

        expected '.', '<-' or '->' after formula (at line 2, column 14)
          p(X) <- q(X) r(X).
                       ^
    """

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 source_line: str | None = None) -> None:
        self.base_message = message
        self.line = line
        self.column = column
        self.source_line = source_line
        if line:
            message = f"{message} (at line {line}, column {column})"
        if source_line is not None and line:
            caret = " " * max(self.column - 1, 0) + "^"
            message = f"{message}\n  {source_line}\n  {caret}"
        super().__init__(message)

    def with_source(self, source: str) -> "ParseError":
        """Return a copy enriched with the offending source line (no-op if
        the position is unknown or an excerpt is already attached)."""
        if not self.line or self.source_line is not None:
            return self
        lines = source.splitlines()
        if not 1 <= self.line <= len(lines):
            return self
        return ParseError(self.base_message, self.line, self.column,
                          lines[self.line - 1])


class SafetyError(ReproError):
    """A rule violates Datalog safety (unbound head/negated variables)."""


class StratificationError(ReproError):
    """The program has negation or aggregation inside a recursive cycle."""


class IndexIntegrityError(ReproError):
    """A relation's hash index disagrees with its tuple set.

    Raised by :meth:`repro.datalog.database.Relation.discard` when index
    maintenance is found to have diverged — always a bug in the engine,
    never a user error, so it surfaces loudly instead of being swallowed
    (a silently stale index returns *wrong join results*, which in a trust
    engine means wrong authorization decisions)."""


class TypeError_(ReproError):
    """A static or dynamic type-declaration constraint failed."""


class BuiltinError(ReproError):
    """A builtin predicate was called with an unsupported binding pattern."""


class ConstraintViolation(ReproError):
    """A schema constraint or meta-constraint derived ``fail()``.

    Attributes:
        constraint: the source-level constraint (or fail-rule) that fired.
        bindings: one witness assignment of values that violated it.
    """

    def __init__(self, constraint: Any, bindings: dict[str, Any] | None = None,
                 message: str | None = None) -> None:
        self.constraint = constraint
        self.bindings = dict(bindings or {})
        if message is None:
            message = f"constraint violated: {constraint}"
            if self.bindings:
                rendered = ", ".join(
                    f"{name}={value!r}" for name, value in sorted(self.bindings.items())
                )
                message = f"{message} [{rendered}]"
        super().__init__(message)


class ActivationLimitError(ReproError):
    """Meta-programmed code generation did not quiesce within the cap."""


class CryptoError(ReproError):
    """Signature/MAC verification failed or key material is missing."""


class WorkspaceError(ReproError):
    """Misuse of the workspace API (unknown predicate, arity clash, …)."""


class NetworkError(ReproError):
    """Simulated-network misuse (unknown node, undeliverable message)."""


class ClusterError(ReproError):
    """Misuse of the sharded evaluation runtime (unknown node, placement
    conflict, or a program shape distributed evaluation cannot run)."""


class ServeError(ReproError):
    """Online-serving failure: a request the server rejected, a reply
    that never arrived, or a protocol violation on the serve plane."""
