"""Incremental deletion: DRed (delete-and-rederive) over stratified programs.

When facts are retracted from a workspace, the paper's "active rules are
incrementally recomputed" behaviour needs non-monotone maintenance.  We use
the classic DRed recipe, stratum by stratum:

1. **Over-delete**: starting from the retracted facts, propagate deletions
   through every rule (a head fact is over-deleted whenever one of its
   positive supports is), joining against the *pre-deletion* state.
2. **Re-derive**: re-add EDB-asserted survivors and run the stratum forward
   again; any over-deleted fact with an alternative derivation comes back.

Strata containing negation or aggregation are recomputed from their EDB
instead (always correct, and cheap at trust-policy scale); the net
add/remove diff keeps propagating upward.  Tests check both paths against
from-scratch recomputation, including hypothesis properties over random
fact streams.
"""

from __future__ import annotations

from typing import Callable, Optional

from .database import Database, Relation
from .engine import (
    EvalStats,
    FactSet,
    ProvenanceStore,
    eval_stratum,
    recompute_stratum,
)
from .runtime import EvalContext, instantiate_head, solve
from .stratify import Stratum
from .terms import Literal


def propagate_deletions(strata: list, db: Database, context: EvalContext,
                        deleted: FactSet,
                        edb_facts: Optional[Callable[[str], set]] = None,
                        provenance: Optional[ProvenanceStore] = None,
                        stats: Optional[EvalStats] = None) -> FactSet:
    """Maintain ``db`` after the EDB facts in ``deleted`` were retracted.

    The caller must already have removed the ``deleted`` facts from ``db``
    (the workspace retracts EDB first).  Returns the net set of facts that
    disappeared, per predicate.
    """
    return propagate_deletions_from(strata, db, context, deleted, edb_facts,
                                    provenance, stats)


def propagate_deletions_from(strata: list, db: Database, context: EvalContext,
                             deleted: FactSet,
                             edb_facts: Optional[Callable[[str], set]],
                             provenance: Optional[ProvenanceStore] = None,
                             stats: Optional[EvalStats] = None) -> FactSet:
    net_removed: FactSet = {pred: set(facts) for pred, facts in deleted.items()}
    pending_removed: FactSet = {pred: set(facts) for pred, facts in deleted.items()}
    pending_added: FactSet = {}

    for stratum in strata:
        reads = stratum.reads | stratum.preds
        if not (reads & (pending_removed.keys() | pending_added.keys())):
            continue
        if stratum.nonmonotone:
            added, removed = recompute_stratum(stratum, db, context, edb_facts,
                                               provenance, stats)
            if stats is not None:
                stats.strata_recomputed += 1
        else:
            added, removed = _dred_stratum(stratum, db, context,
                                           pending_removed, edb_facts,
                                           provenance, stats)
            if stats is not None:
                stats.dred_strata += 1
        for pred, facts in removed.items():
            pending_removed.setdefault(pred, set()).update(facts)
            net_removed.setdefault(pred, set()).update(facts)
        for pred, facts in added.items():
            pending_added.setdefault(pred, set()).update(facts)
            if pred in net_removed:
                net_removed[pred] -= facts

    net = {pred: facts for pred, facts in net_removed.items() if facts}
    if net:
        _invalidate_shrunk_plans(strata, db, net.keys(), stats)
    return net


def _invalidate_shrunk_plans(strata: list, db: Database, shrunk,
                             stats: Optional[EvalStats]) -> None:
    """Plan-invalidation hook for deletion-heavy workloads.

    Every rule reading a predicate that just lost facts drops cached
    plans keyed to cardinality bands the relation has fallen out of —
    those keys can never be served again, but they would squat in the
    FIFO plan cache evicting still-live entries.
    """
    shrunk = set(shrunk)
    evicted = 0
    for stratum in strata:
        for rule in list(stratum.rules) + list(stratum.agg_rules):
            evicted += rule.evict_shrunk_plans(db, shrunk)
    if stats is not None and evicted:
        stats.plans_evicted += evicted


def _dred_stratum(stratum: Stratum, db: Database, context: EvalContext,
                  deleted_below: FactSet,
                  edb_facts: Optional[Callable[[str], set]],
                  provenance: Optional[ProvenanceStore],
                  stats: Optional[EvalStats]) -> tuple:
    """DRed one positive stratum.  Returns ``(added, removed)`` for it."""
    # -- Phase 0: a COW shadow restoring the deleted facts, so that
    # over-deletion joins see the pre-deletion state.  Only relations that
    # actually had deletions are unshared (by the first ``add``); every
    # other relation is read through the shared O(1) view.
    shadow = db.snapshot()
    for pred, facts in deleted_below.items():
        restored = shadow.rel(pred)
        for fact in facts:
            restored.add(fact)

    # -- Phase 1: over-delete.
    overdeleted: FactSet = {}
    frontier: FactSet = {
        pred: set(facts) for pred, facts in deleted_below.items()
    }
    while frontier:
        next_frontier: FactSet = {}
        delta_rels = {pred: Relation.wrap(pred, facts, shadow.interner)
                      for pred, facts in frontier.items()}
        for rule in stratum.rules:
            for position, item in enumerate(rule.body):
                if not isinstance(item, Literal) or item.negated:
                    continue
                if item.atom.pred not in frontier:
                    continue
                plan = rule.plan(context, position, db=shadow, stats=stats)
                for bindings in solve(rule.body, shadow, context, plan=plan,
                                      delta=delta_rels, delta_position=position):
                    fact = instantiate_head(rule.head, bindings, context)
                    pred = rule.head.pred
                    if fact in overdeleted.get(pred, set()):
                        continue
                    if fact not in shadow.rel(pred):
                        continue  # was never derived
                    overdeleted.setdefault(pred, set()).add(fact)
                    next_frontier.setdefault(pred, set()).add(fact)
                    if stats is not None:
                        stats.derivations += 1
        frontier = next_frontier

    # -- Phase 2: physically remove over-deleted facts.
    for pred, facts in overdeleted.items():
        relation = db.rel(pred)
        for fact in facts:
            relation.discard(fact)
            if provenance is not None:
                provenance.forget(pred, fact)

    # -- Phase 3: re-derive.  EDB-asserted facts of this stratum come back
    # first; then the stratum runs forward to fixpoint, restoring every
    # over-deleted fact that still has a derivation.
    for pred in stratum.preds:
        base = edb_facts(pred) if edb_facts is not None else None
        if not base:
            continue
        relation = db.rel(pred)
        for fact in overdeleted.get(pred, set()):
            if fact in base and relation.add(fact) and provenance is not None:
                provenance.record_edb(pred, fact)
    before = {pred: set(db.tuples(pred)) for pred in stratum.preds}
    eval_stratum(stratum, db, context, provenance, changed=None, stats=stats)

    added: FactSet = {}
    removed: FactSet = {}
    for pred in stratum.preds:
        now = db.tuples(pred)
        over = overdeleted.get(pred, set())
        gone = over - now
        grew = now - before[pred] - over
        if gone:
            removed[pred] = gone
        if grew:
            added[pred] = grew
    return added, removed
