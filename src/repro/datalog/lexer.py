"""Tokenizer for the LBTrust Datalog dialect (shared by all front-ends).

The token stream records, for every token, whether it was *glued* to the
previous token (no intervening whitespace).  Gluing disambiguates three
constructs the paper uses freely:

* qualified predicate names ``message:id`` (glued colons) versus statement
  labels ``m2: message:id(...)`` (colon followed by space),
* Kleene stars ``T*`` inside quoted patterns (glued ``*``) versus
  multiplication ``N * 2``,
* partitioned atoms ``export[me](...)`` (glued bracket) versus list
  indexing, which the dialect does not have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import ParseError

#: Multi-character punctuation, longest first (greedy matching).
_PUNCT = [
    "[|", "|]", "<<", ">>", "<-", "->", ":-", "<=", ">=", "!=",
    "(", ")", "[", "]", "{", "}", "<", ">", "=", "+", "-", "*", "/", "%",
    ",", ";", "!", ".", "@", ":",
]

#: Words with dedicated token kinds.  ``says`` and ``At`` stay IDENT: in the
#: core dialect ``says`` is an ordinary predicate; the Binder and SeNDlog
#: front-ends recognize them contextually.
_KEYWORDS = {"me", "true", "false", "agg"}


@dataclass(frozen=True)
class Token:
    kind: str          # IDENT VAR INT FLOAT STRING HEX PUNCT KEYWORD EOF
    text: str
    line: int
    column: int
    glued: bool        # True if no whitespace separates it from the previous token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.text!r}@{self.line}:{self.column}>"


def tokenize(source: str) -> list[Token]:
    """Convert source text to a token list, ending with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    col = 1
    length = len(source)
    glued = False

    def error(message: str) -> ParseError:
        return ParseError(message, line, col)

    while pos < length:
        ch = source[pos]

        # Whitespace ------------------------------------------------------
        if ch in " \t\r\n":
            if ch == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1
            glued = False
            continue

        # Comments ---------------------------------------------------------
        if source.startswith("//", pos) or ch == "%":
            while pos < length and source[pos] != "\n":
                pos += 1
            glued = False
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[pos:end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            pos = end + 2
            glued = False
            continue

        start_line, start_col = line, col

        # Strings -----------------------------------------------------------
        if ch == '"':
            pos += 1
            col += 1
            chars: list[str] = []
            while True:
                if pos >= length:
                    raise error("unterminated string literal")
                c = source[pos]
                if c == "\\":
                    if pos + 1 >= length:
                        raise error("dangling escape in string literal")
                    nxt = source[pos + 1]
                    escape_map = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                    if nxt not in escape_map:
                        raise error(f"unknown escape \\{nxt}")
                    chars.append(escape_map[nxt])
                    pos += 2
                    col += 2
                    continue
                if c == '"':
                    pos += 1
                    col += 1
                    break
                if c == "\n":
                    raise error("newline in string literal")
                chars.append(c)
                pos += 1
                col += 1
            tokens.append(Token("STRING", "".join(chars), start_line, start_col, glued))
            glued = True
            continue

        # Hex bytes ----------------------------------------------------------
        if source.startswith("0x", pos) and pos + 2 < length and source[pos + 2] in "0123456789abcdefABCDEF":
            end = pos + 2
            while end < length and source[end] in "0123456789abcdefABCDEF":
                end += 1
            text = source[pos:end]
            col += end - pos
            pos = end
            tokens.append(Token("HEX", text, start_line, start_col, glued))
            glued = True
            continue

        # Numbers -------------------------------------------------------------
        if ch.isdigit():
            end = pos
            seen_dot = False
            while end < length and (source[end].isdigit() or
                                    (source[end] == "." and not seen_dot
                                     and end + 1 < length and source[end + 1].isdigit())):
                if source[end] == ".":
                    seen_dot = True
                end += 1
            text = source[pos:end]
            kind = "FLOAT" if seen_dot else "INT"
            col += end - pos
            pos = end
            tokens.append(Token(kind, text, start_line, start_col, glued))
            glued = True
            continue

        # Rule references ($r<N>) ----------------------------------------------
        if ch == "$" and source.startswith("$r", pos) \
                and pos + 2 < length and source[pos + 2].isdigit():
            end = pos + 2
            while end < length and source[end].isdigit():
                end += 1
            text = source[pos:end]
            col += end - pos
            pos = end
            tokens.append(Token("REFID", text, start_line, start_col, glued))
            glued = True
            continue

        # Identifiers and variables --------------------------------------------
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (source[end].isalnum() or source[end] in "_'"):
                end += 1
            text = source[pos:end]
            col += end - pos
            pos = end
            if text in _KEYWORDS:
                kind = "KEYWORD"
            elif text[0].isupper() or text[0] == "_":
                kind = "VAR"
            else:
                kind = "IDENT"
            tokens.append(Token(kind, text, start_line, start_col, glued))
            glued = True
            continue

        # Punctuation ------------------------------------------------------------
        for punct in _PUNCT:
            if source.startswith(punct, pos):
                pos += len(punct)
                col += len(punct)
                tokens.append(Token("PUNCT", punct, start_line, start_col, glued))
                glued = True
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token("EOF", "", line, col, False))
    return tokens


def iter_statement_chunks(tokens: list[Token]) -> Iterator[list[Token]]:
    """Split a token list on top-level '.' terminators (quotes skipped)."""
    chunk: list[Token] = []
    depth = 0
    for token in tokens:
        if token.kind == "EOF":
            break
        if token.kind == "PUNCT" and token.text == "[|":
            depth += 1
        elif token.kind == "PUNCT" and token.text == "|]":
            depth -= 1
        chunk.append(token)
        if depth == 0 and token.kind == "PUNCT" and token.text == ".":
            yield chunk
            chunk = []
    if chunk:
        yield chunk
