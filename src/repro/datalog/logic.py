"""Boolean formula trees over body items, and DNF normalization.

The paper (section 2.1) allows arbitrary nesting of negation, conjunction
and disjunction in rule bodies and constraint sides, and prescribes the
standard translation: convert to Disjunctive Normal Form and split the rule
into one strict-Datalog rule per alternative.  This module implements that
translation.

Negation distributes by De Morgan; a negation reaching a relational atom
flips its ``negated`` flag, a negation reaching a comparison flips the
operator (``!(X < Y)`` becomes ``X >= Y``).  Negating a builtin call or an
aggregate is rejected — neither the paper nor LogicBlox gives those a
meaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from .errors import ParseError
from .terms import BuiltinCall, Comparison, Literal


@dataclass(frozen=True)
class And:
    parts: tuple

    def __repr__(self) -> str:
        return "(" + ", ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Or:
    parts: tuple

    def __repr__(self) -> str:
        return "(" + "; ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Not:
    part: "Formula"

    def __repr__(self) -> str:
        return f"!{self.part!r}"


Formula = Union[And, Or, Not, Literal, Comparison, BuiltinCall]

_NEGATED_COMPARISON = {
    "=": "!=", "!=": "=",
    "<": ">=", ">=": "<",
    ">": "<=", "<=": ">",
}


def conj(parts: Iterable[Formula]) -> Formula:
    """Build a conjunction, flattening nested ``And`` nodes."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(parts: Iterable[Formula]) -> Formula:
    """Build a disjunction, flattening nested ``Or`` nodes."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def push_negations(formula: Formula, negate: bool = False) -> Formula:
    """Drive negations down to the leaves (negation normal form)."""
    if isinstance(formula, And):
        parts = tuple(push_negations(p, negate) for p in formula.parts)
        return Or(parts) if negate else And(parts)
    if isinstance(formula, Or):
        parts = tuple(push_negations(p, negate) for p in formula.parts)
        return And(parts) if negate else Or(parts)
    if isinstance(formula, Not):
        return push_negations(formula.part, not negate)
    if not negate:
        return formula
    if isinstance(formula, Literal):
        return Literal(formula.atom, negated=not formula.negated,
                       span=formula.span)
    if isinstance(formula, Comparison):
        return Comparison(_NEGATED_COMPARISON[formula.op], formula.left,
                          formula.right, span=formula.span)
    raise ParseError(f"cannot negate {formula!r}")


def to_dnf(formula: Formula) -> tuple:
    """Normalize to DNF: a tuple of conjunctions (tuples of body items).

    The empty formula (used for declaration constraints) is represented by
    the caller, not here; this function requires a real formula.
    """
    formula = push_negations(formula)
    return _dnf(formula)


def _dnf(formula: Formula) -> tuple:
    if isinstance(formula, (Literal, Comparison, BuiltinCall)):
        return ((formula,),)
    if isinstance(formula, And):
        # Cartesian product of the alternatives of each conjunct.
        alternatives: tuple = ((),)
        for part in formula.parts:
            part_alts = _dnf(part)
            alternatives = tuple(
                existing + extra
                for existing in alternatives
                for extra in part_alts
            )
        return alternatives
    if isinstance(formula, Or):
        result: list[tuple] = []
        for part in formula.parts:
            result.extend(_dnf(part))
        return tuple(result)
    raise ParseError(f"unexpected formula node {formula!r}")  # pragma: no cover


def dnf_body(formula: Formula | None) -> tuple:
    """DNF for a rule body; ``None`` (a fact) yields one empty conjunction."""
    if formula is None:
        return ((),)
    return to_dnf(formula)
