"""The magic-sets rewrite (Bancilhon et al., the paper's reference [6]).

Paper section 7: *"traditional database optimizations such as magic-sets
can potentially bridge the top-down evaluation approach used in access
control, versus the typical bottom-up continuous evaluation of network
protocols."*  We build that bridge: given a query with some arguments
bound, the program is rewritten so the bottom-up engine only derives
facts relevant to the query.

Standard construction, left-to-right sideways information passing:

* every IDB predicate occurrence gets an *adornment* (``b``/``f`` per
  argument) describing which arguments are bound at that point;
* each adorned rule is guarded by a ``magic$p$ad`` literal over its bound
  head arguments;
* for each IDB body occurrence, a *magic rule* derives the callee's magic
  facts from the caller's magic guard plus the body prefix;
* the query's constants seed the initial magic fact.

Restrictions: positive rules without aggregates (negation would need
doubled/supplementary predicates); callers fall back to plain bottom-up.
``choose_strategy`` implements the section 7 "adaptive" heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .database import Database
from .engine import EngineRule, evaluate, normalize_rules
from .errors import SafetyError
from .runtime import EvalContext
from .terms import (
    Atom,
    BuiltinCall,
    Comparison,
    Constant,
    Literal,
    Rule,
    Term,
)


def _adorned_name(pred: str, adornment: str) -> str:
    return f"{pred}${adornment}"


def _magic_name(pred: str, adornment: str) -> str:
    return f"magic${pred}${adornment}"


def _query_adornment(query: Atom) -> tuple[str, tuple, tuple]:
    """``(adornment, bound values, query pattern)`` of one query atom.

    The single source of truth for what counts as a bound argument —
    shared by the rewrite itself and the program cache's key, which must
    never disagree about a query's shape.
    """
    pattern = []
    chars = []
    bound = []
    for term in query.all_args:
        if isinstance(term, Constant):
            pattern.append(("b", term.value))
            chars.append("b")
            bound.append(term.value)
        else:
            pattern.append(("f", None))
            chars.append("f")
    return "".join(chars), tuple(bound), tuple(pattern)


@dataclass
class MagicProgram:
    """Result of the rewrite: run ``rules`` after seeding ``seed``."""

    rules: list
    seed_pred: str
    seed_fact: tuple
    answer_pred: str
    query_pattern: tuple  # (mode, value) per position

    def answers(self, db: Database) -> set:
        """Query answers, filtered back to the original bound pattern."""
        result = set()
        for fact in db.tuples(self.answer_pred):
            if all(mode == "f" or fact[i] == value
                   for i, (mode, value) in enumerate(self.query_pattern)):
                result.add(fact)
        return result


def magic_transform(rules: Iterable[Rule], query: Atom) -> MagicProgram:
    """Rewrite ``rules`` for goal-directed bottom-up evaluation of ``query``.

    ``query`` is an atom whose constant arguments are the bound ones
    (e.g. ``reach("a", X)`` → adornment ``bf``).
    """
    rule_list = list(rules)
    if not all(isinstance(r, EngineRule) for r in rule_list):
        rule_list = normalize_rules(rule_list)
    by_pred: dict[str, list[EngineRule]] = {}
    for rule in rule_list:
        if rule.agg is not None:
            raise SafetyError("magic-sets rewrite does not support aggregates")
        for item in rule.body:
            if isinstance(item, Literal) and item.negated:
                raise SafetyError("magic-sets rewrite does not support negation")
        by_pred.setdefault(rule.head.pred, []).append(rule)

    query_adornment, bound_values, query_pattern = _query_adornment(query)

    if query.pred not in by_pred:
        raise SafetyError(f"query predicate {query.pred!r} has no rules "
                          f"(query the EDB directly)")

    out_rules: list[Rule] = []
    done: set[tuple] = set()
    worklist = [(query.pred, query_adornment)]

    while worklist:
        pred, adornment = worklist.pop()
        if (pred, adornment) in done:
            continue
        done.add((pred, adornment))
        magic_head_name = _magic_name(pred, adornment)
        adorned_head_name = _adorned_name(pred, adornment)
        for rule in by_pred[pred]:
            head_args = rule.head.all_args
            if len(head_args) != len(adornment):
                raise SafetyError(
                    f"arity mismatch for {pred!r} in magic rewrite"
                )
            bound: set[str] = set()
            magic_args = []
            for term, mode in zip(head_args, adornment):
                if mode == "b":
                    magic_args.append(term)
                    bound.update(v.name for v in term.variables())
            guard = Literal(Atom(magic_head_name, tuple(magic_args)))
            new_body: list = [guard]
            prefix: list = [guard]
            for item in rule.body:
                if isinstance(item, Literal) and item.atom.pred in by_pred:
                    callee = item.atom
                    callee_adornment = "".join(
                        "b" if {v.name for v in term.variables()} <= bound
                               and not _has_free_const_expr(term, bound)
                        else "f"
                        for term in callee.all_args
                    )
                    # magic rule for the callee
                    callee_bound_args = tuple(
                        term for term, mode in zip(callee.all_args, callee_adornment)
                        if mode == "b"
                    )
                    out_rules.append(Rule(
                        (Atom(_magic_name(callee.pred, callee_adornment),
                              callee_bound_args),),
                        tuple(prefix),
                        None,
                        f"magic:{callee.pred}:{callee_adornment}",
                    ))
                    worklist.append((callee.pred, callee_adornment))
                    adorned = Literal(Atom(
                        _adorned_name(callee.pred, callee_adornment),
                        callee.all_args))
                    new_body.append(adorned)
                    prefix.append(adorned)
                    bound.update(v.name for v in callee.variables())
                else:
                    new_body.append(item)
                    prefix.append(item)
                    if isinstance(item, Literal):
                        bound.update(v.name for v in item.variables())
                    elif isinstance(item, Comparison) and item.op == "=":
                        bound.update(v.name for v in item.left.variables())
                        bound.update(v.name for v in item.right.variables())
                    elif isinstance(item, BuiltinCall):
                        bound.update(v.name for v in item.variables())
            out_rules.append(Rule(
                (Atom(adorned_head_name, head_args),),
                tuple(new_body),
                None,
                f"adorned:{pred}:{adornment}",
            ))

    return MagicProgram(
        rules=out_rules,
        seed_pred=_magic_name(query.pred, query_adornment),
        seed_fact=tuple(bound_values),
        answer_pred=_adorned_name(query.pred, query_adornment),
        query_pattern=tuple(query_pattern),
    )


def _has_free_const_expr(term: Term, bound: set) -> bool:
    """Constants count as bound; anything else with no vars is bound too."""
    return False  # vars-⊆-bound is the whole condition for our term forms


#: Cached magic programs: ``(rule identities, pred, adornment) ->
#: (source rules, normalized EngineRules, seed_pred, answer_pred)``.
#: The rewrite depends only on the *binding pattern* of the query — not
#: its bound values — so one cached program answers every point query of
#: that shape, and because the entry holds the normalized
#: :class:`EngineRule` objects, their band-keyed join-plan caches carry
#: across queries too: repeated point lookups stop replanning entirely
#: (the band in the key reacts if the EDB's cardinality moves).  Keys
#: use object identities; entries hold strong references to the source
#: rules so an identity can never be recycled while its entry lives, and
#: the FIFO bound keeps abandoned rule lists from accumulating.
_PROGRAM_CACHE: dict = {}
MAX_CACHED_PROGRAMS = 32


def _cached_program(rule_list: list, query: Atom,
                    stats) -> tuple[list, str, str, tuple, tuple]:
    """The normalized magic program for ``query``'s binding pattern."""
    adornment, bound_values, pattern = _query_adornment(query)
    key = (tuple(id(rule) for rule in rule_list), query.pred, adornment)
    entry = _PROGRAM_CACHE.get(key)
    if entry is None:
        program = magic_transform(rule_list, query)
        engine_rules = normalize_rules(program.rules)
        if len(_PROGRAM_CACHE) >= MAX_CACHED_PROGRAMS:
            _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
        entry = (list(rule_list), engine_rules,
                 program.seed_pred, program.answer_pred)
        _PROGRAM_CACHE[key] = entry
        if stats is not None:
            stats.magic_programs_built += 1
    elif stats is not None:
        stats.magic_cache_hits += 1
    _rules_ref, engine_rules, seed_pred, answer_pred = entry
    return engine_rules, seed_pred, answer_pred, bound_values, pattern


def query_magic(rules: Iterable[Rule], db: Database, query: Atom,
                context: Optional[EvalContext] = None) -> set:
    """Run a magic-sets query on a scratch overlay of ``db``.

    Returns the set of answer facts for the query predicate.  The overlay
    is a copy-on-write snapshot: EDB relations are shared O(1), magic and
    adorned derivations land in overlay-only relations, and even a rewrite
    that wrote to a shared predicate would unshare rather than corrupt the
    caller's database.

    The rewrite itself is cached per ``(rules, query predicate, binding
    pattern)``: repeated point queries — same shape, any bound values —
    reuse the normalized rules *and their join plans* instead of
    rebuilding both per call (observable as
    ``EvalStats.magic_cache_hits`` / zero incremental ``plans_built``).
    """
    context = context or EvalContext()
    rule_list = list(rules)
    engine_rules, seed_pred, answer_pred, bound_values, pattern = \
        _cached_program(rule_list, query, context.stats)
    program = MagicProgram(
        rules=engine_rules,
        seed_pred=seed_pred,
        seed_fact=bound_values,
        answer_pred=answer_pred,
        query_pattern=pattern,
    )
    overlay = db.snapshot()
    overlay.add(program.seed_pred, program.seed_fact)
    # Thread the caller's stats through the overlay evaluation: the
    # planner's work (plans built, reorders won, distinct counts
    # computed) is attributed to the query instead of a throwaway.
    evaluate(program.rules, overlay, context, stats=context.stats)
    return program.answers(overlay)


def choose_strategy(rules: Iterable[Rule], query: Atom,
                    db: Database) -> str:
    """The section 7 'adaptive' heuristic: goal-directed when selective.

    Magic-sets pays off when the query has bound arguments and the
    relevant EDB is large; continuous bottom-up wins for unbound queries
    (it computes everything anyway, once).
    """
    has_bound = any(isinstance(t, Constant) for t in query.all_args)
    if not has_bound:
        return "bottomup"
    try:
        magic_transform(rules, query)
    except SafetyError:
        return "bottomup"
    return "magic"
