"""Naive bottom-up evaluation — the ablation baseline for benchmark A1.

Same stratified semantics as :mod:`repro.datalog.engine`, but every round
re-applies every rule against the *full* database instead of restricting
one body literal to the delta.  Kept deliberately simple: the property
tests assert it computes exactly the same models as the semi-naive engine,
and ``benchmarks/bench_eval_strategies.py`` shows the asymptotic gap the
semi-naive optimization buys (the reason LogicBlox, and every serious
Datalog engine, uses it).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .database import Database
from .engine import (
    EngineRule,
    EvalStats,
    apply_aggregate_rule,
    apply_rule,
    normalize_rules,
)
from .runtime import EvalContext
from .stratify import stratify
from .terms import Rule


def evaluate_naive(rules: Iterable[Rule], db: Database,
                   context: Optional[EvalContext] = None,
                   stats: Optional[EvalStats] = None) -> dict:
    """Run a program to fixpoint naively; returns facts added per predicate."""
    context = context or EvalContext()
    rule_list = list(rules)
    if all(isinstance(r, EngineRule) for r in rule_list):
        engine_rules = rule_list
    else:
        engine_rules = normalize_rules(rule_list)
    strata = stratify(engine_rules)
    stats = stats if stats is not None else EvalStats()
    interner = db.interner
    added_rows: dict[str, set] = {}

    def merge(pred: str, new_rows: set) -> bool:
        fresh = db.rel(pred).add_rows(new_rows)
        if not fresh:
            return False
        added_rows.setdefault(pred, set()).update(fresh)
        stats.new_facts += len(fresh)
        return True

    for stratum in strata:
        for rule in stratum.agg_rules:
            new_facts = apply_aggregate_rule(rule, db, context, stats)
            if new_facts:
                merge(rule.head.pred,
                      {interner.intern_row(fact) for fact in new_facts})
        changed = True
        while changed:
            changed = False
            stats.rounds += 1
            for rule in stratum.rules:
                # Rule application stays in id space round over round;
                # values materialize once, at the return boundary below.
                new_rows = apply_rule(rule, db, context, stats=stats,
                                      as_rows=True)
                if new_rows and merge(rule.head.pred, new_rows):
                    changed = True

    materialize = interner.materialize_row
    return {pred: {materialize(row) for row in rows}
            for pred, rows in added_rows.items()}
