"""Recursive-descent parser for the LBTrust Datalog dialect.

Grammar summary (see DESIGN.md S1 and the paper sections 2.1, 3.2-3.4)::

    program    := statement*
    statement  := [label ':'] (rule | constraint)
    rule       := formula ('<-' [aggspec] formula)? '.'
    constraint := formula '->' [formula] '.'
    formula    := disjunct (';' disjunct)*
    disjunct   := conjunct (',' conjunct)*
    conjunct   := '!' conjunct | '(' formula ')' | literal | comparison
    literal    := predname ['[' terms ']'] '(' [terms] ')'
    comparison := term ('='|'!='|'<'|'<='|'>'|'>=') term
    aggspec    := 'agg' '<<' VAR '=' func '(' term ')' '>>'
    term       := arithmetic over primary
    primary    := const | VAR | 'me' | quote | partition-ref | '(' term ')'
    quote      := '[|' pattern '|]'

A statement whose top connective is ``<-`` is a rule; ``->`` a constraint;
a bare conjunction of atoms is a fact.  Disjunction is normalized to DNF
and split into one rule per alternative, exactly as the paper prescribes;
:func:`parse_statement` therefore returns a *list*.

Labels (``exp1: …``) are distinguished from qualified predicate names
(``message:id``) by token gluing — see :mod:`repro.datalog.lexer`.
"""

from __future__ import annotations

from typing import Optional

from .errors import ParseError
from .lexer import Token, tokenize
from .logic import And, Formula, Not, conj, disj, dnf_body, to_dnf
from .terms import (
    AGG_FUNCS,
    ME,
    Aggregate,
    Atom,
    AtomPattern,
    Comparison,
    Constant,
    Constraint,
    EqPattern,
    Expr,
    Literal,
    PartitionTerm,
    Program,
    Quote,
    Rule,
    RulePattern,
    Span,
    Star,
    StarLits,
    Statement,
    Term,
    Variable,
    fresh_var,
)

_COMPARE_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Parser:
    """One-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._pos += 1
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token.kind == "PUNCT" and token.text == text

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.text == word

    def expect(self, text: str) -> Token:
        if not self.at(text):
            token = self.peek()
            raise ParseError(
                f"expected {text!r}, found {token.text or 'end of input'!r}",
                token.line, token.column,
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)

    # -- program / statements -------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.peek().kind != "EOF":
            program.statements.extend(self.parse_statement())
        return program

    def parse_statement(self) -> list[Statement]:
        start = self.peek()
        span = Span(start.line, start.column)
        label = self._try_label()
        lhs = self.parse_formula()
        if self.at("."):
            self.advance()
            return self._make_facts(lhs, label, span)
        if self.at("<-"):
            self.advance()
            agg = self._try_aggregate()
            body = self.parse_formula()
            self.expect(".")
            return self._make_rules(lhs, body, agg, label, span)
        if self.at("->"):
            self.advance()
            rhs: Optional[Formula] = None
            if not self.at("."):
                rhs = self.parse_formula()
            self.expect(".")
            return [self._make_constraint(lhs, rhs, label, span)]
        raise self.error("expected '.', '<-' or '->' after formula")

    def _try_label(self) -> Optional[str]:
        token = self.peek()
        nxt = self.peek(1)
        after = self.peek(2)
        if (token.kind == "IDENT" and nxt.kind == "PUNCT" and nxt.text == ":"
                and not after.glued):
            self.advance()
            self.advance()
            return token.text
        return None

    def _heads_from_formula(self, formula: Formula) -> tuple:
        items = formula.parts if isinstance(formula, And) else (formula,)
        heads = []
        for item in items:
            if isinstance(item, Literal) and not item.negated:
                heads.append(item.atom)
            else:
                raise self.error(f"rule head must be positive atoms, found {item!r}")
        return tuple(heads)

    def _make_facts(self, formula: Formula, label: Optional[str],
                    span: Optional[Span] = None) -> list[Statement]:
        heads = self._heads_from_formula(formula)
        return [Rule(heads, (), None, label, span=span)]

    def _make_rules(self, head_formula: Formula, body: Formula,
                    agg: Optional[Aggregate], label: Optional[str],
                    span: Optional[Span] = None) -> list[Statement]:
        heads = self._heads_from_formula(head_formula)
        alternatives = dnf_body(body)
        return [Rule(heads, alt, agg, label, span=span) for alt in alternatives]

    def _make_constraint(self, lhs: Formula, rhs: Optional[Formula],
                         label: Optional[str],
                         span: Optional[Span] = None) -> Constraint:
        lhs_dnf = to_dnf(lhs)
        rhs_dnf = to_dnf(rhs) if rhs is not None else ()
        return Constraint(lhs_dnf, rhs_dnf, label, span=span)

    # -- aggregation -------------------------------------------------------------

    def _try_aggregate(self) -> Optional[Aggregate]:
        if not self.at_keyword("agg"):
            return None
        self.advance()
        self.expect("<<")
        result_token = self.advance()
        if result_token.kind != "VAR":
            raise self.error("aggregate result must be a variable")
        self.expect("=")
        func_token = self.advance()
        if func_token.kind != "IDENT" or func_token.text not in AGG_FUNCS:
            raise self.error(f"unknown aggregate function {func_token.text!r}")
        self.expect("(")
        over = self.parse_term()
        self.expect(")")
        self.expect(">>")
        return Aggregate(func_token.text, Variable(result_token.text), over)

    # -- formulas --------------------------------------------------------------

    def parse_formula(self) -> Formula:
        parts = [self._parse_disjunct()]
        while self.at(";"):
            self.advance()
            parts.append(self._parse_disjunct())
        return disj(parts)

    def _parse_disjunct(self) -> Formula:
        parts = [self._parse_conjunct()]
        while self.at(","):
            self.advance()
            parts.append(self._parse_conjunct())
        return conj(parts)

    def _parse_conjunct(self) -> Formula:
        if self.at("!"):
            self.advance()
            return Not(self._parse_conjunct())
        if self.at("("):
            self.advance()
            inner = self.parse_formula()
            self.expect(")")
            return inner
        return self._parse_basic()

    def _parse_basic(self) -> Formula:
        """An atom, or a comparison between two terms."""
        if self._at_atom_start():
            atom = self.parse_atom()
            return Literal(atom, span=atom.span)
        start = self.peek()
        left = self.parse_term()
        op_token = self.peek()
        if op_token.kind == "PUNCT" and op_token.text in _COMPARE_OPS:
            self.advance()
            right = self.parse_term()
            return Comparison(op_token.text, left, right,
                              span=Span(start.line, start.column))
        raise self.error(f"expected comparison operator, found {op_token.text!r}")

    def _at_atom_start(self) -> bool:
        """True when the next tokens begin a relational atom ``name(...)``."""
        token = self.peek()
        if token.kind != "IDENT":
            return False
        offset = 1
        # Qualified name segments: glued ':' IDENT pairs.
        while (self.peek(offset).kind == "PUNCT" and self.peek(offset).text == ":"
               and self.peek(offset).glued
               and self.peek(offset + 1).kind == "IDENT"
               and self.peek(offset + 1).glued):
            offset += 2
        nxt = self.peek(offset)
        if nxt.kind == "PUNCT" and nxt.text == "[" and nxt.glued:
            # Partitioned atom head: name[keys](args).  Scan past the keys.
            depth = 1
            offset += 1
            while depth > 0:
                token_k = self.peek(offset)
                if token_k.kind == "EOF":
                    return False
                if token_k.kind == "PUNCT" and token_k.text == "[":
                    depth += 1
                elif token_k.kind == "PUNCT" and token_k.text == "]":
                    depth -= 1
                offset += 1
            nxt = self.peek(offset)
            return nxt.kind == "PUNCT" and nxt.text == "("
        return nxt.kind == "PUNCT" and nxt.text == "(" and nxt.glued

    def _parse_predname(self) -> str:
        token = self.advance()
        if token.kind != "IDENT":
            raise self.error(f"expected predicate name, found {token.text!r}")
        name = token.text
        while (self.peek().kind == "PUNCT" and self.peek().text == ":"
               and self.peek().glued
               and self.peek(1).kind == "IDENT" and self.peek(1).glued):
            self.advance()
            name += ":" + self.advance().text
        return name

    def parse_atom(self) -> Atom:
        start = self.peek()
        name = self._parse_predname()
        keys: tuple = ()
        if self.at("[") and self.peek().glued:
            self.advance()
            keys = tuple(self._parse_term_list("]"))
            self.expect("]")
        self.expect("(")
        args: tuple = ()
        if not self.at(")"):
            args = tuple(self._parse_term_list(")"))
        self.expect(")")
        return Atom(name, args, keys, span=Span(start.line, start.column))

    def _parse_term_list(self, closer: str) -> list[Term]:
        terms = [self.parse_term()]
        while self.at(","):
            self.advance()
            terms.append(self.parse_term())
        return terms

    # -- terms -----------------------------------------------------------------

    def parse_term(self) -> Term:
        return self._parse_additive()

    def _parse_additive(self) -> Term:
        left = self._parse_multiplicative()
        while self.at("+") or self.at("-"):
            op = self.advance().text
            right = self._parse_multiplicative()
            left = Expr(op, left, right)
        return left

    def _parse_multiplicative(self) -> Term:
        left = self._parse_unary()
        while self.at("*") or self.at("/") or self.at("%"):
            op = self.advance().text
            right = self._parse_unary()
            left = Expr(op, left, right)
        return left

    def _parse_unary(self) -> Term:
        if self.at("-"):
            self.advance()
            inner = self._parse_unary()
            if isinstance(inner, Constant) and isinstance(inner.value, (int, float)):
                return Constant(-inner.value)
            return Expr("-", Constant(0), inner)
        return self._parse_primary()

    def _parse_primary(self) -> Term:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return Constant(int(token.text))
        if token.kind == "FLOAT":
            self.advance()
            return Constant(float(token.text))
        if token.kind == "STRING":
            self.advance()
            return Constant(token.text)
        if token.kind == "HEX":
            self.advance()
            return Constant(bytes.fromhex(token.text[2:]))
        if token.kind == "REFID":
            # $r<N>: a rule reference.  Registry-scoped — meaningful only
            # where the producing registry is shared (as in one LBTrust
            # system); the wire codec documents this limitation.
            from .terms import RuleRef
            self.advance()
            return Constant(RuleRef(int(token.text[2:])))
        if token.kind == "KEYWORD":
            if token.text == "me":
                self.advance()
                return Constant(ME)
            if token.text == "true":
                self.advance()
                return Constant(True)
            if token.text == "false":
                self.advance()
                return Constant(False)
            raise self.error(f"keyword {token.text!r} cannot be a term")
        if token.kind == "VAR":
            self.advance()
            if token.text == "_":
                return fresh_var("_Anon")
            return Variable(token.text)
        if token.kind == "IDENT":
            name = self._parse_predname()
            if self.at("[") and self.peek().glued:
                self.advance()
                keys = tuple(self._parse_term_list("]"))
                self.expect("]")
                return PartitionTerm(name, keys)
            return Constant(name)
        if self.at("[|"):
            return self.parse_quote()
        if self.at("{"):
            # A ground list value: {v1,v2,...} (how tuples print).
            self.advance()
            values = []
            if not self.at("}"):
                while True:
                    element = self.parse_term()
                    if not isinstance(element, Constant):
                        raise self.error("list values must be ground")
                    values.append(element.value)
                    if not self.at(","):
                        break
                    self.advance()
            self.expect("}")
            return Constant(tuple(values))
        if self.at("("):
            self.advance()
            inner = self.parse_term()
            self.expect(")")
            return inner
        raise self.error(f"expected a term, found {token.text or 'end of input'!r}")

    # -- quoted code ---------------------------------------------------------------

    def parse_quote(self) -> Quote:
        self.expect("[|")
        pattern = self._parse_pattern()
        self.expect("|]")
        return Quote(pattern)

    def _parse_pattern(self) -> RulePattern:
        heads = [self._parse_pattern_atom()]
        while self.at(","):
            self.advance()
            heads.append(self._parse_pattern_atom())
        has_arrow = False
        body: list = []
        if self.at("<-"):
            has_arrow = True
            self.advance()
            body.append(self._parse_pattern_literal())
            while self.at(","):
                self.advance()
                body.append(self._parse_pattern_literal())
        if self.at("."):
            self.advance()
        return RulePattern(tuple(heads), tuple(body), has_arrow)

    def _parse_pattern_literal(self):
        token = self.peek()
        if self.at("*"):
            self.advance()
            return StarLits(None)
        if token.kind == "VAR":
            nxt = self.peek(1)
            if nxt.kind == "PUNCT" and nxt.text == "*" and nxt.glued:
                self.advance()
                self.advance()
                return StarLits(token.text)
            if nxt.kind == "PUNCT" and nxt.text == "=":
                self.advance()
                self.advance()
                quote = self.parse_quote()
                return EqPattern(Variable(token.text), quote)
        return self._parse_pattern_atom()

    def _parse_pattern_atom(self) -> AtomPattern:
        negated = False
        if self.at("!"):
            self.advance()
            negated = True
        token = self.peek()
        if token.kind == "VAR":
            nxt = self.peek(1)
            if nxt.kind == "PUNCT" and nxt.text == "(" and nxt.glued:
                self.advance()
                self.advance()
                args = self._parse_pattern_args()
                self.expect(")")
                return AtomPattern(Variable(token.text), args, negated)
            # Bare meta-variable matching a whole atom.
            self.advance()
            return AtomPattern(Variable(token.text), None, negated)
        if token.kind == "IDENT":
            name = self._parse_predname()
            self.expect("(")
            args = self._parse_pattern_args()
            self.expect(")")
            return AtomPattern(name, args, negated)
        raise self.error(f"expected an atom pattern, found {token.text!r}")

    def _parse_pattern_args(self) -> tuple:
        if self.at(")"):
            return ()
        args = [self._parse_pattern_arg()]
        while self.at(","):
            self.advance()
            args.append(self._parse_pattern_arg())
        return tuple(args)

    def _parse_pattern_arg(self):
        token = self.peek()
        if token.kind == "VAR":
            nxt = self.peek(1)
            if nxt.kind == "PUNCT" and nxt.text == "*" and nxt.glued:
                self.advance()
                self.advance()
                return Star(token.text)
        if self.at("*"):
            self.advance()
            return Star(None)
        return self.parse_term()


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------

def _with_excerpt(exc: ParseError, source: str) -> ParseError:
    """Enrich a ParseError with the offending source line (see errors.py)."""
    return exc.with_source(source)


def parse_program(source: str) -> Program:
    """Parse a multi-statement source string into a :class:`Program`."""
    try:
        return Parser(tokenize(source)).parse_program()
    except ParseError as exc:
        enriched = _with_excerpt(exc, source)
        if enriched is exc:
            raise
        raise enriched from None


def parse_statements(source: str) -> list[Statement]:
    """Parse source and return the flat statement list."""
    return parse_program(source).statements


def parse_rule(source: str) -> Rule:
    """Parse exactly one rule (raises if the source is not a single rule)."""
    statements = parse_statements(source)
    if len(statements) != 1 or not isinstance(statements[0], Rule):
        raise ParseError(f"expected a single rule, got {len(statements)} statements")
    return statements[0]

def parse_constraint(source: str) -> Constraint:
    """Parse exactly one constraint."""
    statements = parse_statements(source)
    if len(statements) != 1 or not isinstance(statements[0], Constraint):
        raise ParseError("expected a single constraint")
    constraint = statements[0]
    return Constraint(constraint.lhs, constraint.rhs, constraint.label,
                      source.strip())


def parse_atom(source: str) -> Atom:
    """Parse a single atom, e.g. ``"access(P,O,read)"``."""
    try:
        parser = Parser(tokenize(source))
        atom = parser.parse_atom()
    except ParseError as exc:
        enriched = _with_excerpt(exc, source)
        if enriched is exc:
            raise
        raise enriched from None
    if parser.peek().kind != "EOF":
        raise ParseError("trailing input after atom")
    return atom


def parse_term(source: str) -> Term:
    """Parse a single term."""
    try:
        parser = Parser(tokenize(source))
        term = parser.parse_term()
    except ParseError as exc:
        enriched = _with_excerpt(exc, source)
        if enriched is exc:
            raise
        raise enriched from None
    if parser.peek().kind != "EOF":
        raise ParseError("trailing input after term")
    return term
