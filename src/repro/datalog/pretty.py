"""Deterministic pretty-printer for the Datalog AST.

Two jobs:

* **Readable source** for debugging, error messages and examples (the
  output re-parses to an equal AST — tested by round-trip property tests).
* **Canonical form** for rule interning and signing: the LBTrust registry
  alpha-renames variables in order of first occurrence and prints with this
  module, so structurally identical rules produce byte-identical text.
  Binder-style certificates sign those canonical bytes
  (:mod:`repro.crypto.schemes`), making signatures independent of variable
  naming and whitespace in the original source.
"""

from __future__ import annotations

from .terms import (
    Aggregate,
    Atom,
    AtomPattern,
    BuiltinCall,
    Comparison,
    Constant,
    Constraint,
    EqPattern,
    Expr,
    Literal,
    MeToken,
    PartitionTerm,
    PatternValue,
    PredPartition,
    Quote,
    Rule,
    RulePattern,
    RuleRef,
    Star,
    StarLits,
    Term,
    Variable,
)


def format_value(value) -> str:
    """Print a ground value unambiguously."""
    if isinstance(value, bool):  # bool before int: True is an int
        return "true" if value else "false"
    if isinstance(value, str):
        # Escape exactly what the lexer's escape map can decode: a raw
        # newline/tab inside a string literal would otherwise produce
        # source text that does not re-parse (codec round-trip asymmetry).
        escaped = (value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f'"{escaped}"'
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, bytes):
        return f"0x{value.hex()}"
    if isinstance(value, MeToken):
        return "me"
    if isinstance(value, RuleRef):
        return repr(value)
    if isinstance(value, PredPartition):
        keys = ",".join(format_value(k) for k in value.keys)
        return f"{value.pred}[{keys}]"
    if isinstance(value, PatternValue):
        return f"[| {format_pattern(value.pattern)} |]"
    if isinstance(value, tuple):
        return "{" + ",".join(format_value(v) for v in value) + "}"
    raise TypeError(f"cannot format value of type {type(value).__name__}: {value!r}")


def format_term(term: Term) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        return format_value(term.value)
    if isinstance(term, Expr):
        return f"({format_term(term.left)} {term.op} {format_term(term.right)})"
    if isinstance(term, PartitionTerm):
        keys = ",".join(format_term(k) for k in term.keys)
        return f"{term.pred}[{keys}]"
    if isinstance(term, Quote):
        return f"[| {format_pattern(term.pattern)} |]"
    raise TypeError(f"cannot format term {term!r}")


def format_atom(atom: Atom) -> str:
    keys = ""
    if atom.keys:
        keys = "[" + ",".join(format_term(k) for k in atom.keys) + "]"
    args = ",".join(format_term(a) for a in atom.args)
    return f"{atom.pred}{keys}({args})"


def format_body_item(item) -> str:
    if isinstance(item, Literal):
        return ("!" if item.negated else "") + format_atom(item.atom)
    if isinstance(item, Comparison):
        return f"{format_term(item.left)} {item.op} {format_term(item.right)}"
    if isinstance(item, BuiltinCall):
        args = ",".join(format_term(a) for a in item.args)
        return f"{item.name}({args})"
    raise TypeError(f"cannot format body item {item!r}")


def format_aggregate(agg: Aggregate) -> str:
    return f"agg<<{agg.result.name} = {agg.func}({format_term(agg.over)})>>"


def format_pattern_atom(pat: AtomPattern) -> str:
    neg = "!" if pat.negated else ""
    if pat.args is None:
        return f"{neg}{pat.functor.name}"
    name = pat.functor if isinstance(pat.functor, str) else pat.functor.name
    parts = []
    for arg in pat.args:
        if isinstance(arg, Star):
            parts.append(f"{arg.var or ''}*")
        else:
            parts.append(format_term(arg))
    return f"{neg}{name}({','.join(parts)})"


def format_pattern(pattern: RulePattern) -> str:
    heads = ", ".join(format_pattern_atom(h) for h in pattern.heads)
    if not pattern.has_arrow and not pattern.body:
        return f"{heads}."
    body_parts = []
    for lit in pattern.body:
        if isinstance(lit, AtomPattern):
            body_parts.append(format_pattern_atom(lit))
        elif isinstance(lit, StarLits):
            body_parts.append(f"{lit.var or ''}*")
        elif isinstance(lit, EqPattern):
            body_parts.append(f"{lit.var.name} = [| {format_pattern(lit.quote.pattern)} |]")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot format pattern literal {lit!r}")
    return f"{heads} <- {', '.join(body_parts)}."


def format_rule(rule: Rule) -> str:
    heads = ", ".join(format_atom(h) for h in rule.heads)
    if rule.is_fact():
        return f"{heads}."
    body = ", ".join(format_body_item(item) for item in rule.body)
    if rule.agg is not None:
        body = f"{format_aggregate(rule.agg)} {body}" if body else format_aggregate(rule.agg)
    return f"{heads} <- {body}."


def format_constraint(constraint: Constraint) -> str:
    if constraint.source:
        return constraint.source

    def fmt_dnf(alternatives: tuple) -> str:
        conjs = [
            ", ".join(format_body_item(item) for item in alt)
            for alt in alternatives
        ]
        if len(conjs) == 1:
            return conjs[0]
        return "; ".join(f"({c})" for c in conjs)

    rhs = fmt_dnf(constraint.rhs) if constraint.rhs else ""
    return f"{fmt_dnf(constraint.lhs)} -> {rhs}."


def format_statement(statement) -> str:
    if isinstance(statement, Rule):
        return format_rule(statement)
    if isinstance(statement, Constraint):
        return format_constraint(statement)
    raise TypeError(f"cannot format {statement!r}")


# ---------------------------------------------------------------------------
# Canonical (alpha-renamed) form — used for interning and signing
# ---------------------------------------------------------------------------

def canonical_rule(rule: Rule) -> str:
    """Alpha-rename variables to V0,V1,… in order of appearance and print.

    Two rules that differ only in variable names (or in the freshness
    counter of anonymous variables) produce identical canonical text.
    """
    mapping: dict[str, Variable] = {}

    def rename_var(var: Variable) -> Variable:
        if var.name not in mapping:
            mapping[var.name] = Variable(f"V{len(mapping)}")
        return mapping[var.name]

    def rename_term(term: Term) -> Term:
        if isinstance(term, Variable):
            return rename_var(term)
        if isinstance(term, Expr):
            return Expr(term.op, rename_term(term.left), rename_term(term.right))
        if isinstance(term, PartitionTerm):
            return PartitionTerm(term.pred, tuple(rename_term(k) for k in term.keys))
        if isinstance(term, Quote):
            return Quote(rename_pattern(term.pattern))
        if isinstance(term, Constant) and isinstance(term.value, PatternValue):
            # Pattern values print as quotes; renaming their variables too
            # keeps the canonical text identical whether the pattern is a
            # parsed quote term or a first-class value — signatures must
            # not depend on that representation detail.
            return Constant(PatternValue(rename_pattern(term.value.pattern)))
        return term

    def rename_atom(atom: Atom) -> Atom:
        return Atom(
            atom.pred,
            tuple(rename_term(a) for a in atom.args),
            tuple(rename_term(k) for k in atom.keys),
        )

    def rename_pattern_atom(pat: AtomPattern) -> AtomPattern:
        functor = pat.functor
        if isinstance(functor, Variable):
            functor = rename_var(functor)
        args = None
        if pat.args is not None:
            new_args = []
            for arg in pat.args:
                if isinstance(arg, Star):
                    new_args.append(Star(None))  # star names are irrelevant
                else:
                    new_args.append(rename_term(arg))
            args = tuple(new_args)
        return AtomPattern(functor, args, pat.negated)

    def rename_pattern(pattern: RulePattern) -> RulePattern:
        heads = tuple(rename_pattern_atom(h) for h in pattern.heads)
        body = []
        for lit in pattern.body:
            if isinstance(lit, AtomPattern):
                body.append(rename_pattern_atom(lit))
            elif isinstance(lit, StarLits):
                body.append(StarLits(None))
            elif isinstance(lit, EqPattern):
                body.append(EqPattern(rename_var(lit.var), Quote(rename_pattern(lit.quote.pattern))))
        return RulePattern(heads, tuple(body), pattern.has_arrow)

    def rename_item(item):
        if isinstance(item, Literal):
            return Literal(rename_atom(item.atom), item.negated)
        if isinstance(item, Comparison):
            return Comparison(item.op, rename_term(item.left), rename_term(item.right))
        if isinstance(item, BuiltinCall):
            return BuiltinCall(item.name, tuple(rename_term(a) for a in item.args))
        raise TypeError(f"unexpected body item {item!r}")  # pragma: no cover

    agg = None
    if rule.agg is not None:
        agg = Aggregate(rule.agg.func, rename_var(rule.agg.result), rename_term(rule.agg.over))
        # note: aggregate variables are renamed before the body so the
        # result variable gets a stable index.
    heads = tuple(rename_atom(h) for h in rule.heads)
    body = tuple(rename_item(i) for i in rule.body)
    return format_rule(Rule(heads, body, agg, None))


def canonical_constraint(constraint: Constraint) -> str:
    """Alpha-normalized text of a constraint (for deduplication).

    Each DNF side is rendered through :func:`canonical_rule` with a dummy
    head so variable naming from quote compilation does not affect
    equality.
    """
    def canon_side(alternatives: tuple) -> str:
        rendered = [
            canonical_rule(Rule((Atom("$c", ()),), alternative))
            for alternative in alternatives
        ]
        return " ; ".join(rendered)

    return f"{canon_side(constraint.lhs)} -> {canon_side(constraint.rhs)}"
