"""The join core: term evaluation, literal matching, conjunction solving.

Everything that enumerates satisfying assignments of a conjunctive body —
bottom-up rule application, semi-naive deltas, constraint checking,
tabled top-down resolution — funnels through :func:`solve`, so correctness
fixes and index use land in one place.

A *binding* is a plain ``dict`` mapping variable names to ground Python
values.  Plans order body items so that every comparison, builtin call and
negated literal runs as soon as its inputs are bound (they are cheap
filters), and positive literals are chosen greedily by how many of their
columns are already bound (so the relation index can be used).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from .builtins import (
    BuiltinRegistry,
    apply_arith,
    apply_comparison,
    invoke_builtin,
    standard_registry,
)
from .database import Database, Relation
from .errors import BuiltinError, SafetyError
from .terms import (
    Atom,
    BuiltinCall,
    Comparison,
    Constant,
    Expr,
    Literal,
    PartitionTerm,
    PredPartition,
    Quote,
    Rule,
    Term,
    Variable,
)

Bindings = dict[str, Any]


@dataclass
class EvalContext:
    """Everything a body evaluation needs besides the database.

    ``instantiate_quote`` is provided by the meta layer
    (:mod:`repro.meta.registry`): it turns a head-position quote template
    plus current bindings into a :class:`repro.datalog.terms.RuleRef`.
    Pure-Datalog programs never exercise it.
    """

    builtins: BuiltinRegistry = field(default_factory=standard_registry)
    instantiate_quote: Optional[Callable[[Quote, Bindings], Any]] = None
    #: opaque payload handed to context-needing builtins (e.g. the keystore)
    payload: Any = None
    #: optional :class:`repro.datalog.engine.EvalStats`; when set, the join
    #: core counts positive-literal matches (``literal_scans``) and how
    #: many of those had no bound column to index on (``full_scans``)
    stats: Any = None


class Unbound(Exception):
    """Internal signal: a term mentioned an unbound variable."""


def eval_term(term: Term, bindings: Bindings, context: EvalContext) -> Any:
    """Evaluate a term to a ground value; raise :class:`Unbound` if it can't."""
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        try:
            return bindings[term.name]
        except KeyError:
            raise Unbound(term.name) from None
    if isinstance(term, Expr):
        left = eval_term(term.left, bindings, context)
        right = eval_term(term.right, bindings, context)
        return apply_arith(term.op, left, right)
    if isinstance(term, PartitionTerm):
        keys = tuple(eval_term(k, bindings, context) for k in term.keys)
        return PredPartition(term.pred, keys)
    if isinstance(term, Quote):
        if context.instantiate_quote is None:
            raise BuiltinError(
                "quote template encountered but no meta registry is attached"
            )
        return context.instantiate_quote(term, bindings)
    raise BuiltinError(f"cannot evaluate term {term!r}")  # pragma: no cover


def term_vars(term: Term) -> set[str]:
    return {v.name for v in term.variables()}


def item_input_vars(item) -> set[str]:
    """Variables that must be bound before ``item`` can run as a filter."""
    if isinstance(item, Literal):
        return {v.name for v in item.variables()} if item.negated else set()
    if isinstance(item, Comparison):
        if item.op == "=":
            # '=' can bind one unbound side; inputs are the other side's vars.
            return set()
        return term_vars(item.left) | term_vars(item.right)
    if isinstance(item, BuiltinCall):
        return set()
    raise TypeError(f"unexpected body item {item!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Literal matching
# ---------------------------------------------------------------------------

def match_literal(atom: Atom, relation: Relation, bindings: Bindings,
                  context: EvalContext) -> Iterator[Bindings]:
    """Yield extensions of ``bindings`` for each matching tuple.

    Bound columns are collected first so the relation's hash index can
    narrow the scan; remaining columns bind or filter positionally.
    """
    args = atom.all_args
    bound_positions: list[int] = []
    bound_values: list[Any] = []
    free: list[tuple[int, Variable]] = []
    # Variables occurring twice among the free args need an equality check.
    for position, term in enumerate(args):
        if isinstance(term, Variable) and term.name not in bindings:
            free.append((position, term))
            continue
        try:
            value = eval_term(term, bindings, context)
        except Unbound as exc:
            raise SafetyError(
                f"argument {term!r} of {atom.pred} is not bound at join time"
            ) from exc
        bound_positions.append(position)
        bound_values.append(value)

    stats = context.stats
    if bound_positions:
        if stats is not None:
            stats.literal_scans += 1
        candidates = relation.lookup(tuple(bound_positions), tuple(bound_values))
    else:
        if stats is not None:
            stats.literal_scans += 1
            stats.full_scans += 1
        candidates = relation.tuples

    for row in candidates:
        if len(row) != len(args):
            continue  # arity mismatch: treat as no match (catalog prevents this)
        new_bindings: Optional[Bindings] = None
        ok = True
        for position, var in free:
            value = row[position]
            if new_bindings is None:
                new_bindings = dict(bindings)
            if var.name in new_bindings:
                if new_bindings[var.name] != value:
                    ok = False
                    break
            else:
                new_bindings[var.name] = value
        if not ok:
            continue
        yield new_bindings if new_bindings is not None else dict(bindings)


def literal_holds(atom: Atom, relation: Relation, bindings: Bindings,
                  context: EvalContext) -> bool:
    """True iff the (fully evaluable or partially free) atom has a match."""
    for _ in match_literal(atom, relation, bindings, context):
        return True
    return False


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

@dataclass
class Plan:
    """An execution order for a conjunction; built once, reused every round."""

    steps: tuple

    def __iter__(self):
        return iter(self.steps)


def build_plan(items: tuple, initially_bound: frozenset = frozenset(),
               first: Optional[int] = None,
               builtins: Optional[BuiltinRegistry] = None) -> Plan:
    """Order ``items`` for evaluation.

    ``first`` optionally forces one positive literal to the front (the
    semi-naive delta position).  Raises :class:`SafetyError` when some item
    can never have its inputs bound (unsafe rule).
    """
    remaining = list(range(len(items)))
    bound: set[str] = set(initially_bound)
    order: list[int] = []

    # Variables occurring only inside one negated literal are existential
    # within the negation ("no matching tuple exists"), e.g. the paper's
    # dd4 constraint `... -> !delegates(me,_,P)`.  A negated literal is
    # ready once its *shared* variables are bound.
    occurrences: dict[str, int] = {}
    for item in items:
        for name in {v.name for v in item.variables()}:
            occurrences[name] = occurrences.get(name, 0) + 1

    def shared_vars(item) -> set[str]:
        return {
            v.name for v in item.variables()
            if occurrences.get(v.name, 0) > 1 or v.name in initially_bound
        }

    def is_positive_literal(index: int) -> bool:
        item = items[index]
        return isinstance(item, Literal) and not item.negated

    def ready(index: int) -> bool:
        item = items[index]
        if isinstance(item, Literal):
            if not item.negated:
                return True
            return shared_vars(item) <= bound
        if isinstance(item, Comparison):
            left_vars = term_vars(item.left)
            right_vars = term_vars(item.right)
            if item.op == "=":
                if left_vars <= bound and right_vars <= bound:
                    return True
                # one side may be a single unbound variable (assignment mode)
                if left_vars <= bound and isinstance(item.right, Variable):
                    return True
                if right_vars <= bound and isinstance(item.left, Variable):
                    return True
                return False
            return left_vars | right_vars <= bound
        if isinstance(item, BuiltinCall):
            definition = builtins.lookup(item.name) if builtins else None
            if definition is None:
                raise SafetyError(f"unknown builtin {item.name!r}")
            if definition.arity != len(item.args):
                raise SafetyError(
                    f"builtin {item.name!r} expects {definition.arity} args, "
                    f"got {len(item.args)}"
                )
            for position in definition.input_positions:
                if not term_vars(item.args[position]) <= bound:
                    return False
            return True
        raise TypeError(f"unexpected body item {item!r}")  # pragma: no cover

    def bind_outputs(index: int) -> None:
        item = items[index]
        if isinstance(item, Literal) and not item.negated:
            bound.update(v.name for v in item.variables())
        elif isinstance(item, Comparison) and item.op == "=":
            bound.update(term_vars(item.left) | term_vars(item.right))
        elif isinstance(item, BuiltinCall):
            definition = builtins.lookup(item.name) if builtins else None
            if definition is not None:
                for position in definition.output_positions:
                    bound.update(term_vars(item.args[position]))

    if first is not None:
        order.append(first)
        remaining.remove(first)
        bind_outputs(first)

    while remaining:
        # 1. flush every ready filter/binder that is not a positive literal
        progressed = True
        while progressed:
            progressed = False
            for index in list(remaining):
                if not is_positive_literal(index) and ready(index):
                    order.append(index)
                    remaining.remove(index)
                    bind_outputs(index)
                    progressed = True
        if not remaining:
            break
        # 2. choose the next positive literal: most bound columns, then source order
        candidates = [i for i in remaining if is_positive_literal(i)]
        if not candidates:
            unready = [repr(items[i]) for i in remaining]
            raise SafetyError(f"unsafe conjunction; cannot schedule: {unready}")

        def boundness(index: int) -> tuple:
            item = items[index]
            vars_in = {v.name for v in item.variables()}
            return (len(vars_in & bound), -index)

        best = max(candidates, key=boundness)
        order.append(best)
        remaining.remove(best)
        bind_outputs(best)

    return Plan(tuple((i, items[i]) for i in order))


# ---------------------------------------------------------------------------
# Conjunction solving
# ---------------------------------------------------------------------------

def solve(items: tuple, db: Database, context: EvalContext,
          bindings: Optional[Bindings] = None,
          plan: Optional[Plan] = None,
          delta: Optional[dict[str, Relation]] = None,
          delta_position: Optional[int] = None) -> Iterator[Bindings]:
    """Enumerate all satisfying assignments of a conjunction.

    ``delta``/``delta_position`` implement semi-naive evaluation: the
    literal at ``delta_position`` scans the delta relation instead of the
    full one.
    """
    bindings = dict(bindings or {})
    if plan is None:
        plan = build_plan(items, frozenset(bindings), first=delta_position,
                          builtins=context.builtins)

    def run(step_index: int, current: Bindings) -> Iterator[Bindings]:
        if step_index >= len(plan.steps):
            yield current
            return
        item_index, item = plan.steps[step_index]
        if isinstance(item, Literal):
            source: Relation
            if delta is not None and item_index == delta_position:
                source = delta.get(item.atom.pred) or Relation(item.atom.pred)
            else:
                source = db.rel(item.atom.pred)
            if item.negated:
                if not literal_holds(item.atom, source, current, context):
                    yield from run(step_index + 1, current)
                return
            for extended in match_literal(item.atom, source, current, context):
                yield from run(step_index + 1, extended)
            return
        if isinstance(item, Comparison):
            yield from _solve_comparison(item, current, context, plan, step_index, run)
            return
        if isinstance(item, BuiltinCall):
            yield from _solve_builtin(item, current, context, plan, step_index, run)
            return
        raise TypeError(f"unexpected body item {item!r}")  # pragma: no cover

    yield from run(0, bindings)


def _solve_comparison(item: Comparison, current: Bindings, context: EvalContext,
                      plan: Plan, step_index: int, run) -> Iterator[Bindings]:
    if item.op == "=":
        left_unbound = isinstance(item.left, Variable) and item.left.name not in current
        right_unbound = isinstance(item.right, Variable) and item.right.name not in current
        if left_unbound and not right_unbound:
            value = eval_term(item.right, current, context)
            extended = dict(current)
            extended[item.left.name] = value
            yield from run(step_index + 1, extended)
            return
        if right_unbound and not left_unbound:
            value = eval_term(item.left, current, context)
            extended = dict(current)
            extended[item.right.name] = value
            yield from run(step_index + 1, extended)
            return
    left = eval_term(item.left, current, context)
    right = eval_term(item.right, current, context)
    if apply_comparison(item.op, left, right):
        yield from run(step_index + 1, current)


def _solve_builtin(item: BuiltinCall, current: Bindings, context: EvalContext,
                   plan: Plan, step_index: int, run) -> Iterator[Bindings]:
    definition = context.builtins.lookup(item.name)
    if definition is None:
        raise SafetyError(f"unknown builtin {item.name!r}")
    inputs = tuple(
        eval_term(item.args[p], current, context)
        for p in definition.input_positions
    )
    for row in invoke_builtin(definition, inputs, context.payload):
        extended = dict(current)
        ok = True
        for out_value, position in zip(row, definition.output_positions):
            target = item.args[position]
            if isinstance(target, Variable):
                existing = extended.get(target.name, _MISSING)
                if existing is _MISSING:
                    extended[target.name] = out_value
                elif existing != out_value:
                    ok = False
                    break
            else:
                if eval_term(target, extended, context) != out_value:
                    ok = False
                    break
        if ok:
            yield from run(step_index + 1, extended)


_MISSING = object()


def bindable_vars(items: tuple, builtins: Optional[BuiltinRegistry] = None) -> set:
    """Variables a conjunction can bind (positive literals, '=', outputs)."""
    bound: set = set()
    for item in items:
        if isinstance(item, Literal) and not item.negated:
            bound.update(v.name for v in item.variables())
        elif isinstance(item, Comparison) and item.op == "=":
            bound.update(term_vars(item.left) | term_vars(item.right))
        elif isinstance(item, BuiltinCall) and builtins is not None:
            definition = builtins.lookup(item.name)
            if definition is not None:
                for position in definition.output_positions:
                    if position < len(item.args):
                        bound.update(term_vars(item.args[position]))
    return bound


def check_rule_safety(rule, builtins: Optional[BuiltinRegistry] = None) -> None:
    """Raise :class:`SafetyError` for unschedulable bodies or unbound heads.

    Variables inside head-position quote templates are exempt: they may
    legitimately remain variables of the generated rule.
    """
    build_plan(rule.body, builtins=builtins)
    bound = bindable_vars(rule.body, builtins)
    if rule.agg is not None:
        bound.add(rule.agg.result.name)
    for head in rule.heads:
        for term in head.all_args:
            if isinstance(term, Quote):
                continue
            missing = term_vars(term) - bound
            if missing:
                raise SafetyError(
                    f"head variable(s) {sorted(missing)} of {head.pred!r} "
                    f"are not bound by the rule body (not range-restricted)"
                )


# ---------------------------------------------------------------------------
# Head instantiation
# ---------------------------------------------------------------------------

def instantiate_head(atom: Atom, bindings: Bindings, context: EvalContext) -> tuple:
    """Produce the ground tuple for a rule head under ``bindings``."""
    try:
        return tuple(eval_term(term, bindings, context) for term in atom.all_args)
    except Unbound as exc:
        raise SafetyError(
            f"head variable {exc.args[0]!r} of {atom.pred} is not bound by the body"
        ) from exc


def rule_head_vars(rule: Rule) -> set[str]:
    names: set[str] = set()
    for head in rule.heads:
        names.update(v.name for v in head.variables())
    return names
