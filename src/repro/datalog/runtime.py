"""The join core: term evaluation, literal matching, conjunction solving.

Everything that enumerates satisfying assignments of a conjunctive body —
bottom-up rule application, semi-naive deltas, constraint checking,
tabled top-down resolution — funnels through :func:`solve`, so correctness
fixes and index use land in one place.

A *binding* is a plain ``dict`` mapping variable names to ground Python
values.  Plans order body items so that every comparison, builtin call and
negated literal runs as soon as its inputs are bound (they are cheap
filters).  Positive literals are ordered by a *cost model* when live
relation sizes are available (estimated scan cost; a bound column keeps
``1/distinct`` of the rows using the relation's per-column distinct
counts, 10x selective as the statistics-free fallback), falling back to
the greedy most-bound-columns heuristic otherwise; ties always break the
greedy way, so plans only change when cardinalities actually justify it.

Plans are *compiled*: scheduling decides once, per step, which argument
positions are index-probe keys, which bind fresh variables, and which need
an intra-tuple equality check, so the per-row inner loop does no term
classification at all.  A compiled plan assumes the set of initially-bound
variables it was built for (:attr:`Plan.assumes`); :func:`solve` falls
back to building a fresh plan when handed bindings with a different shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from .builtins import (
    BuiltinRegistry,
    apply_arith,
    apply_comparison,
    invoke_builtin,
    standard_registry,
)
from .database import Database, Relation
from .errors import BuiltinError, SafetyError
from .terms import (
    Atom,
    BuiltinCall,
    Comparison,
    Constant,
    Expr,
    Literal,
    PartitionTerm,
    PredPartition,
    Quote,
    Rule,
    Term,
    Variable,
)

Bindings = dict[str, Any]


@dataclass
class EvalContext:
    """Everything a body evaluation needs besides the database.

    ``instantiate_quote`` is provided by the meta layer
    (:mod:`repro.meta.registry`): it turns a head-position quote template
    plus current bindings into a :class:`repro.datalog.terms.RuleRef`.
    Pure-Datalog programs never exercise it.
    """

    builtins: BuiltinRegistry = field(default_factory=standard_registry)
    instantiate_quote: Optional[Callable[[Quote, Bindings], Any]] = None
    #: opaque payload handed to context-needing builtins (e.g. the keystore)
    payload: Any = None
    #: optional :class:`repro.datalog.engine.EvalStats`; when set, the join
    #: core counts positive-literal matches (``literal_scans``) and how
    #: many of those had no bound column to index on (``full_scans``)
    stats: Any = None
    #: per-round delta-exchange hook for distributed evaluation: called as
    #: ``remote_emit(pred, facts)`` with each rule application's freshly
    #: derived facts *before* they are asserted; returns the subset to
    #: keep locally — the rest has been diverted to a remote owner (see
    #: :mod:`repro.cluster`).  None on single-node evaluation (no cost).
    remote_emit: Optional[Callable[[str, set], set]] = None
    #: id-space variant of ``remote_emit``: called with the freshly
    #: derived *id rows* (interned against the evaluating database) and
    #: returns the rows to keep locally.  When set it takes precedence
    #: over ``remote_emit``, and locally-kept facts never materialize —
    #: only genuinely remote ones pay the value boundary (they must
    #: cross the wire anyway).  The implementer owns materialization.
    remote_emit_rows: Optional[Callable[[str, set], set]] = None


class Unbound(Exception):
    """Internal signal: a term mentioned an unbound variable."""


def eval_term(term: Term, bindings: Bindings, context: EvalContext) -> Any:
    """Evaluate a term to a ground value; raise :class:`Unbound` if it can't."""
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        try:
            return bindings[term.name]
        except KeyError:
            raise Unbound(term.name) from None
    if isinstance(term, Expr):
        left = eval_term(term.left, bindings, context)
        right = eval_term(term.right, bindings, context)
        return apply_arith(term.op, left, right)
    if isinstance(term, PartitionTerm):
        keys = tuple(eval_term(k, bindings, context) for k in term.keys)
        return PredPartition(term.pred, keys)
    if isinstance(term, Quote):
        if context.instantiate_quote is None:
            raise BuiltinError(
                "quote template encountered but no meta registry is attached"
            )
        return context.instantiate_quote(term, bindings)
    raise BuiltinError(f"cannot evaluate term {term!r}")  # pragma: no cover


def term_vars(term: Term) -> set[str]:
    return {v.name for v in term.variables()}


def item_input_vars(item) -> set[str]:
    """Variables that must be bound before ``item`` can run as a filter."""
    if isinstance(item, Literal):
        return {v.name for v in item.variables()} if item.negated else set()
    if isinstance(item, Comparison):
        if item.op == "=":
            # '=' can bind one unbound side; inputs are the other side's vars.
            return set()
        return term_vars(item.left) | term_vars(item.right)
    if isinstance(item, BuiltinCall):
        return set()
    raise TypeError(f"unexpected body item {item!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Literal matching
# ---------------------------------------------------------------------------

def match_literal(atom: Atom, relation: Relation, bindings: Bindings,
                  context: EvalContext) -> Iterator[Bindings]:
    """Yield extensions of ``bindings`` for each matching tuple.

    Bound columns are collected first so the relation's hash index can
    narrow the scan; remaining columns bind or filter positionally.
    """
    args = atom.all_args
    bound_positions: list[int] = []
    bound_values: list[Any] = []
    free: list[tuple[int, Variable]] = []
    # Variables occurring twice among the free args need an equality check.
    for position, term in enumerate(args):
        if isinstance(term, Variable) and term.name not in bindings:
            free.append((position, term))
            continue
        try:
            value = eval_term(term, bindings, context)
        except Unbound as exc:
            raise SafetyError(
                f"argument {term!r} of {atom.pred} is not bound at join time"
            ) from exc
        bound_positions.append(position)
        bound_values.append(value)

    stats = context.stats
    if bound_positions:
        if stats is not None:
            stats.literal_scans += 1
        candidates = relation.lookup(tuple(bound_positions), tuple(bound_values))
    else:
        if stats is not None:
            stats.literal_scans += 1
            stats.full_scans += 1
        candidates = relation.tuples

    for row in candidates:
        if len(row) != len(args):
            continue  # arity mismatch: treat as no match (catalog prevents this)
        new_bindings: Optional[Bindings] = None
        ok = True
        for position, var in free:
            value = row[position]
            if new_bindings is None:
                new_bindings = dict(bindings)
            if var.name in new_bindings:
                if new_bindings[var.name] != value:
                    ok = False
                    break
            else:
                new_bindings[var.name] = value
        if not ok:
            continue
        yield new_bindings if new_bindings is not None else dict(bindings)


def literal_holds(atom: Atom, relation: Relation, bindings: Bindings,
                  context: EvalContext) -> bool:
    """True iff the (fully evaluable or partially free) atom has a match."""
    for _ in match_literal(atom, relation, bindings, context):
        return True
    return False


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

#: Fallback selectivity of one bound column in the cost model, used only
#: when no live relation is available to report a real distinct count:
#: the column is then taken to keep 1/10th of the relation's rows.
_BOUND_COLUMN_SELECTIVITY = 0.1

#: The cost model only overrides the boundness-greedy order when its
#: estimate is at least this many times cheaper.  Near-ties go to the
#: greedy choice: with no per-column statistics the estimates are rough,
#: and preferring a small unbound scan over an indexed probe multiplies
#: branching when the estimates are close.
_REORDER_MARGIN = 4.0

#: Below this many facts in every body relation the cost model is skipped
#: entirely: any join order finishes in microseconds, while sized plans
#: cost real build time and churn the plan cache as relations grow.
_COST_MODEL_MIN_SIZE = 64


def cardinality_band(size: int) -> int:
    """Coarse size band for plan-cache keys: empty / small / per power of 4.

    Below :data:`_COST_MODEL_MIN_SIZE` facts join order barely matters, so
    every small size shares one band (rebuilding plans while a relation
    fills up 1, 2, 3, … facts would thrash the cache); beyond that, one
    band per 4x growth.  Bands deliberately trade cost-model reactivity
    for cache stability: a plan only goes stale when some input relation
    changes by an order of magnitude, which is when a different join
    order could actually win.
    """
    if size < _COST_MODEL_MIN_SIZE:
        return 1 if size else 0
    return size.bit_length() >> 1


class _LiteralOp:
    """Compiled positive/negated literal step: precomputed access path.

    ``key_positions`` are the argument positions probed through the
    relation index; their values come from ``key_const`` (fully constant
    key) or from filling ``key_template`` via ``key_var_slots`` /
    ``key_eval_slots``.  ``free`` binds first-occurrence variables from the
    matched row; ``checks`` are intra-tuple equalities for repeated free
    variables (``p(X, X)``).
    """

    __slots__ = ("index", "item", "pred", "negated", "arity", "key_positions",
                 "key_const", "key_template", "key_var_slots",
                 "key_eval_slots", "free", "checks")

    def __init__(self, index: int, item: "Literal", bound: set) -> None:
        atom = item.atom
        args = atom.all_args
        self.index = index
        self.item = item
        self.pred = atom.pred
        self.negated = item.negated
        self.arity = len(args)
        key_positions: list[int] = []
        template: list = []
        var_slots: list = []
        eval_slots: list = []
        free: list = []
        checks: list = []
        first_at: dict[str, int] = {}
        for position, term in enumerate(args):
            if isinstance(term, Variable):
                name = term.name
                if name in bound:
                    key_positions.append(position)
                    var_slots.append((len(template), name))
                    template.append(None)
                elif name in first_at:
                    checks.append((position, first_at[name]))
                else:
                    first_at[name] = position
                    free.append((position, name))
            elif isinstance(term, Constant):
                key_positions.append(position)
                template.append(term.value)
            else:
                key_positions.append(position)
                eval_slots.append((len(template), term))
                template.append(None)
        self.key_positions = tuple(key_positions)
        self.key_template = template
        self.key_var_slots = tuple(var_slots)
        self.key_eval_slots = tuple(eval_slots)
        self.key_const = tuple(template) if not (var_slots or eval_slots) else None
        self.free = tuple(free)
        self.checks = tuple(checks)

    def _key(self, current: Bindings, context: EvalContext) -> tuple:
        key = self.key_const
        if key is not None:
            return key
        filled = list(self.key_template)
        for slot, name in self.key_var_slots:
            filled[slot] = current[name]
        for slot, term in self.key_eval_slots:
            try:
                filled[slot] = eval_term(term, current, context)
            except Unbound as exc:
                raise SafetyError(
                    f"argument {term!r} of {self.pred} is not bound at join time"
                ) from exc
        return tuple(filled)

    def run(self, current: Bindings, cont, db: Database,
            context: EvalContext, delta, delta_position) -> Iterator[Bindings]:
        if delta is not None and self.index == delta_position:
            source = delta.get(self.pred)
            if source is None:
                if self.negated:
                    yield from cont(current)
                return
        else:
            source = db.rel(self.pred)
        stats = context.stats
        if self.key_positions:
            if stats is not None:
                stats.literal_scans += 1
            candidates = source.lookup(self.key_positions,
                                       self._key(current, context))
        else:
            if stats is not None:
                stats.literal_scans += 1
                stats.full_scans += 1
            candidates = source.tuples
        arity = self.arity
        checks = self.checks
        if self.negated:
            for row in candidates:
                if len(row) != arity:
                    continue
                for position, first in checks:
                    if row[position] != row[first]:
                        break
                else:
                    return  # a witness exists: the negation fails
            yield from cont(current)
            return
        free = self.free
        if free:
            for row in candidates:
                if len(row) != arity:
                    continue
                ok = True
                for position, first in checks:
                    if row[position] != row[first]:
                        ok = False
                        break
                if not ok:
                    continue
                extended = current.copy()
                for position, name in free:
                    extended[name] = row[position]
                yield from cont(extended)
        else:
            for row in candidates:
                if len(row) != arity:
                    continue
                yield from cont(current)


_FILTER, _ASSIGN_LEFT, _ASSIGN_RIGHT = 0, 1, 2


class _CompareOp:
    """Compiled comparison step; '=' assignment direction decided statically."""

    __slots__ = ("index", "item", "mode")

    def __init__(self, index: int, item: Comparison, bound: set) -> None:
        self.index = index
        self.item = item
        self.mode = _FILTER
        if item.op == "=":
            left_unbound = (isinstance(item.left, Variable)
                            and item.left.name not in bound)
            right_unbound = (isinstance(item.right, Variable)
                             and item.right.name not in bound)
            if left_unbound and not right_unbound:
                self.mode = _ASSIGN_LEFT
            elif right_unbound and not left_unbound:
                self.mode = _ASSIGN_RIGHT

    def run(self, current: Bindings, cont, db: Database,
            context: EvalContext, delta, delta_position) -> Iterator[Bindings]:
        item = self.item
        mode = self.mode
        if mode == _ASSIGN_LEFT:
            extended = current.copy()
            extended[item.left.name] = eval_term(item.right, current, context)
            yield from cont(extended)
            return
        if mode == _ASSIGN_RIGHT:
            extended = current.copy()
            extended[item.right.name] = eval_term(item.left, current, context)
            yield from cont(extended)
            return
        left = eval_term(item.left, current, context)
        right = eval_term(item.right, current, context)
        if apply_comparison(item.op, left, right):
            yield from cont(current)


class _BuiltinOp:
    """Compiled builtin call: definition and argument positions resolved."""

    __slots__ = ("index", "item", "definition", "input_args", "output_args")

    def __init__(self, index: int, item: BuiltinCall, definition) -> None:
        self.index = index
        self.item = item
        self.definition = definition
        self.input_args = tuple(item.args[p] for p in definition.input_positions)
        self.output_args = tuple(item.args[p] for p in definition.output_positions)

    def run(self, current: Bindings, cont, db: Database,
            context: EvalContext, delta, delta_position) -> Iterator[Bindings]:
        inputs = tuple(eval_term(arg, current, context)
                       for arg in self.input_args)
        for row in invoke_builtin(self.definition, inputs, context.payload):
            extended = current.copy()
            ok = True
            for out_value, target in zip(row, self.output_args):
                if isinstance(target, Variable):
                    existing = extended.get(target.name, _MISSING)
                    if existing is _MISSING:
                        extended[target.name] = out_value
                    elif existing != out_value:
                        ok = False
                        break
                else:
                    if eval_term(target, extended, context) != out_value:
                        ok = False
                        break
            if ok:
                yield from cont(extended)


class _FlatUnsupported(Exception):
    """Internal signal: a plan step cannot be register-compiled."""


def _compile_flat_term(term: Term, slot_of: dict) -> Callable:
    """Compile a term into a ``(registers, values) -> value`` getter.

    Registers hold interned term *ids*; ``values`` is the interner's
    inverse table, so a variable getter materializes its slot with one
    list index.  Supports constants, register-resident variables,
    arithmetic expressions and partition terms over those.  Quotes (which
    need the evaluation context's meta registry) raise
    :class:`_FlatUnsupported`, sending the whole plan down the generic
    pipeline.
    """
    if isinstance(term, Constant):
        value = term.value
        return lambda registers, values: value
    if isinstance(term, Variable):
        slot = slot_of.get(term.name)
        if slot is None:
            raise _FlatUnsupported(term.name)
        return lambda registers, values: values[registers[slot]]
    if isinstance(term, Expr):
        op = term.op
        left = _compile_flat_term(term.left, slot_of)
        right = _compile_flat_term(term.right, slot_of)
        return lambda registers, values: apply_arith(
            op, left(registers, values), right(registers, values))
    if isinstance(term, PartitionTerm):
        pred = term.pred
        keys = tuple(_compile_flat_term(k, slot_of) for k in term.keys)
        return lambda registers, values: PredPartition(
            pred, tuple(k(registers, values) for k in keys))
    raise _FlatUnsupported(term)


class _FlatStep:
    """One literal of a flat (register-based) plan; see :class:`FlatPlan`.

    Probe keys carry constants as *values* (``key_const`` /
    ``const_fills``): compiled plans are cached per rule and reused
    across databases with different interners, so constants resolve to
    ids per :func:`run_flat` call, never at compile time.
    ``single_var`` short-circuits the hottest shape — a single-column key
    filled from one register — to a bare id with no template copy.
    """

    kind = 0

    __slots__ = ("index", "pred", "negated", "arity", "key_positions",
                 "key_single", "key_const", "key_template", "const_fills",
                 "var_fills", "eval_fills", "single_var", "free", "checks")

    def __init__(self, op: "_LiteralOp", slot_of: dict) -> None:
        self.index = op.index
        self.pred = op.pred
        self.negated = op.negated
        self.arity = op.arity
        self.key_positions = op.key_positions
        self.key_single = len(op.key_positions) == 1
        self.key_const = op.key_const
        self.key_template = op.key_template
        self.var_fills = tuple(
            (template_slot, slot_of[name])
            for template_slot, name in op.key_var_slots)
        self.eval_fills = tuple(
            (template_slot, _compile_flat_term(term, slot_of))
            for template_slot, term in op.key_eval_slots)
        if op.key_const is not None:
            self.const_fills = ()
        else:
            filled_slots = {s for s, _ in op.key_var_slots}
            filled_slots.update(s for s, _ in op.key_eval_slots)
            self.const_fills = tuple(
                (s, value) for s, value in enumerate(op.key_template)
                if s not in filled_slots)
        self.single_var = (
            self.var_fills[0][1]
            if (self.key_single and len(self.var_fills) == 1
                and not self.eval_fills and not self.const_fills)
            else None)
        if op.negated:
            self.free = ()  # existential: no bindings escape a negation
        else:
            self.free = tuple(
                (position, slot_of.setdefault(name, len(slot_of)))
                for position, name in op.free)
        self.checks = op.checks


#: Comparison-step modes (mirror of the generic :class:`_CompareOp`).
_FLAT_CMP_FILTER, _FLAT_CMP_ASSIGN = 0, 1


class _FlatCompareStep:
    """A register-compiled comparison: filter, or '='-assignment to a slot."""

    kind = 1

    __slots__ = ("mode", "op", "left", "right", "slot", "value")

    def __init__(self, op: "_CompareOp", slot_of: dict) -> None:
        item = op.item
        self.op = item.op
        if op.mode == _ASSIGN_LEFT:
            self.mode = _FLAT_CMP_ASSIGN
            self.value = _compile_flat_term(item.right, slot_of)
            self.slot = slot_of.setdefault(item.left.name, len(slot_of))
            self.left = self.right = None
        elif op.mode == _ASSIGN_RIGHT:
            self.mode = _FLAT_CMP_ASSIGN
            self.value = _compile_flat_term(item.left, slot_of)
            self.slot = slot_of.setdefault(item.right.name, len(slot_of))
            self.left = self.right = None
        else:
            self.mode = _FLAT_CMP_FILTER
            self.left = _compile_flat_term(item.left, slot_of)
            self.right = _compile_flat_term(item.right, slot_of)
            self.slot = self.value = None


#: Builtin output actions: bind a fresh slot / compare against a slot
#: bound earlier / compare against a computed value.
_OUT_BIND, _OUT_CHECK_SLOT, _OUT_CHECK_VALUE = 0, 1, 2


class _FlatBuiltinStep:
    """A register-compiled builtin call: inputs are getters, outputs
    either bind fresh slots or check already-bound values."""

    kind = 2

    __slots__ = ("definition", "inputs", "outputs")

    def __init__(self, op: "_BuiltinOp", slot_of: dict) -> None:
        self.definition = op.definition
        self.inputs = tuple(
            _compile_flat_term(term, slot_of) for term in op.input_args)
        outputs = []
        for target in op.output_args:
            if isinstance(target, Variable):
                slot = slot_of.get(target.name)
                if slot is None:
                    slot = slot_of[target.name] = len(slot_of)
                    outputs.append((_OUT_BIND, slot))
                else:
                    outputs.append((_OUT_CHECK_SLOT, slot))
            else:
                outputs.append(
                    (_OUT_CHECK_VALUE, _compile_flat_term(target, slot_of)))
        self.outputs = tuple(outputs)


class FlatPlan:
    """A register-compiled conjunction running in interned-id space.

    Variables live in numbered slots instead of binding dicts — and the
    slots hold term *ids*, so the innermost join loop does no dict
    copies, no generator suspensions and no boxed-value hashing —
    :func:`run_flat` walks it with plain recursion and a callback.
    Literals, comparisons ('=' assignment included), builtin calls and
    expression-valued literal keys all compile; only quote terms (which
    need the meta registry) keep the generic op pipeline.  Values are
    materialized only where semantics demand them: ordered comparisons,
    arithmetic, and builtin invocation.
    """

    __slots__ = ("steps", "nslots", "slot_of", "head_spec", "join2")

    def __init__(self, steps: tuple, slot_of: dict) -> None:
        self.steps = steps
        self.nslots = len(slot_of)
        self.slot_of = slot_of
        self.head_spec = None  # lazily cached by apply_rule
        self.join2 = None      # lazily compiled by run_flat (False: no)


def _compile_flat(plan: "Plan") -> Optional[FlatPlan]:
    if plan.assumes:
        return None
    slot_of: dict[str, int] = {}
    steps: list = []
    try:
        for op in plan.ops:
            cls = op.__class__
            if cls is _LiteralOp:
                steps.append(_FlatStep(op, slot_of))
            elif cls is _CompareOp:
                steps.append(_FlatCompareStep(op, slot_of))
            elif cls is _BuiltinOp:
                steps.append(_FlatBuiltinStep(op, slot_of))
            else:  # pragma: no cover - no other op kinds exist
                return None
    except _FlatUnsupported:
        return None
    return FlatPlan(tuple(steps), slot_of)


#: run_flat's "this probe key mentions a value no relation has ever seen"
#: marker: the literal matches nothing (and a negation trivially holds).
_KEY_MISS = object()

#: Per-call literal-step access tags (see the prepare pass in
#: :func:`run_flat`): full scan of the source rows / prefetched constant
#: bucket / single-register index probe / templated index probe / probe
#: key mentions an unknown constant (counts, matches nothing) / positive
#: literal with no delta source (dead, uncounted) / negated literal with
#: no delta source (vacuously true, uncounted).
_P_SCAN, _P_BUCKET, _P_PROBE_SV, _P_PROBE_FILL, _P_MISS, _P_DEAD, _P_SKIP = \
    range(7)

_MISS_ENTRY = (_P_MISS, None, None)
_DEAD_ENTRY = (_P_DEAD, None, None)
_SKIP_ENTRY = (_P_SKIP, None, None)


def run_flat(flat: FlatPlan, db: Database, context: EvalContext,
             delta, delta_position, id_spec: tuple, head_rows: set,
             produced: set) -> int:
    """Run a flat plan in id space, emitting head id rows; returns firings.

    ``id_spec`` is the head template in id terms — ``(True, slot)`` for a
    register, ``(False, id)`` for an already-interned constant; every
    solution instantiates it and the row lands in ``produced`` unless it
    is already in ``head_rows`` or ``produced`` (rule-application dedup,
    inlined here so no per-solution callback frame exists).

    A prepare pass resolves each literal step per call — never at
    compile time, since plans are cached per rule and shared across
    databases with different interners: the delta-vs-database source,
    probe-key constants through the non-creating ``id_of`` (a constant
    the interner has never seen cannot match any stored row, so the
    literal short-circuits to empty without growing the table), and the
    hash index itself via :meth:`Relation.index_for` — so index traffic
    is counted once per rule application on this path, while probes bind
    a plain ``dict.get``.  ``literal_scans``/``full_scans`` are counted
    exactly like the generic pipeline, plus ``id_joins`` per indexed
    id-space probe.
    """
    steps = flat.steps
    nsteps = len(steps)
    stats = context.stats
    interner = db.interner
    values = interner.values
    intern = interner.intern
    id_of = interner.ids.get

    # Specialized non-recursive loop for the hottest rule shape — two
    # positive, check-free literals joined through a single-column index
    # on a register the first literal binds (transitive closure, and most
    # EDB joins, compile to exactly this).  The shape analysis is cached
    # on the plan; only interner-dependent state (sources, key ids, the
    # index) resolves per call.
    if nsteps == 2:
        join2 = flat.join2
        if join2 is None:
            join2 = flat.join2 = _compile_join2(steps, id_spec)
        if join2 is not False:
            return _run_flat_join2(join2, steps, db, id_of, delta,
                                   delta_position, id_spec, head_rows,
                                   produced, stats)

    prepared: list = [None] * nsteps
    for number, step in enumerate(steps):
        if step.kind != 0:
            continue
        if delta is not None and step.index == delta_position:
            source = delta.get(step.pred)
            if source is None:
                prepared[number] = _SKIP_ENTRY if step.negated \
                    else _DEAD_ENTRY
                continue
        else:
            source = db.rel(step.pred)
        positions = step.key_positions
        if not positions:
            prepared[number] = (_P_SCAN, source.rows, None)
            continue
        const_key = step.key_const
        if const_key is not None:
            if step.key_single:
                key = id_of(const_key[0], _KEY_MISS)
            else:
                resolved = tuple(id_of(v, _KEY_MISS) for v in const_key)
                key = _KEY_MISS if _KEY_MISS in resolved else resolved
            if key is _KEY_MISS:
                prepared[number] = _MISS_ENTRY
            else:
                prepared[number] = (
                    _P_BUCKET, source.index_for(positions).get(key, ()), None)
            continue
        if step.single_var is not None:
            prepared[number] = (_P_PROBE_SV, source.index_for(positions).get,
                                step.single_var)
            continue
        base = step.key_template.copy()
        for template_slot, value in step.const_fills:
            resolved_id = id_of(value)
            if resolved_id is None:
                base = None
                break
            base[template_slot] = resolved_id
        prepared[number] = _MISS_ENTRY if base is None else (
            _P_PROBE_FILL, source.index_for(positions).get, base)

    registers = flat.nslots * [None]
    fired = 0

    def run(number: int) -> None:
        nonlocal fired
        if number == nsteps:
            fired += 1
            out = tuple([registers[payload] if is_slot else payload
                         for is_slot, payload in id_spec])
            if out not in head_rows and out not in produced:
                produced.add(out)
            return
        step = steps[number]
        kind = step.kind
        if kind == 1:  # comparison: assignment or filter, then continue
            if step.mode == _FLAT_CMP_ASSIGN:
                registers[step.slot] = intern(step.value(registers, values))
            elif not apply_comparison(step.op, step.left(registers, values),
                                      step.right(registers, values)):
                return
            run(number + 1)
            return
        if kind == 2:  # builtin call: bind/check outputs per result row
            inputs = tuple(g(registers, values) for g in step.inputs)
            following = number + 1
            for row in invoke_builtin(step.definition, inputs,
                                      context.payload):
                ok = True
                for (action, payload), value in zip(step.outputs, row):
                    if action == _OUT_BIND:
                        registers[payload] = intern(value)
                    elif action == _OUT_CHECK_SLOT:
                        if values[registers[payload]] != value:
                            ok = False
                            break
                    elif payload(registers, values) != value:
                        ok = False
                        break
                if ok:
                    run(following)
            return
        tag, access, extra = prepared[number]
        if tag == _P_SCAN:
            if stats is not None:
                stats.literal_scans += 1
                stats.full_scans += 1
            candidates = access
        elif tag == _P_PROBE_SV:
            if stats is not None:
                stats.literal_scans += 1
                stats.id_joins += 1
            # Hottest shape: single-column key from one register — the
            # register already holds the id, the probe is one dict.get.
            candidates = access(registers[extra])
            if candidates is None:
                candidates = ()
        elif tag == _P_BUCKET:
            if stats is not None:
                stats.literal_scans += 1
                stats.id_joins += 1
            candidates = access
        elif tag == _P_PROBE_FILL:
            if stats is not None:
                stats.literal_scans += 1
                stats.id_joins += 1
            filled = extra.copy()
            for template_slot, register in step.var_fills:
                filled[template_slot] = registers[register]
            missed = False
            for template_slot, getter in step.eval_fills:
                value_id = id_of(getter(registers, values))
                if value_id is None:
                    missed = True
                    break
                filled[template_slot] = value_id
            if missed:
                candidates = ()
            else:
                # Zero-copy bucket: rule application stages its output,
                # the database is not mutated while this plan runs.
                candidates = access(
                    filled[0] if step.key_single else tuple(filled))
                if candidates is None:
                    candidates = ()
        elif tag == _P_MISS:
            if stats is not None:
                stats.literal_scans += 1
                stats.id_joins += 1
            candidates = ()
        elif tag == _P_SKIP:
            run(number + 1)
            return
        else:  # _P_DEAD: positive literal with no delta source
            return
        arity = step.arity
        checks = step.checks
        free = step.free
        if step.negated:
            for row in candidates:
                if len(row) != arity:
                    continue
                for position, first in checks:
                    if row[position] != row[first]:
                        break
                else:
                    return  # a witness exists: the negation fails
            run(number + 1)
            return
        following = number + 1
        if checks:
            for row in candidates:
                if len(row) != arity:
                    continue
                ok = True
                for position, first in checks:
                    if row[position] != row[first]:
                        ok = False
                        break
                if not ok:
                    continue
                for position, register in free:
                    registers[register] = row[position]
                run(following)
        elif following == nsteps:
            # Terminal literal: emit inline, no frame per solution.
            for row in candidates:
                if len(row) != arity:
                    continue
                for position, register in free:
                    registers[register] = row[position]
                fired += 1
                out = tuple([registers[payload] if is_slot else payload
                             for is_slot, payload in id_spec])
                if out not in head_rows and out not in produced:
                    produced.add(out)
        else:
            for row in candidates:
                if len(row) != arity:
                    continue
                for position, register in free:
                    registers[register] = row[position]
                run(following)

    run(0)
    return fired


def _compile_join2(steps: tuple, id_spec: tuple):
    """Shape analysis for the two-literal fast join; False if ineligible.

    Eligible: two positive check-free literals, the first scanned or
    probed on a constant key, the second probed through a single-column
    index on a register the first binds.  Returns ``(key0_pos,
    emit_struct, simple)`` — ``key0_pos`` is the outer-row column feeding
    the probe; ``emit_struct`` entries are ``(0, pos)``/``(1, pos)``
    (head term from the outer/probed row) or ``(2, spec_index)`` (an
    interned head constant, resolved from the caller's ``id_spec`` so
    nothing database-specific is cached here — ``id_spec``'s *structure*
    is fixed per plan); ``simple`` is ``(left_pos, right_pos)`` for the
    dominant one-term-from-each-side binary head, else None.
    """
    step0, step1 = steps
    if not (step0.kind == 0 and step1.kind == 0
            and not step0.negated and not step1.negated
            and not step0.checks and not step1.checks
            and (not step0.key_positions or step0.key_const is not None)
            and step1.single_var is not None):
        return False
    reg0 = {register: position for position, register in step0.free}
    key0_pos = reg0.get(step1.single_var)
    if key0_pos is None:
        return False
    reg1 = {register: position for position, register in step1.free}
    emit_struct = []
    for spec_index, (is_slot, payload) in enumerate(id_spec):
        if not is_slot:
            emit_struct.append((2, spec_index))
        elif payload in reg1:
            emit_struct.append((1, reg1[payload]))
        elif payload in reg0:
            emit_struct.append((0, reg0[payload]))
        else:  # pragma: no cover - every register comes from some free
            return False
    simple = None
    if len(emit_struct) == 2:
        (src_a, pos_a), (src_b, pos_b) = emit_struct
        if src_a == 0 and src_b == 1:
            simple = (0, pos_a, pos_b)   # (row0[a], row1[b])
        elif src_a == 1 and src_b == 0:
            simple = (1, pos_a, pos_b)   # (row1[a], row0[b])
    return key0_pos, tuple(emit_struct), simple


def _run_flat_join2(join2: tuple, steps: tuple, db: Database, id_of,
                    delta, delta_position, id_spec: tuple,
                    head_rows: set, produced: set, stats) -> int:
    """The two-literal id-join inner loop (see :func:`run_flat`).

    Solutions flow outer row → index bucket → head row with no register
    list, no recursion and no per-solution frames.  Stats are batched:
    one scan/probe for the outer literal, one probe per outer row that
    reaches the inner literal — identical totals to the general walk.
    """
    key0_pos, emit_struct, simple = join2
    step0, step1 = steps
    if delta is not None and step0.index == delta_position:
        source0 = delta.get(step0.pred)
        if source0 is None:
            return 0    # dead positive literal: uncounted, like the walk
    else:
        source0 = db.rel(step0.pred)
    if delta is not None and step1.index == delta_position:
        source1 = delta.get(step1.pred)
    else:
        source1 = db.rel(step1.pred)
    positions0 = step0.key_positions
    if positions0:
        const_key = step0.key_const
        if step0.key_single:
            key = id_of(const_key[0], _KEY_MISS)
        else:
            resolved = tuple(id_of(v, _KEY_MISS) for v in const_key)
            key = _KEY_MISS if _KEY_MISS in resolved else resolved
        scan0 = False
        rows0 = () if key is _KEY_MISS \
            else source0.index_for(positions0).get(key, ())
    else:
        scan0 = True
        rows0 = source0.rows
    if source1 is None:
        # Dead inner literal: the outer literal still executed once.
        if stats is not None:
            stats.literal_scans += 1
            if scan0:
                stats.full_scans += 1
            else:
                stats.id_joins += 1
        return 0
    bucket_get = source1.index_for(step1.key_positions).get
    arity0 = step0.arity
    arity1 = step1.arity

    fired = 0
    outer_rows = 0
    if simple is not None:
        # Binary head with one term from each side: build the out tuple
        # inline, hoisting the outer row's term out of the bucket loop.
        mirrored, pos_a, pos_b = simple
        if mirrored:
            for row0 in rows0:
                if len(row0) != arity0:
                    continue
                outer_rows += 1
                bucket = bucket_get(row0[key0_pos])
                if bucket is None:
                    continue
                right = row0[pos_b]
                for row1 in bucket:
                    if len(row1) != arity1:
                        continue
                    fired += 1
                    out = (row1[pos_a], right)
                    if out in head_rows or out in produced:
                        continue
                    produced.add(out)
        else:
            for row0 in rows0:
                if len(row0) != arity0:
                    continue
                outer_rows += 1
                bucket = bucket_get(row0[key0_pos])
                if bucket is None:
                    continue
                left = row0[pos_a]
                for row1 in bucket:
                    if len(row1) != arity1:
                        continue
                    fired += 1
                    out = (left, row1[pos_b])
                    if out in head_rows or out in produced:
                        continue
                    produced.add(out)
    else:
        emit_plan = tuple(
            (2, id_spec[payload][1]) if src == 2 else (src, payload)
            for src, payload in emit_struct)
        for row0 in rows0:
            if len(row0) != arity0:
                continue
            outer_rows += 1
            bucket = bucket_get(row0[key0_pos])
            if bucket is None:
                continue
            for row1 in bucket:
                if len(row1) != arity1:
                    continue
                fired += 1
                out = tuple([row0[p] if s == 0 else
                             row1[p] if s == 1 else p
                             for s, p in emit_plan])
                if out in head_rows or out in produced:
                    continue
                produced.add(out)
    if stats is not None:
        stats.literal_scans += 1 + outer_rows
        stats.id_joins += outer_rows + (0 if scan0 else 1)
        if scan0:
            stats.full_scans += 1
    return fired


@dataclass
class Plan:
    """An execution order for a conjunction; built once, reused every round.

    ``steps`` keeps the historical ``(item_index, item)`` shape; ``ops``
    carries the compiled executor for each step.  ``assumes`` is the
    initially-bound variable set the compilation relied on — reuse with a
    different binding shape makes :func:`solve` rebuild.  ``reordered`` is
    True when the cost model picked a different positive-literal order
    than the boundness-greedy baseline would have.
    """

    steps: tuple
    ops: tuple = ()
    assumes: frozenset = frozenset()
    reordered: bool = False
    _flat: Any = False

    def __iter__(self):
        return iter(self.steps)

    def flat(self) -> Optional[FlatPlan]:
        """The register-compiled form, or None when unsupported (cached)."""
        if self._flat is False:
            self._flat = _compile_flat(self)
        return self._flat


def cache_plan_bounded(cache: dict, key, plan, limit: int,
                       stats: Any = None) -> None:
    """Insert into a FIFO-bounded plan cache, evicting the oldest entry.

    Shared by :class:`~repro.datalog.engine.EngineRule`'s band-keyed
    cache and the workspace constraint-plan cache, so the eviction
    policy (and its ``plans_evicted`` accounting) cannot drift between
    the two.  FIFO rather than clear-all: dropping everything would
    thrash callers whose many (delta position, band) keys are all still
    live.
    """
    if len(cache) >= limit:
        cache.pop(next(iter(cache)))
        if stats is not None:
            stats.plans_evicted += 1
    cache[key] = plan


def relation_sizes(items: tuple, db: Optional[Database]) -> Optional[dict]:
    """Live statistics of the positive body predicates (cost-model input).

    Values are the live :class:`Relation` objects themselves (so the cost
    model can ask for per-column distinct counts), or ``0`` for predicates
    with no relation yet.  Returns None — "use the greedy heuristic" —
    when there is no database or every body relation is below
    :data:`_COST_MODEL_MIN_SIZE`.
    """
    if db is None:
        return None
    sizes: dict[str, Any] = {}
    worth_it = False
    for item in items:
        if isinstance(item, Literal) and not item.negated:
            relation = db.get(item.atom.pred)
            if relation is None:
                sizes[item.atom.pred] = 0
            else:
                sizes[item.atom.pred] = relation
                if len(relation) >= _COST_MODEL_MIN_SIZE:
                    worth_it = True
    return sizes if worth_it else None


def build_plan(items: tuple, initially_bound: frozenset = frozenset(),
               first: Optional[int] = None,
               builtins: Optional[BuiltinRegistry] = None,
               sizes: Optional[dict] = None) -> Plan:
    """Order ``items`` for evaluation and compile per-step access paths.

    ``first`` optionally forces one positive literal to the front (the
    semi-naive delta position).  ``sizes`` maps positive body predicates to
    their live :class:`Relation` objects (or plain cardinalities); when
    provided, positive literals are chosen by estimated scan cost — with
    per-column distinct-count selectivities where a relation is available —
    instead of bound-column count alone.  Raises
    :class:`SafetyError` when some item can never have its inputs bound
    (unsafe rule).
    """
    count = len(items)
    remaining = list(range(count))
    bound: set[str] = set(initially_bound)
    order: list[int] = []
    ops: list = []
    reordered = False

    # Per-item precomputation (build_plan runs on every plan-cache miss,
    # so the scheduling loop must not re-derive variable sets per probe).
    item_vars: list[set] = [
        {v.name for v in item.variables()} for item in items
    ]
    positive: list[bool] = [
        isinstance(item, Literal) and not item.negated for item in items
    ]
    comp_sides: dict[int, tuple] = {}
    builtin_defs: dict[int, Any] = {}
    builtin_input_vars: dict[int, list] = {}
    for index, item in enumerate(items):
        if isinstance(item, Comparison):
            comp_sides[index] = (term_vars(item.left), term_vars(item.right))
        elif isinstance(item, BuiltinCall):
            definition = builtins.lookup(item.name) if builtins else None
            if definition is None:
                raise SafetyError(f"unknown builtin {item.name!r}")
            if definition.arity != len(item.args):
                raise SafetyError(
                    f"builtin {item.name!r} expects {definition.arity} args, "
                    f"got {len(item.args)}"
                )
            builtin_defs[index] = definition
            builtin_input_vars[index] = [
                term_vars(item.args[position])
                for position in definition.input_positions
            ]
        elif not isinstance(item, Literal):
            raise TypeError(f"unexpected body item {item!r}")  # pragma: no cover

    # Variables occurring only inside one negated literal are existential
    # within the negation ("no matching tuple exists"), e.g. the paper's
    # dd4 constraint `... -> !delegates(me,_,P)`.  A negated literal is
    # ready once its *shared* variables are bound.
    occurrences: dict[str, int] = {}
    for vars_in in item_vars:
        for name in vars_in:
            occurrences[name] = occurrences.get(name, 0) + 1
    shared_vars: dict[int, set] = {
        index: {
            name for name in item_vars[index]
            if occurrences[name] > 1 or name in initially_bound
        }
        for index, item in enumerate(items)
        if isinstance(item, Literal) and item.negated
    }

    def ready(index: int) -> bool:
        item = items[index]
        if isinstance(item, Literal):
            if not item.negated:
                return True
            return shared_vars[index] <= bound
        if isinstance(item, Comparison):
            left_vars, right_vars = comp_sides[index]
            if item.op == "=":
                if left_vars <= bound and right_vars <= bound:
                    return True
                # one side may be a single unbound variable (assignment mode)
                if left_vars <= bound and isinstance(item.right, Variable):
                    return True
                if right_vars <= bound and isinstance(item.left, Variable):
                    return True
                return False
            return left_vars | right_vars <= bound
        for input_vars in builtin_input_vars[index]:
            if not input_vars <= bound:
                return False
        return True

    def bind_outputs(index: int) -> None:
        item = items[index]
        if isinstance(item, Literal):
            if not item.negated:
                bound.update(item_vars[index])
        elif isinstance(item, Comparison):
            if item.op == "=":
                bound.update(item_vars[index])
        else:
            definition = builtin_defs[index]
            for position in definition.output_positions:
                bound.update(term_vars(item.args[position]))

    def compile_op(index: int):
        """Compile ``items[index]`` against the *current* bound set."""
        item = items[index]
        if isinstance(item, Literal):
            return _LiteralOp(index, item, bound)
        if isinstance(item, Comparison):
            return _CompareOp(index, item, bound)
        return _BuiltinOp(index, item, builtin_defs[index])

    def schedule(index: int) -> None:
        ops.append(compile_op(index))
        order.append(index)
        remaining.remove(index)
        bind_outputs(index)

    # Per-positive-literal cost-model inputs: for each argument position,
    # either None (statically ground: constants, var-free terms), a
    # variable name, or the term itself (an Expr whose vars may be bound
    # later — checked live against the current bound set).
    lit_arg_info: dict[int, list] = {}
    if sizes is not None:
        for index, item in enumerate(items):
            if not positive[index]:
                continue
            info: list = []
            for position, term in enumerate(item.atom.all_args):
                if isinstance(term, Variable):
                    info.append((position, term.name))
                elif isinstance(term, Constant) or not term_vars(term):
                    info.append((position, None))
                else:
                    info.append((position, term))
            lit_arg_info[index] = info

    def scan_cost(index: int) -> float:
        """Estimated rows touched after index-probing the bound columns.

        Each bound column keeps ``1/distinct`` of the rows when the live
        relation can report its distinct count, falling back to the fixed
        :data:`_BOUND_COLUMN_SELECTIVITY` otherwise (missing relation).
        """
        source = sizes.get(items[index].atom.pred, 0)
        relation = None if source.__class__ is int else source
        cost = float(len(relation) if relation is not None else source)
        if not cost:
            return 0.0
        for position, entry in lit_arg_info[index]:
            if entry is None:
                pass  # statically ground: always bound
            elif entry.__class__ is str:
                if entry not in bound:
                    continue
            elif not term_vars(entry) <= bound:
                continue
            if relation is not None:
                distinct = relation.distinct_count(position)
                cost *= 1.0 / distinct if distinct > 0 else \
                    _BOUND_COLUMN_SELECTIVITY
            else:
                cost *= _BOUND_COLUMN_SELECTIVITY
        return cost

    if first is not None:
        schedule(first)

    while remaining:
        # 1. flush every ready filter/binder that is not a positive literal
        progressed = True
        while progressed:
            progressed = False
            for index in list(remaining):
                if not positive[index] and ready(index):
                    schedule(index)
                    progressed = True
        if not remaining:
            break
        # 2. choose the next positive literal: cheapest estimated scan when
        # cardinalities are known, else most bound columns; ties (and the
        # no-cost-model path) fall back to boundness then source order.
        candidates = [i for i in remaining if positive[i]]
        if not candidates:
            unready = [repr(items[i]) for i in remaining]
            raise SafetyError(f"unsafe conjunction; cannot schedule: {unready}")

        if len(candidates) == 1:
            schedule(candidates[0])
            continue
        ranked = [(len(item_vars[i] & bound), i) for i in candidates]
        greedy = max(ranked, key=lambda pair: (pair[0], -pair[1]))[1]
        best = greedy
        if sizes is not None:
            cheapest, _, candidate = min(
                (scan_cost(i), -columns, i) for columns, i in ranked)
            if (candidate != greedy
                    and cheapest * _REORDER_MARGIN < scan_cost(greedy)):
                best = candidate
                reordered = True
        schedule(best)

    return Plan(tuple((i, items[i]) for i in order), tuple(ops),
                frozenset(initially_bound), reordered)


# ---------------------------------------------------------------------------
# Conjunction solving
# ---------------------------------------------------------------------------

def solve(items: tuple, db: Database, context: EvalContext,
          bindings: Optional[Bindings] = None,
          plan: Optional[Plan] = None,
          delta: Optional[dict[str, Relation]] = None,
          delta_position: Optional[int] = None) -> Iterator[Bindings]:
    """Enumerate all satisfying assignments of a conjunction.

    ``delta``/``delta_position`` implement semi-naive evaluation: the
    literal at ``delta_position`` scans the delta relation instead of the
    full one.  A supplied ``plan`` is honoured only when its compiled
    binding assumptions match ``bindings``; otherwise a fresh cost-based
    plan is built from the live relation sizes.
    """
    bindings = dict(bindings or {})
    if plan is None or plan.assumes != bindings.keys():
        plan = build_plan(items, frozenset(bindings), first=delta_position,
                          builtins=context.builtins,
                          sizes=relation_sizes(items, db))
        stats = context.stats
        if stats is not None:
            stats.plans_built += 1
            if plan.reordered:
                stats.reorder_wins += 1

    # Chain the compiled ops back-to-front into continuation closures so a
    # solution bubbles through one generator frame per step, with no
    # per-step dispatch trampoline.
    def tail(current: Bindings) -> Iterator[Bindings]:
        yield current

    cont = tail
    for op in reversed(plan.ops):
        def cont(current, _run=op.run, _cont=cont):
            return _run(current, _cont, db, context, delta, delta_position)

    yield from cont(bindings)


_MISSING = object()


def bindable_vars(items: tuple, builtins: Optional[BuiltinRegistry] = None) -> set:
    """Variables a conjunction can bind (positive literals, '=', outputs)."""
    bound: set = set()
    for item in items:
        if isinstance(item, Literal) and not item.negated:
            bound.update(v.name for v in item.variables())
        elif isinstance(item, Comparison) and item.op == "=":
            bound.update(term_vars(item.left) | term_vars(item.right))
        elif isinstance(item, BuiltinCall) and builtins is not None:
            definition = builtins.lookup(item.name)
            if definition is not None:
                for position in definition.output_positions:
                    if position < len(item.args):
                        bound.update(term_vars(item.args[position]))
    return bound


def check_rule_safety(rule, builtins: Optional[BuiltinRegistry] = None) -> None:
    """Raise :class:`SafetyError` for unschedulable bodies or unbound heads.

    Variables inside head-position quote templates are exempt: they may
    legitimately remain variables of the generated rule.
    """
    build_plan(rule.body, builtins=builtins)
    bound = bindable_vars(rule.body, builtins)
    if rule.agg is not None:
        bound.add(rule.agg.result.name)
    for head in rule.heads:
        for term in head.all_args:
            if isinstance(term, Quote):
                continue
            missing = term_vars(term) - bound
            if missing:
                raise SafetyError(
                    f"head variable(s) {sorted(missing)} of {head.pred!r} "
                    f"are not bound by the rule body (not range-restricted)"
                )


# ---------------------------------------------------------------------------
# Head instantiation
# ---------------------------------------------------------------------------

def instantiate_head(atom: Atom, bindings: Bindings, context: EvalContext) -> tuple:
    """Produce the ground tuple for a rule head under ``bindings``."""
    try:
        return tuple(eval_term(term, bindings, context) for term in atom.all_args)
    except Unbound as exc:
        raise SafetyError(
            f"head variable {exc.args[0]!r} of {atom.pred} is not bound by the body"
        ) from exc


def rule_head_vars(rule: Rule) -> set[str]:
    names: set[str] = set()
    for head in rule.heads:
        names.update(v.name for v in head.variables())
    return names
