"""Predicate dependency analysis and stratification.

LogicBlox (and our engine) evaluates bottom-up with stratified negation and
aggregation: a predicate may only be negated or aggregated over once its
stratum is fully computed.  We build the predicate dependency graph, find
strongly connected components with an iterative Tarjan, and assign stratum
numbers; a negative (or aggregate) edge inside an SCC is a
:class:`StratificationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .errors import StratificationError
from .terms import Literal, Rule


@dataclass
class DepGraph:
    """Predicate dependency graph: edges body-pred → head-pred."""

    preds: set = field(default_factory=set)
    positive: dict = field(default_factory=dict)   # pred -> set of preds it feeds
    negative: dict = field(default_factory=dict)

    def add_pred(self, pred: str) -> None:
        self.preds.add(pred)
        self.positive.setdefault(pred, set())
        self.negative.setdefault(pred, set())

    def add_edge(self, source: str, target: str, negative: bool) -> None:
        self.add_pred(source)
        self.add_pred(target)
        if negative:
            self.negative[source].add(target)
        else:
            self.positive[source].add(target)


def dependency_graph(rules: Iterable[Rule]) -> DepGraph:
    """Build the dependency graph of a (single-head) rule collection.

    Aggregate rules contribute *negative* edges from every body predicate:
    the aggregate value is only meaningful once its inputs are complete,
    exactly like negation.
    """
    graph = DepGraph()
    for rule in rules:
        for head in rule.heads:
            graph.add_pred(head.pred)
            for item in rule.body:
                if not isinstance(item, Literal):
                    continue
                negative = item.negated or rule.agg is not None
                graph.add_edge(item.atom.pred, head.pred, negative)
    return graph


def tarjan_sccs(graph: DepGraph) -> list[frozenset]:
    """Strongly connected components, iteratively (no recursion limit)."""
    index_counter = 0
    stack: list[str] = []
    on_stack: set[str] = set()
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    result: list[frozenset] = []

    def successors(node: str) -> list[str]:
        return sorted(graph.positive.get(node, ()) | graph.negative.get(node, ()))

    for root in sorted(graph.preds):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors(node)
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


def cycle_path(graph: DepGraph, start: str, goal: str,
               component: frozenset) -> list[str]:
    """Shortest dependency path ``start → … → goal`` inside one SCC (BFS
    over positive+negative edges; both endpoints are in the component, so
    a path exists by the definition of an SCC).  Public because the
    analyzer's dataflow passes render their cycles with it, mirroring
    :func:`find_negative_cycle`'s presentation."""
    if start == goal:
        return [start]
    frontier = [start]
    parent: dict[str, str] = {start: start}
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            successors = (graph.positive.get(node, set())
                          | graph.negative.get(node, set()))
            for succ in sorted(successors):
                if succ not in component or succ in parent:
                    continue
                parent[succ] = node
                if succ == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                next_frontier.append(succ)
        frontier = next_frontier
    return [start, goal]  # pragma: no cover - SCC guarantees a path


#: Backwards-compatible private alias (pre-analyzer callers).
_cycle_path = cycle_path


def find_negative_cycle(graph: DepGraph) -> Optional[tuple[str, str, list[str]]]:
    """The first negative edge inside a cycle, with the cycle spelled out.

    Returns ``(source, target, cycle)`` where ``source -!-> target`` is the
    offending negative dependency and ``cycle`` is the predicate path
    ``target → … → source → target`` that closes the loop, or ``None``
    when the program is stratifiable.
    """
    sccs = tarjan_sccs(graph)
    component_of: dict[str, frozenset] = {}
    for component in sccs:
        for pred in component:
            component_of[pred] = component
    for source in sorted(graph.negative):
        for target in sorted(graph.negative[source]):
            if component_of[source] is component_of[target]:
                path = cycle_path(graph, target, source,
                                  component_of[source])
                return source, target, path + [target]
    return None


def assign_strata(graph: DepGraph) -> dict[str, int]:
    """Map each predicate to its stratum number (0-based).

    Raises :class:`StratificationError` if a negative edge lies inside a
    cycle (negation/aggregation through recursion); the message spells out
    the offending cycle predicate by predicate.
    """
    sccs = tarjan_sccs(graph)
    component_of: dict[str, int] = {}
    for component_id, component in enumerate(sccs):
        for pred in component:
            component_of[pred] = component_id

    # Negative self-dependency check.
    offending = find_negative_cycle(graph)
    if offending is not None:
        source, target, cycle = offending
        rendered = " -> ".join(cycle)
        raise StratificationError(
            f"predicate {target!r} depends negatively on {source!r} "
            f"inside a recursive cycle ({rendered}, where {source!r} "
            f"feeds {target!r} through negation or aggregation); "
            f"the program is not stratifiable"
        )

    # Tarjan emits SCCs in reverse topological order (dependents first);
    # process them reversed so every source component is assigned before
    # the components that read it.
    strata: dict[int, int] = {}
    for component_id in reversed(range(len(sccs))):
        stratum = 0
        for pred in sccs[component_id]:
            for source in graph.preds:
                if pred in graph.positive.get(source, ()):
                    if component_of[source] != component_id:
                        stratum = max(stratum, strata.get(component_of[source], 0))
                if pred in graph.negative.get(source, ()):
                    stratum = max(stratum, strata.get(component_of[source], 0) + 1)
        strata[component_id] = stratum

    return {pred: strata[component_of[pred]] for pred in graph.preds}


@dataclass
class Stratum:
    """One evaluation layer: its predicates and the rules defining them."""

    number: int
    preds: frozenset
    rules: list            # non-aggregate rules
    agg_rules: list        # aggregate rules (evaluated once, first)
    _reads: Optional[frozenset] = None  # lazily cached body predicates

    @property
    def has_negation(self) -> bool:
        return any(
            isinstance(item, Literal) and item.negated
            for rule in self.rules
            for item in rule.body
        )

    @property
    def nonmonotone(self) -> bool:
        """True when incremental insertion cannot use plain semi-naive."""
        return self.has_negation or bool(self.agg_rules)

    @property
    def reads(self) -> frozenset:
        """Every predicate any of this stratum's rules reads (cached —
        the incremental propagators consult this on every delta batch)."""
        if self._reads is None:
            names: set = set()
            for rule in list(self.rules) + list(self.agg_rules):
                names |= rule.body_preds()
            self._reads = frozenset(names)
        return self._reads


def stratify(rules: list) -> list[Stratum]:
    """Partition single-head rules into an ordered list of strata."""
    graph = dependency_graph(rules)
    levels = assign_strata(graph)
    by_level: dict[int, list] = {}
    for rule in rules:
        level = max(levels[head.pred] for head in rule.heads)
        by_level.setdefault(level, []).append(rule)
    strata = []
    for level in sorted(by_level):
        level_rules = by_level[level]
        preds = frozenset(head.pred for rule in level_rules for head in rule.heads)
        strata.append(Stratum(
            number=level,
            preds=preds,
            rules=[r for r in level_rules if r.agg is None],
            agg_rules=[r for r in level_rules if r.agg is not None],
        ))
    return strata
