"""Abstract syntax for the LogicBlox-style Datalog dialect used by LBTrust.

The grammar (paper sections 2.1 and 3.2-3.4) extends textbook Datalog with:

* schema constraints written ``F1 -> F2.`` (including bare declarations
  ``p(X) -> .``),
* arbitrary nesting of conjunction/disjunction/negation in bodies
  (normalized to DNF before evaluation, see :mod:`repro.datalog.logic`),
* aggregation ``h(G,N) <- agg<<N = count(X)>> body.``,
* partitioned ("curried") atoms ``p[K1,...](X1,...)``,
* quoted code terms ``[| head <- body. |]`` with meta-variables and Kleene
  stars, used for meta-programming (paper section 3.3),
* the ``me`` keyword denoting the local principal,
* arithmetic expressions and infix comparisons.

Everything here is an immutable value object: terms hash and compare
structurally, which the unifier, the rule-interning registry, and the
hypothesis test-suite all rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Union


# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Span:
    """A source position (1-based line and column) attached to parsed nodes.

    Spans ride along as ``compare=False`` fields so structural equality and
    hashing — which the unifier, the rule-interning registry, and the wire
    codecs rely on — are unaffected: two alpha-equal rules parsed from
    different places still compare equal.  The static analyzer
    (:mod:`repro.analysis`) turns spans into ``file:line:col`` diagnostics.
    """

    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"


# ---------------------------------------------------------------------------
# Sentinel values
# ---------------------------------------------------------------------------

class MeToken:
    """Singleton sentinel standing for the local principal (``me``).

    The parser produces ``Constant(ME)``; workspace loading substitutes the
    owning principal's name before any evaluation happens, so the engine
    itself never sees the sentinel.
    """

    _instance: Optional["MeToken"] = None

    def __new__(cls) -> "MeToken":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "me"


ME = MeToken()


@dataclass(frozen=True)
class RuleRef:
    """A first-class reference to an interned rule (rules-as-data).

    ``rid`` is assigned by a :class:`repro.meta.registry.RuleRegistry`;
    equality of refs within one registry implies structural (alpha-renamed)
    equality of the underlying rules.  Refs print as ``$r<id>``.
    """

    rid: int

    def __repr__(self) -> str:
        return f"$r{self.rid}"


@dataclass(frozen=True)
class PredPartition:
    """A ground value naming one partition of a curried predicate.

    ``predNode(export[alice], n1)`` stores the tuple
    ``(PredPartition("export", ("alice",)), "n1")``.
    """

    pred: str
    keys: tuple

    def __repr__(self) -> str:
        inner = ",".join(repr(k) for k in self.keys)
        return f"{self.pred}[{inner}]"


#: Python types allowed as constant values inside relations.  (Also
#: ``PatternValue``, defined below — patterns are first-class values.)
Value = Union[str, int, float, bool, bytes, tuple, RuleRef, PredPartition, MeToken]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

class Term:
    """Base class for argument positions of atoms."""

    __slots__ = ()

    def variables(self) -> Iterator["Variable"]:
        """Yield every variable occurring in this term (with repeats)."""
        return iter(())


@dataclass(frozen=True)
class Variable(Term):
    """A logic variable.  Names conventionally start uppercase or ``_``."""

    name: str

    def variables(self) -> Iterator["Variable"]:
        yield self

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant(Term):
    """A ground value (string, number, bool, RuleRef, …)."""

    value: Value

    def variables(self) -> Iterator[Variable]:
        return iter(())

    def __repr__(self) -> str:
        return repr(self.value)


_ARITH_OPS = {"+", "-", "*", "/", "%"}


@dataclass(frozen=True)
class Expr(Term):
    """A binary arithmetic expression, e.g. ``N-1`` in rule dd3."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def variables(self) -> Iterator[Variable]:
        yield from self.left.variables()
        yield from self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class PartitionTerm(Term):
    """A partition-reference term such as ``export[P]`` (paper section 3.5).

    Evaluates to a :class:`PredPartition` value once the key terms are bound.
    """

    pred: str
    keys: tuple  # tuple[Term, ...]

    def variables(self) -> Iterator[Variable]:
        for key in self.keys:
            yield from key.variables()

    def __repr__(self) -> str:
        inner = ",".join(repr(k) for k in self.keys)
        return f"{self.pred}[{inner}]"


# ---------------------------------------------------------------------------
# Quoted code (meta-programming)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Star:
    """A Kleene star inside a quoted pattern: ``T*`` or ``A*``.

    ``var`` is the (meta-)variable the star was written on; it is retained
    for printing but a star imposes no join constraints when the pattern is
    compiled (paper section 3.3: the star "represents a repetition of the
    pattern preceding it").
    """

    var: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.var or ''}*"


#: One argument slot of an atom pattern: a concrete term or a star.
ArgElem = Union[Term, Star]


@dataclass(frozen=True)
class AtomPattern:
    """An atom inside a quoted code term.

    ``functor`` is either a concrete predicate name (str) or a Variable
    meta-variable ranging over predicates (like ``P`` in ``P(T*)``).
    ``args`` may mix terms and stars.  A bare meta-variable standing for a
    whole atom (the ``A`` in ``A <- P(T*)``) is represented as functor=
    Variable with ``args=None``.
    """

    functor: Union[str, Variable]
    args: Optional[tuple] = None  # tuple[ArgElem, ...] | None
    negated: bool = False

    def is_bare_metavar(self) -> bool:
        return isinstance(self.functor, Variable) and self.args is None

    def variables(self) -> Iterator[Variable]:
        if isinstance(self.functor, Variable):
            yield self.functor
        for arg in self.args or ():
            if isinstance(arg, Term):
                yield from arg.variables()

    def __repr__(self) -> str:
        neg = "!" if self.negated else ""
        if self.args is None:
            return f"{neg}{self.functor!r}"
        inner = ",".join(repr(a) for a in self.args)
        name = self.functor if isinstance(self.functor, str) else repr(self.functor)
        return f"{neg}{name}({inner})"


@dataclass(frozen=True)
class StarLits:
    """A Kleene star over the remaining body literals (``A*``)."""

    var: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.var or ''}*"


@dataclass(frozen=True)
class EqPattern:
    """A pattern binding ``Var = [| ... |]`` inside a quoted rule body."""

    var: Variable
    quote: "Quote"

    def variables(self) -> Iterator[Variable]:
        yield self.var
        yield from self.quote.variables()

    def __repr__(self) -> str:
        return f"{self.var!r} = {self.quote!r}"


#: One element of a quoted rule body.
PatternLit = Union[AtomPattern, StarLits, EqPattern]


@dataclass(frozen=True)
class RulePattern:
    """The contents of a quoted code term: head atoms and body elements.

    A quoted *fact* (``[| creditOK(C). |]``) has ``has_arrow=False`` and an
    empty body; it only matches rules with empty bodies.  A quoted pattern
    with ``<-`` matches any rule containing at least the given head/body
    structure ("at least" semantics; see DESIGN.md section 6).
    """

    heads: tuple  # tuple[AtomPattern, ...]
    body: tuple = ()  # tuple[PatternLit, ...]
    has_arrow: bool = False

    def variables(self) -> Iterator[Variable]:
        for head in self.heads:
            yield from head.variables()
        for lit in self.body:
            if isinstance(lit, (AtomPattern, EqPattern)):
                yield from lit.variables()

    def __repr__(self) -> str:
        heads = ", ".join(repr(h) for h in self.heads)
        if not self.has_arrow and not self.body:
            return f"{heads}."
        body = ", ".join(repr(b) for b in self.body)
        return f"{heads} <- {body}."


@dataclass(frozen=True)
class PatternValue:
    """A quoted pattern as a first-class *value* (rules-about-patterns).

    When a rule containing a body quote is reified, the quote argument's
    term gets ``value(T, PatternValue(pattern))`` in addition to
    ``quoteterm(T)``, so meta-rules like the Binder pull rewrite (pull0)
    can extract *what* a rule imports and ship that request across
    contexts.  Equality is structural on the underlying pattern.
    """

    pattern: "RulePattern"

    def __repr__(self) -> str:
        return f"[| {self.pattern!r} |]"


@dataclass(frozen=True)
class Quote(Term):
    """A quoted code term ``[| ... |]``.

    In *body* position the quote is a pattern: the compiler replaces it by a
    fresh variable plus joins over the meta-model (paper section 3.3).  In
    *head* position it is a template: at derivation time the bound variables
    are substituted and the resulting rule is interned, yielding a
    :class:`RuleRef` value.
    """

    pattern: RulePattern

    def variables(self) -> Iterator[Variable]:
        yield from self.pattern.variables()

    def __repr__(self) -> str:
        return f"[| {self.pattern!r} |]"


# ---------------------------------------------------------------------------
# Atoms, literals, body items
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Atom:
    """``pred[keys](args)`` — a predicate applied to terms.

    ``keys`` is the (possibly empty) partition-key tuple of a curried atom
    (paper section 3.4).  Storage and evaluation flatten the keys in front
    of the arguments; the catalog records the key arity for placement.
    """

    pred: str
    args: tuple = ()  # tuple[Term, ...]
    keys: tuple = ()  # tuple[Term, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def all_args(self) -> tuple:
        """Partition keys followed by regular arguments (storage layout)."""
        return self.keys + self.args

    @property
    def arity(self) -> int:
        return len(self.keys) + len(self.args)

    def variables(self) -> Iterator[Variable]:
        for term in self.all_args:
            yield from term.variables()

    def with_all_args(self, new_args: Iterable[Term]) -> "Atom":
        """Rebuild this atom with the same shape but new flattened args."""
        new_args = tuple(new_args)
        nkeys = len(self.keys)
        return Atom(self.pred, new_args[nkeys:], new_args[:nkeys],
                    span=self.span)

    def __repr__(self) -> str:
        keys = f"[{','.join(repr(k) for k in self.keys)}]" if self.keys else ""
        args = ",".join(repr(a) for a in self.args)
        return f"{self.pred}{keys}({args})"


@dataclass(frozen=True)
class Literal:
    """A possibly-negated relational atom in a rule body."""

    atom: Atom
    negated: bool = False
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    def __repr__(self) -> str:
        return ("!" if self.negated else "") + repr(self.atom)


_COMPARE_OPS = {"=", "!=", "<", "<=", ">", ">="}


@dataclass(frozen=True)
class Comparison:
    """An infix comparison between two terms, e.g. ``N >= 3`` or ``X != me``.

    ``=`` doubles as an assignment when one side is an unbound variable and
    the other side is fully bound (the engine picks the mode at run time).
    """

    op: str
    left: Term
    right: Term
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.op not in _COMPARE_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> Iterator[Variable]:
        yield from self.left.variables()
        yield from self.right.variables()

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class BuiltinCall:
    """A call to a registered builtin predicate, e.g. ``rsasign(R,S,K)``.

    Whether a body atom is a builtin call is decided at compile time by
    looking the functor up in the workspace's builtin registry; the parser
    always produces :class:`Literal` and the compiler rewrites.
    """

    name: str
    args: tuple  # tuple[Term, ...]

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def __repr__(self) -> str:
        args = ",".join(repr(a) for a in self.args)
        return f"{self.name}({args})"


#: One element of a compiled (DNF) rule body.
BodyItem = Union[Literal, Comparison, BuiltinCall]


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

AGG_FUNCS = ("count", "total", "min", "max")


@dataclass(frozen=True)
class Aggregate:
    """``agg<<Result = func(Over)>>`` prefix of an aggregate rule (wd2)."""

    func: str
    result: Variable
    over: Term

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise ValueError(f"unknown aggregate function {self.func!r}")

    def __repr__(self) -> str:
        return f"agg<<{self.result!r} = {self.func}({self.over!r})>>"


# ---------------------------------------------------------------------------
# Rules, constraints, programs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """A (possibly multi-head) rule: ``h1, h2 <- body.`` or a fact ``h.``

    ``body`` is a tuple of :data:`BodyItem` — disjunction has already been
    split away by DNF normalization in the parser.  ``agg`` is the optional
    aggregate prefix.  ``label`` is the optional source label (``exp1:``).
    """

    heads: tuple  # tuple[Atom, ...]
    body: tuple = ()  # tuple[BodyItem, ...]
    agg: Optional[Aggregate] = None
    label: Optional[str] = None
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def head(self) -> Atom:
        """The single head (raises if the rule is multi-headed)."""
        if len(self.heads) != 1:
            raise ValueError(f"rule has {len(self.heads)} heads, expected 1")
        return self.heads[0]

    def is_fact(self) -> bool:
        return not self.body and self.agg is None

    def variables(self) -> Iterator[Variable]:
        for head in self.heads:
            yield from head.variables()
        if self.agg is not None:
            yield self.agg.result
            yield from self.agg.over.variables()
        for item in self.body:
            yield from item.variables()

    def __repr__(self) -> str:
        heads = ", ".join(repr(h) for h in self.heads)
        if self.is_fact():
            return f"{heads}."
        parts = []
        if self.agg is not None:
            parts.append(repr(self.agg))
        parts.extend(repr(item) for item in self.body)
        return f"{heads} <- {' '.join(parts[:1])}{', '.join([''] + parts[1:]) if len(parts) > 1 else ''}."


@dataclass(frozen=True)
class Constraint:
    """A schema constraint ``F1 -> F2.`` (paper section 3.2).

    Logical meaning: ``fail() <- F1, !(F2)``.  ``lhs`` is a DNF list of
    conjunctions (each a tuple of body items); ``rhs`` likewise, and may be
    empty (a bare declaration ``p(X) -> .``, which never fails and only
    declares types/arity).  The original source text is kept for error
    messages.
    """

    lhs: tuple  # tuple[tuple[BodyItem, ...], ...]  (DNF alternatives)
    rhs: tuple  # tuple[tuple[BodyItem, ...], ...]  (DNF alternatives)
    label: Optional[str] = None
    source: Optional[str] = None
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def is_declaration(self) -> bool:
        """True when the RHS is trivially satisfiable (pure declaration)."""
        return len(self.rhs) == 0

    def __repr__(self) -> str:
        return self.source or f"<constraint {self.label or ''}>"


Statement = Union[Rule, Constraint]


@dataclass
class Program:
    """An ordered collection of parsed statements."""

    statements: list = field(default_factory=list)

    @property
    def rules(self) -> list:
        return [s for s in self.statements if isinstance(s, Rule)]

    @property
    def constraints(self) -> list:
        return [s for s in self.statements if isinstance(s, Constraint)]

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

_fresh_counter = itertools.count()


def fresh_var(prefix: str = "_G") -> Variable:
    """Return a globally fresh variable (used for ``_`` and quote compilation)."""
    return Variable(f"{prefix}{next(_fresh_counter)}")


def is_anonymous(var: Variable) -> bool:
    """True for parser-generated anonymous variables (from ``_``)."""
    return var.name.startswith("_")


def walk_terms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and every sub-term, depth-first."""
    yield term
    if isinstance(term, Expr):
        yield from walk_terms(term.left)
        yield from walk_terms(term.right)
    elif isinstance(term, PartitionTerm):
        for key in term.keys:
            yield from walk_terms(key)


def atom_key(atom: Atom) -> str:
    """The storage key (relation name) for an atom."""
    return atom.pred
