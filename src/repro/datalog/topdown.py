"""Tabled top-down (backward-chaining) evaluation.

Paper section 5.1: *"Most practical access control languages, including
Binder, utilize a top-down (or backward-chaining) evaluation strategy.
Specific requests are made as goals … minimizing the disclosure of
sensitive information."*  And section 7 proposes an optimizer choosing
between top-down and bottom-up.  This module supplies the top-down side:
OLDT-style resolution with answer tables, iterated to fixpoint (naive
tabling), so recursive policies terminate.

Scope: positive rules, builtins and comparisons everywhere; negation only
over goals that are fully ground at call time (ample for access-control
queries; the bottom-up engine remains the general evaluator).  Aggregates
are not supported — the engine raises so callers can fall back.

The companion :mod:`repro.datalog.magic` gets the same goal-directedness
on the bottom-up engine; ``benchmarks/bench_magic.py`` compares all three.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .builtins import apply_comparison
from .database import Database
from .engine import EngineRule, normalize_rules
from .errors import SafetyError
from .runtime import Bindings, EvalContext, Unbound, eval_term
from .terms import Atom, BuiltinCall, Comparison, Literal, Rule, Variable


class TopDownEngine:
    """Goal-directed evaluation over a rule set and an EDB."""

    def __init__(self, rules: Iterable[Rule], db: Database,
                 context: Optional[EvalContext] = None) -> None:
        rule_list = list(rules)
        if not all(isinstance(r, EngineRule) for r in rule_list):
            rule_list = normalize_rules(rule_list)
        self.rules_by_pred: dict[str, list[EngineRule]] = {}
        for rule in rule_list:
            if rule.agg is not None:
                raise SafetyError("top-down evaluation does not support aggregates")
            self.rules_by_pred.setdefault(rule.head.pred, []).append(rule)
        self.db = db
        self.context = context or EvalContext()
        self._tables: dict[tuple, set] = {}
        self._complete: set[tuple] = set()
        self._in_progress: set[tuple] = set()
        #: total subgoal invocations (benchmark instrumentation)
        self.calls = 0

    # ------------------------------------------------------------------

    def query(self, goal: Atom, bindings: Optional[Bindings] = None) -> list[Bindings]:
        """All bindings satisfying ``goal`` (a single atom)."""
        bindings = dict(bindings or {})
        # Iterate the whole resolution to fixpoint: recursive goals use
        # partial tables, so repeat until no table grows.
        while True:
            before = sum(len(t) for t in self._tables.values())
            results = list(self._solve_atom(goal, bindings))
            after = sum(len(t) for t in self._tables.values())
            if after == before:
                return results
            # tables grew: clear completion marks and resolve again
            self._complete.clear()

    def holds(self, goal: Atom, bindings: Optional[Bindings] = None) -> bool:
        return bool(self.query(goal, bindings))

    # ------------------------------------------------------------------

    def _goal_key(self, atom: Atom, bindings: Bindings) -> tuple:
        pattern = []
        for term in atom.all_args:
            try:
                pattern.append(("b", eval_term(term, bindings, self.context)))
            except Unbound:
                pattern.append(("f", None))
        return (atom.pred, tuple(pattern))

    def _solve_atom(self, atom: Atom, bindings: Bindings) -> Iterator[Bindings]:
        """Extensions of ``bindings`` making ``atom`` true."""
        self.calls += 1
        key = self._goal_key(atom, bindings)
        answers = self._answers(key, atom, bindings)
        for fact in list(answers):
            extended = self._match_fact(atom, fact, bindings)
            if extended is not None:
                yield extended

    def _match_fact(self, atom: Atom, fact: tuple,
                    bindings: Bindings) -> Optional[Bindings]:
        extended = dict(bindings)
        for term, value in zip(atom.all_args, fact):
            if isinstance(term, Variable):
                existing = extended.get(term.name, _MISSING)
                if existing is _MISSING:
                    extended[term.name] = value
                elif existing != value:
                    return None
            else:
                try:
                    if eval_term(term, extended, self.context) != value:
                        return None
                except Unbound:
                    return None
        return extended

    def _answers(self, key: tuple, atom: Atom, bindings: Bindings) -> set:
        table = self._tables.get(key)
        if table is not None and (key in self._complete or key in self._in_progress):
            return table
        if table is None:
            table = set()
            self._tables[key] = table

        self._in_progress.add(key)
        try:
            pred, pattern = key
            # EDB (and previously derived) facts
            for fact in self.db.tuples(pred):
                if len(fact) == len(pattern) and self._fact_matches(fact, pattern):
                    table.add(fact)
            # rules
            for rule in self.rules_by_pred.get(pred, ()):
                head_bindings = self._bind_head(rule, pattern)
                if head_bindings is None:
                    continue
                for solution in self._solve_body(rule.body, 0, head_bindings):
                    try:
                        fact = tuple(
                            eval_term(term, solution, self.context)
                            for term in rule.head.all_args
                        )
                    except Unbound as exc:
                        raise SafetyError(
                            f"unbound head variable in {rule!r}: {exc}"
                        ) from exc
                    if self._fact_matches(fact, pattern):
                        table.add(fact)
        finally:
            self._in_progress.discard(key)
        self._complete.add(key)
        return table

    @staticmethod
    def _fact_matches(fact: tuple, pattern: tuple) -> bool:
        for value, (mode, bound_value) in zip(fact, pattern):
            if mode == "b" and value != bound_value:
                return False
        return True

    def _bind_head(self, rule: EngineRule, pattern: tuple) -> Optional[Bindings]:
        """Unify the goal's bound positions with the rule head."""
        bindings: Bindings = {}
        for term, (mode, value) in zip(rule.head.all_args, pattern):
            if mode != "b":
                continue
            if isinstance(term, Variable):
                existing = bindings.get(term.name, _MISSING)
                if existing is _MISSING:
                    bindings[term.name] = value
                elif existing != value:
                    return None
            else:
                try:
                    if eval_term(term, bindings, self.context) != value:
                        return None
                except Unbound:
                    # head term needs body bindings (e.g. an expression);
                    # defer the check to _fact_matches.
                    continue
        return bindings

    def _solve_body(self, body: tuple, index: int,
                    bindings: Bindings) -> Iterator[Bindings]:
        if index >= len(body):
            yield bindings
            return
        item = body[index]
        if isinstance(item, Literal):
            if item.negated:
                try:
                    tuple(eval_term(t, bindings, self.context)
                          for t in item.atom.all_args)
                except Unbound:
                    # Local existentials inside negation: solve with the
                    # free variables and negate the existence.
                    pass
                if not list(self._solve_atom(item.atom, bindings)):
                    yield from self._solve_body(body, index + 1, bindings)
                return
            for extended in self._solve_atom(item.atom, bindings):
                yield from self._solve_body(body, index + 1, extended)
            return
        if isinstance(item, Comparison):
            yield from self._solve_comparison(item, body, index, bindings)
            return
        if isinstance(item, BuiltinCall):
            from .builtins import invoke_builtin
            definition = self.context.builtins.lookup(item.name)
            if definition is None:
                raise SafetyError(f"unknown builtin {item.name!r}")
            inputs = tuple(eval_term(item.args[p], bindings, self.context)
                           for p in definition.input_positions)
            for row in invoke_builtin(definition, inputs, self.context.payload):
                extended = dict(bindings)
                ok = True
                for out_value, position in zip(row, definition.output_positions):
                    target = item.args[position]
                    if isinstance(target, Variable):
                        existing = extended.get(target.name, _MISSING)
                        if existing is _MISSING:
                            extended[target.name] = out_value
                        elif existing != out_value:
                            ok = False
                            break
                    elif eval_term(target, extended, self.context) != out_value:
                        ok = False
                        break
                if ok:
                    yield from self._solve_body(body, index + 1, extended)
            return
        raise SafetyError(f"unexpected body item {item!r}")  # pragma: no cover

    def _solve_comparison(self, item: Comparison, body: tuple, index: int,
                          bindings: Bindings) -> Iterator[Bindings]:
        left_unbound = isinstance(item.left, Variable) and item.left.name not in bindings
        right_unbound = isinstance(item.right, Variable) and item.right.name not in bindings
        if item.op == "=" and left_unbound != right_unbound:
            source = item.right if left_unbound else item.left
            target = item.left if left_unbound else item.right
            value = eval_term(source, bindings, self.context)
            extended = dict(bindings)
            extended[target.name] = value
            yield from self._solve_body(body, index + 1, extended)
            return
        left = eval_term(item.left, bindings, self.context)
        right = eval_term(item.right, bindings, self.context)
        if apply_comparison(item.op, left, right):
            yield from self._solve_body(body, index + 1, bindings)


_MISSING = object()


def query_topdown(rules: Iterable[Rule], db: Database, goal: Atom,
                  context: Optional[EvalContext] = None,
                  bindings: Optional[Bindings] = None) -> list[Bindings]:
    """One-shot goal-directed query (builds a fresh engine)."""
    return TopDownEngine(rules, db, context).query(goal, bindings)
