"""First-order unification over terms and atoms.

The bottom-up engine does not need general unification (it matches ground
tuples), but the meta layer's template instantiation, the test-suite's
algebraic properties, and external tooling benefit from having the real
thing: most-general unifiers with occurs-check over our term language.
"""

from __future__ import annotations

from typing import Optional

from .terms import Atom, Constant, Expr, PartitionTerm, Quote, Term, Variable

Substitution = dict[str, Term]


def walk(term: Term, subst: Substitution) -> Term:
    """Resolve a term through the substitution until fixed."""
    while isinstance(term, Variable) and term.name in subst:
        term = subst[term.name]
    return term


def occurs(name: str, term: Term, subst: Substitution) -> bool:
    term = walk(term, subst)
    if isinstance(term, Variable):
        return term.name == name
    if isinstance(term, Expr):
        return occurs(name, term.left, subst) or occurs(name, term.right, subst)
    if isinstance(term, PartitionTerm):
        return any(occurs(name, key, subst) for key in term.keys)
    return False


def unify_terms(left: Term, right: Term,
                subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Most general unifier of two terms, or None.

    The returned substitution extends ``subst`` (which is not mutated).
    Quotes unify only when structurally identical; expressions unify
    structurally (no arithmetic solving).
    """
    subst = dict(subst) if subst is not None else {}
    if _unify(left, right, subst):
        return subst
    return None


def _unify(left: Term, right: Term, subst: Substitution) -> bool:
    left = walk(left, subst)
    right = walk(right, subst)
    if isinstance(left, Variable):
        if isinstance(right, Variable) and right.name == left.name:
            return True
        if occurs(left.name, right, subst):
            return False
        subst[left.name] = right
        return True
    if isinstance(right, Variable):
        return _unify(right, left, subst)
    if isinstance(left, Constant) and isinstance(right, Constant):
        return left.value == right.value
    if isinstance(left, Expr) and isinstance(right, Expr):
        return (left.op == right.op
                and _unify(left.left, right.left, subst)
                and _unify(left.right, right.right, subst))
    if isinstance(left, PartitionTerm) and isinstance(right, PartitionTerm):
        if left.pred != right.pred or len(left.keys) != len(right.keys):
            return False
        return all(_unify(a, b, subst) for a, b in zip(left.keys, right.keys))
    if isinstance(left, Quote) and isinstance(right, Quote):
        return left.pattern == right.pattern
    return False


def unify_atoms(left: Atom, right: Atom,
                subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two atoms (same predicate, same shape)."""
    if left.pred != right.pred or left.arity != right.arity \
            or len(left.keys) != len(right.keys):
        return None
    subst = dict(subst) if subst is not None else {}
    for a, b in zip(left.all_args, right.all_args):
        if not _unify(a, b, subst):
            return None
    return subst


def apply_subst(term: Term, subst: Substitution) -> Term:
    """Apply a substitution through a term."""
    term = walk(term, subst)
    if isinstance(term, Expr):
        return Expr(term.op, apply_subst(term.left, subst),
                    apply_subst(term.right, subst))
    if isinstance(term, PartitionTerm):
        return PartitionTerm(term.pred,
                             tuple(apply_subst(k, subst) for k in term.keys))
    return term


def apply_subst_atom(atom: Atom, subst: Substitution) -> Atom:
    return Atom(
        atom.pred,
        tuple(apply_subst(t, subst) for t in atom.args),
        tuple(apply_subst(t, subst) for t in atom.keys),
    )
