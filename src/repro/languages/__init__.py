"""Trust-management language front-ends: Binder, SeNDlog, D1LP."""

from .binder import BinderContext, install_pull, parse_binder
from .sendlog import install_sendlog, parse_sendlog

__all__ = ["BinderContext", "install_pull", "parse_binder",
           "install_sendlog", "parse_sendlog"]
