"""The Binder trust-management language on LBTrust (paper section 5.1).

Binder (DeTreville 2002) is Datalog plus contexts and ``says``::

    access(P,O,read) :- good(P).
    access(P,O,read) :- bob says access(P,O,read).

This front-end compiles Binder-syntax programs to the LBTrust core:
``X says atom`` body literals become ``says(X,me,[|atom|])`` quoted-
pattern joins (exactly the paper's bex1' translation), and each Binder
context is a principal's workspace.  Authentication is whatever scheme the
system is configured with — Binder's signed certificates correspond to the
``rsa`` scheme.

Two ways for derived tuples to cross contexts:

* :meth:`BinderContext.publish` — a push rule
  ``says(me,to,[|p(X…)|]) <- p(X…)`` (the bottom-up reading);
* :func:`install_pull` — the section 5.1 **top-down to bottom-up
  rewrite**: pull0 turns every import dependency of an active rule into a
  ``request`` shipped to the source, and pull1 answers requests with the
  matching local facts.  The paper's printed pull1 is schematic ("responds
  to a request with the desired data"); we realize "the desired data"
  with a ``factsmatching`` builtin that enumerates local facts matching
  the requested pattern and returns them as interned fact-rules.

Paper rules b1/b2 are not range-restricted (``O`` is free in b1); Binder
tolerates this, strict Datalog does not.  ``universe_guard`` optionally
names a unary predicate used to guard such head variables; without it the
engine raises :class:`SafetyError` on unsafe rules.
"""

from __future__ import annotations

from typing import Optional, Union

from ..datalog.errors import ParseError, WorkspaceError
from ..datalog.lexer import Token, tokenize
from ..datalog.parser import Parser
from ..datalog.terms import (
    ME,
    Atom,
    AtomPattern,
    Comparison,
    Constant,
    Literal,
    PatternValue,
    Quote,
    Rule,
    RulePattern,
    RuleRef,
    Star,
    Term,
    Variable,
)
from ..workspace.workspace import Workspace

#: pull0 — the paper's listing: any active rule that imports from X
#: produces a request to X for the imported pattern.
PULL0 = """
pull0: says(me,X,[| request(R). |]) <-
       active([| A <- says(X,me,R), A*. |]), X != me.
"""

#: pull1 — answer a request with every matching local fact.
PULL1 = """
pull1: says(me,X,F) <- says(X,me,Q), Q = [| request(R). |],
       factsmatching(R,F).
"""


class BinderParser(Parser):
    """Extends the core parser with ``X says atom`` body literals."""

    def _parse_basic(self):
        token = self.peek()
        nxt = self.peek(1)
        if token.kind in ("IDENT", "VAR") and nxt.kind == "IDENT" \
                and nxt.text == "says":
            speaker: Term
            if token.kind == "IDENT":
                speaker = Constant(token.text)
            else:
                speaker = Variable(token.text)
            self.advance()
            self.advance()
            atom = self.parse_atom()
            return Literal(_says_import(speaker, atom), span=atom.span)
        return super()._parse_basic()


def _says_import(speaker: Term, atom: Atom) -> Atom:
    """``X says p(args)`` → ``says(X, me, [| p(args). |])``."""
    pattern = RulePattern(
        heads=(AtomPattern(atom.pred, tuple(atom.all_args)),),
        body=(),
        has_arrow=False,
    )
    return Atom("says", (speaker, Constant(ME), Quote(pattern)),
                span=atom.span)


def parse_binder(source: str) -> list:
    """Parse a Binder program (``:-`` or ``<-`` rules, says literals)."""
    try:
        tokens = [_arrow(t) for t in tokenize(source)]
        return BinderParser(tokens).parse_program().statements
    except ParseError as exc:
        raise exc.with_source(source) from None


def _arrow(token: Token) -> Token:
    if token.kind == "PUNCT" and token.text == ":-":
        return Token("PUNCT", "<-", token.line, token.column, token.glued)
    return token


class BinderContext:
    """One Binder context, hosted on a principal's workspace."""

    def __init__(self, principal_or_workspace,
                 universe_guard: Optional[str] = None) -> None:
        workspace = getattr(principal_or_workspace, "workspace",
                            principal_or_workspace)
        if not isinstance(workspace, Workspace):
            raise WorkspaceError("BinderContext needs a Principal or Workspace")
        self.principal = principal_or_workspace
        self.workspace = workspace
        self.universe_guard = universe_guard

    def load(self, source: str) -> None:
        """Load a Binder-syntax program into this context."""
        statements = parse_binder(source)
        with self.workspace.transaction():
            for statement in statements:
                if isinstance(statement, Rule) and not statement.is_fact():
                    statement = self._guard(statement)
                self.workspace._install(statement)

    def _guard(self, rule: Rule) -> Rule:
        """Guard head variables unbound by the body with the universe pred."""
        if self.universe_guard is None:
            return rule
        bound: set[str] = set()
        for item in rule.body:
            for variable in item.variables():
                bound.add(variable.name)
        extra = []
        seen: set[str] = set()
        for head in rule.heads:
            for variable in head.variables():
                if variable.name not in bound and variable.name not in seen:
                    seen.add(variable.name)
                    extra.append(Literal(Atom(self.universe_guard,
                                              (Variable(variable.name),))))
        if not extra:
            return rule
        return Rule(rule.heads, rule.body + tuple(extra), rule.agg, rule.label)

    # ------------------------------------------------------------------

    def publish(self, pred: str, arity: int, to: Union[str, object]) -> None:
        """Push derived tuples of ``pred`` to another context (exp-style)."""
        to_name = getattr(to, "name", to)
        variables = ",".join(f"X{i}" for i in range(arity))
        self.workspace.add_rule(
            f'says(me,"{to_name}",[| {pred}({variables}). |]) <- {pred}({variables}).'
        )

    def install_pull(self) -> None:
        """Install the top-down→bottom-up rewrite (pull0 + pull1)."""
        register_factsmatching(self.workspace)
        self.workspace.load(PULL0)
        self.workspace.load(PULL1)


def install_pull(workspace_or_principal) -> None:
    """Module-level convenience: install pull0/pull1 on a context."""
    BinderContext(workspace_or_principal).install_pull()


# ---------------------------------------------------------------------------
# The factsmatching builtin (pull1's "desired data")
# ---------------------------------------------------------------------------

def register_factsmatching(workspace: Workspace) -> None:
    if "factsmatching" in workspace.builtins:
        return

    def bi_factsmatching(ws, requested):
        return list(_facts_matching(ws, requested))

    workspace.builtins.register("factsmatching", "io", bi_factsmatching,
                                needs_context=True, volatile=True)


def _facts_matching(workspace: Workspace, requested):
    """Yield fact-rule refs for local facts matching a requested pattern."""
    if isinstance(requested, RuleRef):
        # A ground request: answer it iff the exact fact holds locally.
        rule = workspace.registry.rule_of(requested)
        if rule.is_fact() and len(rule.heads) == 1:
            head = rule.heads[0]
            values = tuple(
                term.value for term in head.all_args
                if isinstance(term, Constant)
            )
            if len(values) == head.arity and values in workspace.db.rel(head.pred):
                yield (requested,)
        return
    if not isinstance(requested, PatternValue):
        return
    pattern = requested.pattern
    if pattern.has_arrow or pattern.body or len(pattern.heads) != 1:
        return
    head = pattern.heads[0]
    if not isinstance(head.functor, str) or head.args is None:
        return
    args = head.args
    has_star = any(isinstance(a, Star) for a in args)
    for fact in workspace.db.tuples(head.functor):
        if not has_star and len(fact) != len(args):
            continue
        if len(fact) < sum(1 for a in args if not isinstance(a, Star)):
            continue
        bindings: dict[str, object] = {}
        ok = True
        for position, arg in enumerate(args):
            if isinstance(arg, Star):
                break
            value = fact[position]
            if isinstance(arg, Constant):
                if arg.value != value:
                    ok = False
                    break
            elif isinstance(arg, Variable):
                existing = bindings.get(arg.name)
                if existing is None:
                    bindings[arg.name] = value
                elif existing != value:
                    ok = False
                    break
            else:
                ok = False
                break
        if not ok:
            continue
        fact_rule = Rule((Atom(head.functor,
                               tuple(Constant(v) for v in fact)),), ())
        yield (workspace.registry.intern(fact_rule),)
