"""D1LP-style delegation statements on LBTrust (paper sections 2.2, 4.2).

Delegation Logic (Li, Grosof, Feigenbaum — the paper's reference [15])
contributes *restricted delegation* — depth-bounded, width-bounded — and
*threshold structures*.  The paper shows each construct is expressible in
LBTrust; this module packages that mapping as a tiny statement language so
policies read like D1LP:

    delegate permission to accessMgr depth 1.
    delegate creditOK to bureaus width alice, bob, carol.
    threshold 3 of creditBureau on creditOK.
    weighted threshold 2.5 of creditBureau on creditOK.

Each statement expands to the corresponding core installers
(:mod:`repro.core.delegation`) plus the delegates/delDepth/delWidth facts.
"""

from __future__ import annotations

import re
from typing import Union

from ..datalog.errors import ParseError
from ..core.delegation import (
    install_threshold,
    install_weighted_threshold,
)

_DELEGATE = re.compile(
    r"^delegate\s+(?P<pred>\w+)\s+to\s+(?P<to>\w+)"
    r"(?:\s+depth\s+(?P<depth>\d+))?"
    r"(?:\s+width\s+(?P<width>[\w,\s]+?))?\s*$"
)
_THRESHOLD = re.compile(
    r"^(?P<weighted>weighted\s+)?threshold\s+(?P<k>[\d.]+)\s+of\s+"
    r"(?P<group>\w+)\s+on\s+(?P<pred>\w+)\s*$"
)


def run_statement(principal, statement: str) -> None:
    """Execute one D1LP-style statement in a principal's context."""
    text = statement.strip().rstrip(".")
    if not text:
        return
    match = _DELEGATE.match(text)
    if match:
        _run_delegate(principal, match)
        return
    match = _THRESHOLD.match(text)
    if match:
        _run_threshold(principal, match)
        return
    raise ParseError(f"unrecognized D1LP statement: {statement!r}")


def run_policy(principal, source: str) -> None:
    """Execute a newline/period-separated D1LP policy."""
    for piece in source.split("."):
        if piece.strip():
            run_statement(principal, piece)


def _run_delegate(principal, match: re.Match) -> None:
    pred = match.group("pred")
    to = match.group("to")
    depth = match.group("depth")
    width = match.group("width")
    if width:
        # The width set must be in place before the delegates fact, or the
        # dwc constraint rejects the delegation it is meant to scope.
        from ..core.delegation import install_width_restriction
        workspace = principal.workspace
        install_width_restriction(workspace)   # idempotent
        members = [name.strip() for name in width.split(",") if name.strip()]
        with workspace.transaction():
            workspace.assert_fact("delWidthOn", (principal.name, pred))
            for member in members:
                workspace.assert_fact("delWidth", (principal.name, member, pred))
    principal.delegate(to, pred,
                       depth=int(depth) if depth is not None else None)


def _run_threshold(principal, match: re.Match) -> None:
    """Install a threshold over the receipt channel.

    In a full system ``says1`` activates whatever is said, so counting
    must gate a *different* predicate than the one group members say:
    members say ``pred`` facts, and the threshold derives ``predOK`` from
    the receipt log once k members concur (see
    :func:`repro.core.delegation.install_threshold`).
    """
    k: Union[int, float]
    raw_k = match.group("k")
    k = float(raw_k) if "." in raw_k else int(raw_k)
    group = match.group("group")
    pred = match.group("pred")
    if match.group("weighted"):
        install_weighted_threshold(principal.workspace, pred, group, k,
                                   channel="heard")
    else:
        install_threshold(principal.workspace, pred, group, int(k),
                          channel="heard")
