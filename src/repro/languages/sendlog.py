"""SeNDlog — Secure Network Datalog on LBTrust (paper section 5.2).

SeNDlog unifies Binder with Network Datalog: rules run *at* a context,
import with ``N says p(...)`` and export with ``p(...)@X`` heads::

    At S:
    s1: reachable(S,D) :- neighbor(S,D).
    s2: reachable(Z,D)@Z :- neighbor(S,Z), W says reachable(S,D).

Compilation follows the paper's ls1/ls2 translation exactly:

* the block's context variable (``S``) becomes ``me``;
* an ``@Z`` head becomes ``says(me,Z,[| p(args). |])`` — export;
* ``W says p(args)`` becomes a ``says(W,me,[| p(args). |])`` pattern join
  — authenticated import (the scheme the system is configured with).

Placement (ld1/ld2) is installed by the System; modifying the ``loc``
table redistributes principals over physical nodes without touching any
protocol rule — location transparency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..datalog.errors import ParseError
from ..datalog.lexer import Token, tokenize
from ..datalog.terms import (
    ME,
    Atom,
    Constant,
    Literal,
    Quote,
    Rule,
    Statement,
    Term,
    Variable,
)
from .binder import BinderParser, _says_import


@dataclass
class SendlogBlock:
    """One ``At X:`` block: the context term and its rules."""

    context: Union[str, Variable]
    statements: list = field(default_factory=list)

    @property
    def is_generic(self) -> bool:
        """True when the context is a variable (installed at *every*
        principal, each reading it as itself)."""
        return isinstance(self.context, Variable)


class _SendlogParser(BinderParser):
    """Binder syntax plus ``@dest`` head annotations."""

    def parse_head_atom(self):
        atom = self.parse_atom()
        dest = None
        if self.at("@"):
            self.advance()
            token = self.advance()
            if token.kind == "IDENT":
                dest = Constant(token.text)
            elif token.kind == "VAR":
                dest = Variable(token.text)
            elif token.kind == "KEYWORD" and token.text == "me":
                dest = Constant(ME)
            else:
                raise ParseError("expected a destination after '@'",
                                 token.line, token.column)
        return atom, dest


def parse_sendlog(source: str) -> list[SendlogBlock]:
    """Split a SeNDlog program into ``At`` blocks of compiled statements."""
    try:
        return _parse_sendlog(source)
    except ParseError as exc:
        raise exc.with_source(source) from None


def _parse_sendlog(source: str) -> list[SendlogBlock]:
    tokens = tokenize(source)
    blocks: list[SendlogBlock] = []
    index = 0

    def at_block_header(i: int) -> bool:
        return (tokens[i].kind in ("IDENT", "VAR") and tokens[i].text == "At"
                and tokens[i + 1].kind in ("IDENT", "VAR")
                and tokens[i + 2].kind == "PUNCT" and tokens[i + 2].text == ":")

    while tokens[index].kind != "EOF":
        if not at_block_header(index):
            raise ParseError("SeNDlog programs start blocks with 'At X:'",
                             tokens[index].line, tokens[index].column)
        context_token = tokens[index + 1]
        context: Union[str, Variable]
        if context_token.kind == "VAR":
            context = Variable(context_token.text)
        else:
            context = context_token.text
        index += 3
        # collect tokens until the next block header / EOF
        body: list[Token] = []
        while tokens[index].kind != "EOF" and not at_block_header(index):
            body.append(tokens[index])
            index += 1
        eof = tokens[index]
        block_tokens = body + [Token("EOF", "", eof.line, eof.column, False)]
        block = SendlogBlock(context)
        block.statements = _parse_block(block_tokens, context)
        blocks.append(block)
    return blocks


def _parse_block(tokens: list[Token], context) -> list[Statement]:
    from .binder import _arrow

    parser = _SendlogParser([_arrow(t) for t in tokens])
    statements: list[Statement] = []
    while parser.peek().kind != "EOF":
        label = parser._try_label()
        heads = [parser.parse_head_atom()]
        while parser.at(","):
            parser.advance()
            heads.append(parser.parse_head_atom())
        body_formula = None
        if parser.at("<-"):
            parser.advance()
            body_formula = parser.parse_formula()
        parser.expect(".")
        statements.extend(_compile_rule(heads, body_formula, label, context))
    return statements


def _compile_rule(heads, body_formula, label, context) -> list[Rule]:
    from ..datalog.logic import dnf_body

    substitution = None
    if isinstance(context, Variable):
        substitution = context.name

    def localize_term(term: Term) -> Term:
        if substitution and isinstance(term, Variable) and term.name == substitution:
            return Constant(ME)
        if isinstance(term, Quote):
            from ..datalog.terms import AtomPattern, RulePattern, Star

            def localize_pattern(pattern: RulePattern) -> RulePattern:
                new_heads = []
                for head in pattern.heads:
                    args = head.args
                    if args is not None:
                        args = tuple(
                            a if isinstance(a, Star) else localize_term(a)
                            for a in args
                        )
                    new_heads.append(AtomPattern(head.functor, args, head.negated))
                return RulePattern(tuple(new_heads), pattern.body,
                                   pattern.has_arrow)

            return Quote(localize_pattern(term.pattern))
        return term

    def localize_atom(atom: Atom) -> Atom:
        return Atom(atom.pred,
                    tuple(localize_term(t) for t in atom.args),
                    tuple(localize_term(t) for t in atom.keys),
                    span=atom.span)

    rules = []
    for alternative in dnf_body(body_formula):
        body_items = []
        for item in alternative:
            if isinstance(item, Literal):
                body_items.append(Literal(localize_atom(item.atom),
                                          item.negated, span=item.span))
            else:
                item_type = type(item)
                if hasattr(item, "left"):
                    body_items.append(item_type(item.op,
                                                localize_term(item.left),
                                                localize_term(item.right)))
                else:
                    body_items.append(item_type(
                        item.name, tuple(localize_term(t) for t in item.args)))
        head_atoms = []
        for atom, dest in heads:
            atom = localize_atom(atom)
            if dest is None:
                head_atoms.append(atom)
            else:
                # p(args)@Z  →  says(me, Z, [| p(args). |])   (paper ls2)
                from ..datalog.terms import AtomPattern, RulePattern

                pattern = RulePattern(
                    heads=(AtomPattern(atom.pred, tuple(atom.all_args)),),
                    body=(), has_arrow=False,
                )
                head_atoms.append(Atom("says", (
                    Constant(ME), localize_term(dest), Quote(pattern)),
                    span=atom.span))
        span = head_atoms[0].span if head_atoms else None
        rules.append(Rule(tuple(head_atoms), tuple(body_items), None, label,
                          span=span))
    return rules


def install_sendlog(system_or_principals, source: str) -> None:
    """Install a SeNDlog program.

    Generic blocks (``At S:`` with a variable) load into every principal;
    named blocks (``At alice:``) load into that principal only.
    """
    principals = getattr(system_or_principals, "principals", None)
    if principals is not None:
        principal_map = dict(principals)
    else:
        principal_map = {p.name: p for p in system_or_principals}
    for block in parse_sendlog(source):
        if block.is_generic:
            targets = list(principal_map.values())
        else:
            name = block.context
            if name not in principal_map:
                raise ParseError(f"unknown SeNDlog context {name!r}")
            targets = [principal_map[name]]
        for principal in targets:
            workspace = principal.workspace
            with workspace.transaction():
                for statement in block.statements:
                    workspace._install(statement)
