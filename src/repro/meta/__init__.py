"""Meta-programming: rule interning, Figure 1 reification, quote compiler."""

from .registry import RuleRegistry

__all__ = ["RuleRegistry"]
