"""The meta-model (paper Figure 1): rules as data.

Every rule a workspace knows about is reflected into these relations, so
ordinary Datalog rules can do reflection (read program structure) and code
generation (derive ``active(R)`` facts that activate new rules), and
schema constraints over them become *meta-constraints*.

Paper relations::

    rule(R)           head(R,A)        body(R,A)       atom(A)
    functor(A,P)      arg(A,I,T)       negated(A)      term(T)
    variable(X)       vname(X,N)       constant(C)     value(C,V)
    predicate(P)      pname(P,N)

Our deviations (DESIGN.md section 6):

* predicate ids *are* their name strings, so ``functor(A,P)`` binds P to
  the predicate name directly and ``pname(P,P)`` holds — every paper rule
  (``access(U,P,read)``, ``mayRead(U,P)``) works unchanged;
* two extension relations give quoted patterns their intended semantics:
  ``arity(A,N)`` (atom argument count — patterns without a Kleene star
  constrain it) and ``factrule(R)`` (rules with empty bodies — quoted
  *fact* patterns only match these);
* ``quoteterm(T)`` marks argument terms that are themselves quoted code
  (nested templates), which patterns treat as opaque.

``active(R)`` is the activation relation (paper section 3.3): deriving
``active(r)`` turns the reified rule ``r`` into a running rule.  The
workspace watches it after every fixpoint.
"""

from __future__ import annotations

#: Relations from Figure 1 of the paper.
PAPER_META_PREDS = frozenset({
    "rule", "head", "body", "atom", "functor", "arg", "negated",
    "term", "variable", "vname", "constant", "value",
    "predicate", "pname",
})

#: Our documented extensions.
EXTENSION_META_PREDS = frozenset({"arity", "factrule", "quoteterm"})

#: The activation relation.
ACTIVE_PRED = "active"

#: Placement relation for distribution (paper section 3.5).
PREDNODE_PRED = "predNode"

#: Every relation the registry maintains; user programs may read these but
#: must not define rules deriving into them (``active`` and ``predNode``
#: excepted — deriving those is exactly how code generation and placement
#: work).
ALL_META_PREDS = PAPER_META_PREDS | EXTENSION_META_PREDS

#: Source text of the meta-model type declarations, loadable into a
#: workspace to enforce Figure 1 as dynamic constraints (and used by tests
#: to check our reification against the paper's schema).
META_MODEL_DECLARATIONS = """
rule(R) -> .
head(R,A) -> rule(R), atom(A).
body(R,A) -> rule(R), atom(A).
atom(A) -> .
functor(A,P) -> atom(A), predicate(P).
arg(A,I,T) -> atom(A), int(I), term(T).
negated(A) -> atom(A).
term(T) -> .
variable(X) -> term(X).
vname(X,N) -> variable(X), string(N).
constant(C) -> term(C).
value(C,V) -> constant(C).
predicate(P) -> .
pname(P,N) -> predicate(P), string(N).
arity(A,N) -> atom(A), int(N).
factrule(R) -> rule(R).
quoteterm(T) -> term(T).
"""
