"""Quoted-code compilation and the statement compile pipeline.

Two halves:

1. :func:`compile_pattern` — a *body-position* quote becomes a conjunction
   of meta-model atoms, exactly the translation the paper shows in
   section 3.3::

       owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,read).
         ⇒
       owner(U,R1), rule(R1), body(R1,A1), atom(A1), functor(A1,P)
         -> access(U,P,read).

   Conventions (DESIGN.md section 6): meta-variables in functor position
   bind predicate names; in term position they bind *constant values* (via
   ``value``); a Kleene star ends constraint emission for the remaining
   positions; argument lists without a star constrain ``arity``; a quoted
   fact (no ``<-``) additionally requires ``factrule``.

2. :func:`compile_statement` — the full normalization a workspace applies
   when loading source: resolve ``me`` to the owning principal, replace
   body quotes by fresh variables plus their compiled meta-atoms, and turn
   body literals whose functor is a registered builtin into
   :class:`repro.datalog.terms.BuiltinCall` items.  Head-position quotes
   survive as templates — they are code generation and run inside the
   engine.
"""

from __future__ import annotations

from typing import Optional, Union

from ..datalog.builtins import BuiltinRegistry
from ..datalog.errors import SafetyError
from ..datalog.terms import (
    Atom,
    AtomPattern,
    BuiltinCall,
    Comparison,
    Constant,
    Constraint,
    EqPattern,
    Expr,
    Literal,
    MeToken,
    PartitionTerm,
    Quote,
    Rule,
    RulePattern,
    Star,
    StarLits,
    Term,
    Variable,
    fresh_var,
    is_anonymous,
)


# ---------------------------------------------------------------------------
# me resolution
# ---------------------------------------------------------------------------

def resolve_me_term(term: Term, principal: str) -> Term:
    if isinstance(term, Constant) and isinstance(term.value, MeToken):
        return Constant(principal)
    if isinstance(term, Expr):
        return Expr(term.op,
                    resolve_me_term(term.left, principal),
                    resolve_me_term(term.right, principal))
    if isinstance(term, PartitionTerm):
        return PartitionTerm(term.pred,
                             tuple(resolve_me_term(k, principal) for k in term.keys))
    if isinstance(term, Quote):
        return Quote(resolve_me_pattern(term.pattern, principal))
    return term


def resolve_me_pattern(pattern: RulePattern, principal: str) -> RulePattern:
    def resolve_atom(atom_pattern: AtomPattern) -> AtomPattern:
        if atom_pattern.args is None:
            return atom_pattern
        args = tuple(
            arg if isinstance(arg, Star) else resolve_me_term(arg, principal)
            for arg in atom_pattern.args
        )
        return AtomPattern(atom_pattern.functor, args, atom_pattern.negated)

    heads = tuple(resolve_atom(h) for h in pattern.heads)
    body: list = []
    for lit in pattern.body:
        if isinstance(lit, AtomPattern):
            body.append(resolve_atom(lit))
        elif isinstance(lit, EqPattern):
            body.append(EqPattern(lit.var,
                                  Quote(resolve_me_pattern(lit.quote.pattern, principal))))
        else:
            body.append(lit)
    return RulePattern(heads, tuple(body), pattern.has_arrow)


def resolve_me_atom(atom: Atom, principal: str) -> Atom:
    return Atom(
        atom.pred,
        tuple(resolve_me_term(t, principal) for t in atom.args),
        tuple(resolve_me_term(t, principal) for t in atom.keys),
        span=atom.span,
    )


# ---------------------------------------------------------------------------
# Pattern compilation (body-position quotes)
# ---------------------------------------------------------------------------

def compile_pattern(pattern: RulePattern, rule_var: Variable) -> list:
    """Meta-model atoms expressing that ``rule_var`` matches ``pattern``."""
    items: list = [Literal(Atom("rule", (rule_var,)))]
    if not pattern.has_arrow and not pattern.body:
        items.append(Literal(Atom("factrule", (rule_var,))))
    for atom_pattern in pattern.heads:
        items.extend(_compile_atom_pattern(atom_pattern, rule_var, "head"))
    for lit in pattern.body:
        if isinstance(lit, AtomPattern):
            items.extend(_compile_atom_pattern(lit, rule_var, "body"))
        elif isinstance(lit, StarLits):
            continue
        elif isinstance(lit, EqPattern):
            items.extend(compile_pattern(lit.quote.pattern, lit.var))
        else:  # pragma: no cover - parser prevents
            raise SafetyError(f"unexpected pattern literal {lit!r}")
    return items


def _compile_atom_pattern(atom_pattern: AtomPattern, rule_var: Variable,
                          role: str) -> list:
    items: list = []
    if atom_pattern.is_bare_metavar():
        # A bare meta-variable matches any atom in this role; anonymous
        # ones impose no constraint at all (the paper's translation drops
        # the unconstrained head entirely).
        if is_anonymous(atom_pattern.functor):
            return []
        atom_var = atom_pattern.functor
        items.append(Literal(Atom(role, (rule_var, atom_var))))
        items.append(Literal(Atom("atom", (atom_var,))))
        return items

    atom_var = fresh_var("_MA")
    items.append(Literal(Atom(role, (rule_var, atom_var))))
    items.append(Literal(Atom("atom", (atom_var,))))
    functor = atom_pattern.functor
    functor_term: Term = Constant(functor) if isinstance(functor, str) else functor
    items.append(Literal(Atom("functor", (atom_var, functor_term))))
    if atom_pattern.negated:
        items.append(Literal(Atom("negated", (atom_var,))))

    args = atom_pattern.args or ()
    has_star = any(isinstance(arg, Star) for arg in args)
    for index, arg in enumerate(args):
        if isinstance(arg, Star):
            break
        if isinstance(arg, Variable) and is_anonymous(arg):
            continue  # don't-care position
        term_var = fresh_var("_MT")
        items.append(Literal(Atom("arg", (atom_var, Constant(index), term_var))))
        if isinstance(arg, Quote):
            items.append(Literal(Atom("quoteterm", (term_var,))))
            continue
        # Constants and (meta-)variables both match through `value`: the
        # meta-variable binds the constant's value (or joins when bound).
        items.append(Literal(Atom("value", (term_var, arg))))
    if not has_star:
        items.append(Literal(Atom("arity", (atom_var, Constant(len(args))))))
    return items


# ---------------------------------------------------------------------------
# Statement compilation
# ---------------------------------------------------------------------------

def resolve_me_rule(rule: Rule, principal: str) -> Rule:
    """Resolve ``me`` only, keeping quotes and body structure intact.

    This is the form rules are *interned* in: context-independent (no
    ``me``) but still carrying their quoted patterns, so reification
    exposes them (``quoteterm`` + pattern values) and activation compiles
    them in the receiving context.
    """
    heads = tuple(resolve_me_atom(h, principal) for h in rule.heads)
    body: list = []
    for item in rule.body:
        if isinstance(item, Literal):
            body.append(Literal(resolve_me_atom(item.atom, principal),
                                item.negated, span=item.span))
        elif isinstance(item, Comparison):
            body.append(Comparison(item.op,
                                   resolve_me_term(item.left, principal),
                                   resolve_me_term(item.right, principal),
                                   span=item.span))
        elif isinstance(item, BuiltinCall):
            body.append(BuiltinCall(item.name, tuple(
                resolve_me_term(t, principal) for t in item.args)))
        else:  # pragma: no cover - defensive
            raise SafetyError(f"unexpected body item {item!r}")
    return Rule(heads, tuple(body), rule.agg, rule.label, span=rule.span)


def compile_rule(rule: Rule, principal: Optional[str],
                 builtins: Optional[BuiltinRegistry] = None) -> Rule:
    """Normalize one source rule for the engine.

    Resolves ``me``, compiles body quotes to meta-atom joins, and converts
    builtin functors.  Head quotes remain as instantiation templates.
    """
    heads = tuple(
        resolve_me_atom(h, principal) if principal is not None else h
        for h in rule.heads
    )
    body = compile_body_items(rule.body, principal, builtins)
    return Rule(heads, tuple(body), rule.agg, rule.label, span=rule.span)


def compile_constraint(constraint: Constraint, principal: Optional[str],
                       builtins: Optional[BuiltinRegistry] = None) -> Constraint:
    """Normalize a constraint: both DNF sides get the body treatment."""
    lhs = tuple(
        tuple(compile_body_items(alternative, principal, builtins))
        for alternative in constraint.lhs
    )
    rhs = tuple(
        tuple(compile_body_items(alternative, principal, builtins))
        for alternative in constraint.rhs
    )
    return Constraint(lhs, rhs, constraint.label, constraint.source,
                      span=constraint.span)


def compile_body_items(items: tuple, principal: Optional[str],
                       builtins: Optional[BuiltinRegistry]) -> list:
    compiled: list = []
    for item in items:
        if isinstance(item, Literal):
            atom = item.atom
            if principal is not None:
                atom = resolve_me_atom(atom, principal)
            atom, extra = _extract_quotes(atom)
            if extra and item.negated:
                raise SafetyError(
                    f"negated literal {item!r} cannot contain a quoted "
                    f"pattern (the match is existential)"
                )
            if builtins is not None and builtins.lookup(atom.pred) is not None:
                if item.negated:
                    raise SafetyError(
                        f"cannot negate builtin {atom.pred!r}; use its "
                        f"positive complement (e.g. list_not_member)"
                    )
                compiled.append(BuiltinCall(atom.pred, atom.all_args))
            else:
                compiled.append(Literal(atom, item.negated, span=item.span))
            compiled.extend(extra)
        elif isinstance(item, Comparison):
            left = resolve_me_term(item.left, principal) if principal else item.left
            right = resolve_me_term(item.right, principal) if principal else item.right
            if item.op == "=" and isinstance(right, Quote) and isinstance(left, Variable):
                compiled.extend(compile_pattern(right.pattern, left))
            elif item.op == "=" and isinstance(left, Quote) and isinstance(right, Variable):
                compiled.extend(compile_pattern(left.pattern, right))
            elif isinstance(left, Quote) or isinstance(right, Quote):
                raise SafetyError(
                    f"quotes may only appear in '=' pattern bindings or as "
                    f"atom arguments, not in {item!r}"
                )
            else:
                compiled.append(Comparison(item.op, left, right,
                                           span=item.span))
        elif isinstance(item, BuiltinCall):
            args = tuple(
                resolve_me_term(t, principal) if principal else t
                for t in item.args
            )
            compiled.append(BuiltinCall(item.name, args))
        else:  # pragma: no cover - defensive
            raise SafetyError(f"unexpected body item {item!r}")
    return compiled


def _extract_quotes(atom: Atom) -> tuple:
    """Replace quote args of a body atom by fresh vars + pattern atoms."""
    extra: list = []
    new_args: list = []
    for term in atom.args:
        if isinstance(term, Quote):
            quote_var = fresh_var("_Q")
            new_args.append(quote_var)
            extra.extend(compile_pattern(term.pattern, quote_var))
        else:
            new_args.append(term)
    new_keys: list = []
    for term in atom.keys:
        if isinstance(term, Quote):
            quote_var = fresh_var("_Q")
            new_keys.append(quote_var)
            extra.extend(compile_pattern(term.pattern, quote_var))
        else:
            new_keys.append(term)
    return Atom(atom.pred, tuple(new_args), tuple(new_keys)), extra
