"""Rule interning and reification: the bridge between rules and data.

The :class:`RuleRegistry` is shared by every workspace of an LBTrust
system (the paper's demonstration likewise runs all principals inside one
LogicBlox instance).  It provides:

* **interning** — structurally identical rules (up to variable renaming)
  map to the same :class:`repro.datalog.terms.RuleRef`; the canonical text
  is what authentication schemes sign, so certificates are independent of
  variable naming;
* **reification** — the meta-model facts (Figure 1) describing a rule,
  computed once per rule and injected into any workspace that encounters
  the ref;
* **template instantiation** — code generation: a head-position quote plus
  bindings becomes a new interned rule (paper section 3.3: "if the
  evaluation of a rule puts new facts into the meta-model, then those new
  facts turn into a new rule which must itself be evaluated").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..datalog.errors import ReproError, SafetyError
from ..datalog.pretty import canonical_rule, format_rule
from ..datalog.terms import (
    Atom,
    AtomPattern,
    BuiltinCall,
    Comparison,
    Constant,
    EqPattern,
    Expr,
    Literal,
    MeToken,
    PartitionTerm,
    PatternValue,
    Quote,
    Rule,
    RulePattern,
    RuleRef,
    Star,
    StarLits,
    Term,
    Variable,
)

MetaFact = tuple  # (pred_name, fact_tuple)


@dataclass
class InternedRule:
    """Registry bookkeeping for one interned rule."""

    ref: RuleRef
    rule: Rule
    canonical: str
    meta_facts: list = field(default_factory=list)


class RuleRegistry:
    """Interns rules and produces their meta-model reification."""

    def __init__(self) -> None:
        self._by_canonical: dict[str, InternedRule] = {}
        self._by_ref: dict[RuleRef, InternedRule] = {}
        self._next_id = 1

    # -- interning ----------------------------------------------------------

    def intern(self, rule: Rule) -> RuleRef:
        """Intern a rule; structurally equal rules share one ref.

        The rule must be ``me``-free: principals resolve ``me`` before any
        rule becomes data (otherwise a rule's meaning would change as it
        crossed contexts).
        """
        _reject_me(rule)
        canonical = canonical_rule(rule)
        entry = self._by_canonical.get(canonical)
        if entry is None:
            ref = RuleRef(self._next_id)
            self._next_id += 1
            entry = InternedRule(ref, rule, canonical)
            entry.meta_facts = _reify(ref, rule)
            self._by_canonical[canonical] = entry
            self._by_ref[ref] = entry
        return entry.ref

    def rule_of(self, ref: RuleRef) -> Rule:
        return self._entry(ref).rule

    def canonical_text(self, ref: RuleRef) -> str:
        """The canonical bytes-source for signing and wire transfer."""
        return self._entry(ref).canonical

    def meta_facts(self, ref: RuleRef) -> list[MetaFact]:
        return self._entry(ref).meta_facts

    def refs_in_value(self, value) -> Iterable[RuleRef]:
        """Every RuleRef reachable inside a ground value (tuples nest)."""
        if isinstance(value, RuleRef):
            yield value
        elif isinstance(value, tuple):
            for element in value:
                yield from self.refs_in_value(element)

    def known(self, ref: RuleRef) -> bool:
        return ref in self._by_ref

    def __len__(self) -> int:
        return len(self._by_ref)

    def _entry(self, ref: RuleRef) -> InternedRule:
        entry = self._by_ref.get(ref)
        if entry is None:
            raise ReproError(f"unknown rule reference {ref!r}")
        return entry

    # -- template instantiation (code generation) ------------------------------

    def instantiate_template(self, quote: Quote, bindings: dict,
                             eval_term: Callable[[Term, dict], object]) -> RuleRef:
        """Turn a head-position quote into a concrete rule and intern it.

        Bound variables are substituted with their values (becoming
        constants); unbound variables remain variables of the generated
        rule.  Nested ``V = [| … |]`` patterns survive substitution as
        patterns — they compile when the generated rule is activated.
        """
        rule = instantiate_pattern(quote.pattern, bindings, eval_term)
        return self.intern(rule)


# ---------------------------------------------------------------------------
# me-freedom check
# ---------------------------------------------------------------------------

def _reject_me(rule: Rule) -> None:
    for head in rule.heads:
        for term in head.all_args:
            _reject_me_term(term)
    for item in rule.body:
        if isinstance(item, Literal):
            for term in item.atom.all_args:
                _reject_me_term(term)
        elif isinstance(item, Comparison):
            _reject_me_term(item.left)
            _reject_me_term(item.right)
        elif isinstance(item, BuiltinCall):
            for term in item.args:
                _reject_me_term(term)


def _reject_me_term(term: Term) -> None:
    if isinstance(term, Constant) and isinstance(term.value, MeToken):
        raise SafetyError(
            "cannot intern a rule still containing 'me'; resolve the local "
            "principal first (Workspace does this on load)"
        )
    if isinstance(term, Expr):
        _reject_me_term(term.left)
        _reject_me_term(term.right)
    elif isinstance(term, PartitionTerm):
        for key in term.keys:
            _reject_me_term(key)
    elif isinstance(term, Quote):
        _reject_me_pattern(term.pattern)


def _reject_me_pattern(pattern: RulePattern) -> None:
    for atom_pattern in pattern.heads:
        _reject_me_atom_pattern(atom_pattern)
    for lit in pattern.body:
        if isinstance(lit, AtomPattern):
            _reject_me_atom_pattern(lit)
        elif isinstance(lit, EqPattern):
            _reject_me_pattern(lit.quote.pattern)


def _reject_me_atom_pattern(atom_pattern: AtomPattern) -> None:
    for arg in atom_pattern.args or ():
        if isinstance(arg, Term):
            _reject_me_term(arg)


# ---------------------------------------------------------------------------
# Reification (rule -> Figure 1 facts)
# ---------------------------------------------------------------------------

def _reify(ref: RuleRef, rule: Rule) -> list[MetaFact]:
    """Compute the meta-model facts describing one rule."""
    facts: list[MetaFact] = [("rule", (ref,))]
    counter = {"atom": 0, "term": 0}
    preds_seen: set[str] = set()

    def fresh_atom_id() -> str:
        counter["atom"] += 1
        return f"$a{ref.rid}_{counter['atom']}"

    def fresh_term_id() -> str:
        counter["term"] += 1
        return f"$t{ref.rid}_{counter['term']}"

    def collect_pattern_preds(pattern: RulePattern) -> None:
        # Concrete functors inside quoted patterns are part of the rule's
        # vocabulary: a context whose rules mention `permitted` in a
        # template defines that predicate as far as `predicate(P)` type
        # constraints are concerned.
        for atom_pattern in pattern.heads:
            if isinstance(atom_pattern.functor, str):
                preds_seen.add(atom_pattern.functor)
        for lit in pattern.body:
            if isinstance(lit, AtomPattern) and isinstance(lit.functor, str):
                preds_seen.add(lit.functor)
            elif isinstance(lit, EqPattern):
                collect_pattern_preds(lit.quote.pattern)

    def reify_atom(atom: Atom, role: str, negated: bool) -> None:
        atom_id = fresh_atom_id()
        facts.append((role, (ref, atom_id)))
        facts.append(("atom", (atom_id,)))
        facts.append(("functor", (atom_id, atom.pred)))
        preds_seen.add(atom.pred)
        if negated:
            facts.append(("negated", (atom_id,)))
        all_args = atom.all_args
        facts.append(("arity", (atom_id, len(all_args))))
        for index, term in enumerate(all_args):
            term_id = fresh_term_id()
            facts.append(("arg", (atom_id, index, term_id)))
            facts.append(("term", (term_id,)))
            if isinstance(term, Variable):
                facts.append(("variable", (term_id,)))
                facts.append(("vname", (term_id, term.name)))
            elif isinstance(term, Constant):
                facts.append(("constant", (term_id,)))
                facts.append(("value", (term_id, term.value)))
            elif isinstance(term, Quote):
                # A quoted pattern is a *code constant*: pull0-style
                # meta-rules bind it through `value` and ship it as a
                # request.  `constant` keeps Figure 1's value(C,V) ->
                # constant(C) declaration satisfied.
                facts.append(("quoteterm", (term_id,)))
                facts.append(("constant", (term_id,)))
                facts.append(("value", (term_id, PatternValue(term.pattern))))
                collect_pattern_preds(term.pattern)
            # Expr / PartitionTerm args stay opaque: term(T) only.

    for head in rule.heads:
        reify_atom(head, "head", negated=False)
    for item in rule.body:
        if isinstance(item, Literal):
            reify_atom(item.atom, "body", item.negated)
        # Comparisons and builtin calls are not part of the Figure 1 model;
        # they are invisible to reflection (the paper's patterns only match
        # relational atoms).
    if rule.is_fact():
        facts.append(("factrule", (ref,)))
    for pred in sorted(preds_seen):
        facts.append(("predicate", (pred,)))
        facts.append(("pname", (pred, pred)))
    return facts


# ---------------------------------------------------------------------------
# Template instantiation
# ---------------------------------------------------------------------------

def is_open_fact_pattern(pattern: RulePattern) -> bool:
    """True for a bodyless pattern that still has pattern-ness left.

    Such a quote cannot (and should not) become a concrete rule: a fact
    template with free variables, a star, or a meta-variable functor is a
    *pattern value* — e.g. the payload of a pull request, or the paper's
    section 9 delegation of ``[| permission(me,_,F,_). |]``.
    """
    if pattern.has_arrow or pattern.body:
        return False
    for atom_pattern in pattern.heads:
        if isinstance(atom_pattern.functor, Variable):
            return True
        for arg in atom_pattern.args or ():
            if isinstance(arg, Star):
                return True
            if isinstance(arg, Term) and any(True for _ in arg.variables()):
                return True
    return False


def instantiate_pattern(pattern: RulePattern, bindings: dict,
                        eval_term: Callable[[Term, dict], object]) -> Rule:
    """Substitute ``bindings`` into a quoted template, yielding a rule."""
    heads = tuple(
        _instantiate_atom(atom_pattern, bindings, eval_term)
        for atom_pattern in pattern.heads
    )
    body: list = []
    for lit in pattern.body:
        if isinstance(lit, AtomPattern):
            atom = _instantiate_atom(lit, bindings, eval_term)
            body.append(Literal(atom, lit.negated))
        elif isinstance(lit, EqPattern):
            quote = Quote(_substitute_pattern(lit.quote.pattern, bindings, eval_term))
            left: Term = Variable(lit.var.name)
            if lit.var.name in bindings:
                left = Constant(bindings[lit.var.name])
            body.append(Comparison("=", left, quote))
        elif isinstance(lit, StarLits):
            raise SafetyError(
                "a Kleene star over body literals cannot appear in a "
                "generated rule template"
            )
    return Rule(heads, tuple(body), None, None)


def _instantiate_atom(atom_pattern: AtomPattern, bindings: dict,
                      eval_term: Callable[[Term, dict], object]) -> Atom:
    functor = atom_pattern.functor
    if isinstance(functor, Variable):
        if functor.name not in bindings:
            raise SafetyError(
                f"template functor {functor.name} is unbound; cannot "
                f"generate a rule with an unknown predicate"
            )
        functor_value = bindings[functor.name]
        if not isinstance(functor_value, str):
            raise SafetyError(
                f"template functor {functor.name} bound to non-predicate "
                f"value {functor_value!r}"
            )
        functor = functor_value
    if atom_pattern.args is None:
        raise SafetyError(
            f"bare meta-variable atom {atom_pattern!r} cannot appear in a "
            f"generated rule template"
        )
    args = []
    for arg in atom_pattern.args:
        if isinstance(arg, Star):
            raise SafetyError(
                "a Kleene star argument cannot appear in a generated rule "
                "template"
            )
        args.append(_instantiate_term(arg, bindings, eval_term))
    return Atom(functor, tuple(args))


def _instantiate_term(term: Term, bindings: dict,
                      eval_term: Callable[[Term, dict], object]) -> Term:
    if isinstance(term, Variable):
        if term.name in bindings:
            return Constant(bindings[term.name])
        return term
    if isinstance(term, Constant):
        return term
    if isinstance(term, Expr):
        names = {v.name for v in term.variables()}
        if names <= set(bindings):
            return Constant(eval_term(term, bindings))
        return Expr(term.op,
                    _instantiate_term(term.left, bindings, eval_term),
                    _instantiate_term(term.right, bindings, eval_term))
    if isinstance(term, Quote):
        return Quote(_substitute_pattern(term.pattern, bindings, eval_term))
    if isinstance(term, PartitionTerm):
        return PartitionTerm(
            term.pred,
            tuple(_instantiate_term(k, bindings, eval_term) for k in term.keys),
        )
    raise SafetyError(f"cannot instantiate template term {term!r}")


def _substitute_pattern(pattern: RulePattern, bindings: dict,
                        eval_term: Callable[[Term, dict], object]) -> RulePattern:
    """Apply bindings inside a nested pattern, keeping stars and metavars."""

    def sub_atom(atom_pattern: AtomPattern) -> AtomPattern:
        functor = atom_pattern.functor
        if isinstance(functor, Variable) and functor.name in bindings:
            value = bindings[functor.name]
            if not isinstance(value, str):
                raise SafetyError(
                    f"pattern functor {functor.name} bound to non-predicate "
                    f"value {value!r}"
                )
            functor = value
        args = None
        if atom_pattern.args is not None:
            new_args = []
            for arg in atom_pattern.args:
                if isinstance(arg, Star):
                    new_args.append(arg)
                else:
                    new_args.append(_instantiate_term(arg, bindings, eval_term))
            args = tuple(new_args)
        return AtomPattern(functor, args, atom_pattern.negated)

    heads = tuple(sub_atom(h) for h in pattern.heads)
    body: list = []
    for lit in pattern.body:
        if isinstance(lit, AtomPattern):
            body.append(sub_atom(lit))
        elif isinstance(lit, EqPattern):
            body.append(EqPattern(
                lit.var,
                Quote(_substitute_pattern(lit.quote.pattern, bindings, eval_term)),
            ))
        else:
            body.append(lit)
    return RulePattern(heads, tuple(body), pattern.has_arrow)
