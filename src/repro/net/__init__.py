"""Simulated network substrate: nodes, FIFO links, virtual clock, stats."""

from .network import LinkStats, SimulatedNetwork

__all__ = ["LinkStats", "SimulatedNetwork"]
