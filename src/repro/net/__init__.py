"""Simulated network substrate: nodes, FIFO links, virtual clock, stats."""

from .batch import DEFAULT_MAX_BATCH_BYTES, MessageBatcher
from .network import LinkStats, SimulatedNetwork

__all__ = ["DEFAULT_MAX_BATCH_BYTES", "LinkStats", "MessageBatcher",
           "SimulatedNetwork"]
