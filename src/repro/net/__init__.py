"""Network substrate: nodes, FIFO links, traffic stats — two transports.

:class:`SimulatedNetwork` runs on a virtual clock with modeled latency;
:class:`SocketNetwork` moves the same messages over real TCP sockets
(length-prefixed frames, wall clock).  Both expose the interface the
cluster scheduler consumes, so every runtime runs unchanged on either.
"""

from .batch import DEFAULT_MAX_BATCH_BYTES, MessageBatcher
from .network import LinkStats, SimulatedNetwork
from .socket_transport import MAX_FRAME_BYTES, SocketNetwork

__all__ = ["DEFAULT_MAX_BATCH_BYTES", "LinkStats", "MAX_FRAME_BYTES",
           "MessageBatcher", "SimulatedNetwork", "SocketNetwork"]
