"""Per-destination coalescing of outbound facts into batched messages.

A delta-exchange round used to cost one network message per fact; the
cluster runtime (and the LBTrust system loop) instead accumulate facts
here per ``(src, dst)`` link and flush **one batch message per link per
round** — so the network's message counter measures batches, which is
what a real transport would pay for.  A batch whose encoded size would
exceed ``max_bytes`` is flushed early, capping message size the way an
MTU/frame limit would.
"""

from __future__ import annotations

import json
from typing import Optional

from .transport import encode_batch_item, encode_batch_message_parts

#: Default size cap per batch message, in encoded-payload bytes.  Small
#: enough that a pathological round still produces bounded messages,
#: large enough that typical rounds coalesce into a single envelope.
DEFAULT_MAX_BATCH_BYTES = 16384

#: Fixed envelope overhead assumed per message ({"round":NNN,"batch":[]}).
_ENVELOPE_OVERHEAD = 32


class MessageBatcher:
    """Accumulates facts per link; flushes size-capped batch messages."""

    def __init__(self, network, registry,
                 max_bytes: int = DEFAULT_MAX_BATCH_BYTES,
                 ledger: Optional[object] = None) -> None:
        self.network = network
        self.registry = registry
        self.max_bytes = max_bytes
        #: optional quiescence :class:`~repro.cluster.quiescence.TicketLedger`;
        #: when set, one ticket is issued per message sent — including
        #: early size-capped flushes, which callers never see.
        self.ledger = ledger
        self.sent_messages = 0
        self.sent_items = 0
        self._buffers: dict[tuple[str, str], list] = {}
        self._sizes: dict[tuple[str, str], int] = {}

    def add(self, src: str, dst: str, pred: str, fact: tuple,
            to: str = "", round_stamp: int = 0) -> None:
        """Queue one fact for the ``src -> dst`` link.

        If appending it would push the pending batch past ``max_bytes``,
        the pending batch is flushed first (stamped with ``round_stamp``)
        so no single message exceeds the cap by more than one item.

        Items are serialized here, once: the same encoded text that
        sizes the batch is spliced verbatim into the wire envelope at
        flush, so the hot exchange path never serializes a fact twice.
        """
        item = encode_batch_item(pred, fact, self.registry, to=to)
        encoded = json.dumps(item, separators=(",", ":"))
        item_size = len(encoded) + 1
        link = (src, dst)
        pending = self._sizes.get(link, _ENVELOPE_OVERHEAD)
        if link in self._buffers and pending + item_size > self.max_bytes:
            self._flush_link(link, round_stamp)
            pending = _ENVELOPE_OVERHEAD
        self._buffers.setdefault(link, []).append(encoded)
        self._sizes[link] = pending + item_size

    def pending_items(self) -> int:
        return sum(len(items) for items in self._buffers.values())

    def flush(self, round_stamp: int = 0) -> int:
        """Send every pending batch; returns the number of messages sent."""
        sent = 0
        for link in sorted(self._buffers):
            sent += self._flush_link(link, round_stamp)
        return sent

    def _flush_link(self, link: tuple[str, str], round_stamp: int) -> int:
        items = self._buffers.pop(link, None)
        self._sizes.pop(link, None)
        if not items:
            return 0
        blob = encode_batch_message_parts(items, round_stamp)
        src, dst = link
        self.network.send(src, dst, blob)
        if self.ledger is not None:
            # Tickets are slotted per (sender, round): the receiver
            # retires against the same slot, keeping the quiescence
            # protocol exact under out-of-order delivery.
            self.ledger.issue(round_stamp, sender=src)
        self.sent_messages += 1
        self.sent_items += len(items)
        return 1
