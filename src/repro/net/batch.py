"""Per-destination coalescing of outbound facts into batched messages.

A delta-exchange round used to cost one network message per fact; the
cluster runtime (and the LBTrust system loop) instead accumulate facts
here per ``(src, dst)`` link and flush **one batch message per link per
round** — so the network's message counter measures batches, which is
what a real transport would pay for.  A batch whose encoded size would
exceed ``max_bytes`` is flushed early, capping message size the way an
MTU/frame limit would.

Two wire formats:

* ``wire_format="dict"`` (default) — dictionary-compressed envelopes:
  every distinct to/pred name and every distinct encoded value is
  serialized once per batch, rows are int-index arrays into those
  dictionaries.  Delta-exchange traffic is dominated by a small working
  set of ground terms (vertex ids, principal names), so this cuts
  payload bytes per fact substantially.
* ``wire_format="legacy"`` — the original one-tagged-object-per-fact
  batch, byte-for-byte identical to what older peers emit; keep it for
  links into mixed-version clusters.  Decoding needs no flag — the
  receiver sniffs both formats (:func:`decode_batch_message`).
"""

from __future__ import annotations

import json
from typing import Optional

from ..datalog.errors import NetworkError
from .transport import (
    encode_batch_item,
    encode_batch_message_compressed,
    encode_batch_message_parts,
    encode_value,
)

#: Default size cap per batch message, in encoded-payload bytes.  Small
#: enough that a pathological round still produces bounded messages,
#: large enough that typical rounds coalesce into a single envelope.
DEFAULT_MAX_BATCH_BYTES = 16384

#: Fixed envelope overhead assumed per message ({"round":NNN,"batch":[]}).
_ENVELOPE_OVERHEAD = 32

#: Envelope overhead of the compressed form
#: ({"round":NNN,"names":[],"dict":[],"rows":[]}).
_DICT_ENVELOPE_OVERHEAD = 48


class _LinkBuffer:
    """One link's pending compressed batch: dictionaries + index rows."""

    __slots__ = ("names", "name_texts", "values", "value_texts", "rows",
                 "size")

    def __init__(self) -> None:
        self.names: dict[str, int] = {}       # to/pred name -> index
        self.name_texts: list[str] = []       # JSON string literals
        self.values: dict[str, int] = {}      # encoded value text -> index
        self.value_texts: list[str] = []      # tagged-object texts
        self.rows: list[str] = []             # "[to,pred,v...]" texts
        self.size = _DICT_ENVELOPE_OVERHEAD


class MessageBatcher:
    """Accumulates facts per link; flushes size-capped batch messages."""

    def __init__(self, network, registry,
                 max_bytes: int = DEFAULT_MAX_BATCH_BYTES,
                 ledger: Optional[object] = None,
                 wire_format: str = "dict") -> None:
        if wire_format not in ("dict", "legacy"):
            raise NetworkError(
                f"unknown wire format {wire_format!r}; pick dict or legacy")
        self.network = network
        self.registry = registry
        self.max_bytes = max_bytes
        self.wire_format = wire_format
        #: optional quiescence :class:`~repro.cluster.quiescence.TicketLedger`;
        #: when set, one ticket is issued per message sent — including
        #: early size-capped flushes, which callers never see.
        self.ledger = ledger
        self.sent_messages = 0
        self.sent_items = 0
        self._buffers: dict[tuple[str, str], list] = {}    # legacy format
        self._sizes: dict[tuple[str, str], int] = {}
        self._links: dict[tuple[str, str], _LinkBuffer] = {}

    def add(self, src: str, dst: str, pred: str, fact: tuple,
            to: str = "", round_stamp: int = 0) -> None:
        """Queue one fact for the ``src -> dst`` link.

        If appending it would push the pending batch past ``max_bytes``,
        the pending batch is flushed first (stamped with ``round_stamp``)
        so no single message exceeds the cap by more than one item.

        Items are serialized here, once: the same encoded texts that
        size the batch are spliced verbatim into the wire envelope at
        flush, so the hot exchange path never serializes a fact twice.
        """
        if self.wire_format == "legacy":
            self._add_legacy(src, dst, pred, fact, to, round_stamp)
            return
        registry = self.registry
        value_texts = [
            json.dumps(encode_value(v, registry), separators=(",", ":"))
            for v in fact]
        link = (src, dst)
        buffer = self._links.get(link)
        if buffer is None:
            buffer = self._links[link] = _LinkBuffer()
        new_names, new_values, row_text, added = _plan_item(
            buffer, to, pred, value_texts)
        if buffer.rows and buffer.size + added > self.max_bytes:
            self._flush_link(link, round_stamp)
            buffer = self._links[link] = _LinkBuffer()
            # Fresh dictionaries: every entry is new again, and the row's
            # indices (hence its text and size) change with them.
            new_names, new_values, row_text, added = _plan_item(
                buffer, to, pred, value_texts)
        for name in new_names:
            buffer.names[name] = len(buffer.name_texts)
            buffer.name_texts.append(json.dumps(name, separators=(",", ":")))
        for text in new_values:
            buffer.values[text] = len(buffer.value_texts)
            buffer.value_texts.append(text)
        buffer.rows.append(row_text)
        buffer.size += added

    def _add_legacy(self, src: str, dst: str, pred: str, fact: tuple,
                    to: str, round_stamp: int) -> None:
        item = encode_batch_item(pred, fact, self.registry, to=to)
        encoded = json.dumps(item, separators=(",", ":"))
        item_size = len(encoded) + 1
        link = (src, dst)
        pending = self._sizes.get(link, _ENVELOPE_OVERHEAD)
        if link in self._buffers and pending + item_size > self.max_bytes:
            self._flush_link(link, round_stamp)
            pending = _ENVELOPE_OVERHEAD
        self._buffers.setdefault(link, []).append(encoded)
        self._sizes[link] = pending + item_size

    def pending_items(self) -> int:
        return sum(len(items) for items in self._buffers.values()) \
            + sum(len(buffer.rows) for buffer in self._links.values())

    def flush(self, round_stamp: int = 0) -> int:
        """Send every pending batch; returns the number of messages sent."""
        sent = 0
        for link in sorted(set(self._buffers) | set(self._links)):
            sent += self._flush_link(link, round_stamp)
        return sent

    def _flush_link(self, link: tuple[str, str], round_stamp: int) -> int:
        buffer = self._links.pop(link, None)
        if buffer is not None and buffer.rows:
            blob = encode_batch_message_compressed(
                buffer.name_texts, buffer.value_texts, buffer.rows,
                round_stamp)
            count = len(buffer.rows)
        else:
            items = self._buffers.pop(link, None)
            self._sizes.pop(link, None)
            if not items:
                return 0
            blob = encode_batch_message_parts(items, round_stamp)
            count = len(items)
        src, dst = link
        self.network.send(src, dst, blob)
        if self.ledger is not None:
            # Tickets are slotted per (sender, round): the receiver
            # retires against the same slot, keeping the quiescence
            # protocol exact under out-of-order delivery.
            self.ledger.issue(round_stamp, sender=src)
        self.sent_messages += 1
        self.sent_items += count
        return 1


def _plan_item(buffer: _LinkBuffer, to: str, pred: str,
               value_texts: list) -> tuple[list, list, str, int]:
    """Lay one item out against a link's dictionaries, without mutating.

    Returns ``(new_names, new_values, row_text, added_bytes)`` — the
    dictionary entries the item introduces, the serialized index row,
    and the exact byte growth of the envelope.  Kept side-effect free so
    the caller can decide to flush first (a full batch) and re-plan
    against fresh dictionaries.
    """
    row = []
    new_names: list[str] = []
    pending_names: dict[str, int] = {}
    next_name = len(buffer.name_texts)
    for name in (to, pred):
        idx = buffer.names.get(name)
        if idx is None:
            idx = pending_names.get(name)
            if idx is None:
                idx = next_name + len(new_names)
                pending_names[name] = idx
                new_names.append(name)
        row.append(idx)
    new_values: list[str] = []
    pending_values: dict[str, int] = {}
    next_value = len(buffer.value_texts)
    for text in value_texts:
        idx = buffer.values.get(text)
        if idx is None:
            idx = pending_values.get(text)
            if idx is None:
                idx = next_value + len(new_values)
                pending_values[text] = idx
                new_values.append(text)
        row.append(idx)
    row_text = "[" + ",".join(map(str, row)) + "]"
    added = len(row_text) + 1 \
        + sum(len(json.dumps(n, separators=(",", ":"))) + 1
              for n in new_names) \
        + sum(len(t) + 1 for t in new_values)
    return new_names, new_values, row_text, added
