"""A simulated network: nodes, FIFO links, virtual clock, traffic stats.

The paper assumes "principals may reside on different nodes" with
LogicBlox placing predicate partitions via ``predNode`` (section 3.5); its
own evaluation ran on one host.  We go one step further and actually
exercise the distribution machinery over a simulated network:

* messages between a node pair are delivered FIFO, after a per-link
  latency (constant plus optional seeded jitter — deterministic runs);
* a virtual clock advances with deliveries, so experiments can report
  convergence time without wall-clock sleeps;
* per-link and global counters (messages, bytes) feed the SeNDlog
  convergence benchmark (A7) and the examples' traffic reports.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Optional

from ..datalog.errors import NetworkError


@dataclass(order=True)
class _Envelope:
    arrival: float
    seq: int
    src: str = field(compare=False)
    dst: str = field(compare=False)
    payload: bytes = field(compare=False)


@dataclass
class LinkStats:
    messages: int = 0
    bytes: int = 0


class SimulatedNetwork:
    """FIFO links with latency between named nodes."""

    def __init__(self, default_latency: float = 1.0,
                 jitter: float = 0.0, seed: Optional[int] = None) -> None:
        self.default_latency = default_latency
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._nodes: set[str] = set()
        self._latency: dict[tuple[str, str], float] = {}
        self._queue: list[_Envelope] = []
        self._seq = itertools.count()
        self._last_sent: dict[tuple[str, str], float] = {}
        self.clock: float = 0.0
        self.stats: dict[tuple[str, str], LinkStats] = {}
        self.total = LinkStats()

    # -- topology -----------------------------------------------------------

    def add_node(self, name: str) -> None:
        self._nodes.add(name)

    def nodes(self) -> set[str]:
        return set(self._nodes)

    def set_latency(self, src: str, dst: str, latency: float,
                    symmetric: bool = True) -> None:
        self._check_node(src)
        self._check_node(dst)
        self._latency[(src, dst)] = latency
        if symmetric:
            self._latency[(dst, src)] = latency

    def latency(self, src: str, dst: str) -> float:
        """The configured base latency of a link — a pure inspection.

        Jitter is drawn from the seeded RNG once per :meth:`send`, not
        here: merely *looking* at a link's latency (or costing the same
        send twice) must not perturb the deterministic jitter stream.
        """
        return self._latency.get((src, dst), self.default_latency)

    def _transit_latency(self, src: str, dst: str) -> float:
        """Base latency plus one jitter draw — consumed only by send()."""
        base = self._latency.get((src, dst), self.default_latency)
        if self.jitter:
            base += self._rng.uniform(0.0, self.jitter)
        return base

    def _check_node(self, name: str) -> None:
        if name not in self._nodes:
            raise NetworkError(f"unknown node {name!r}")

    # -- traffic -------------------------------------------------------------

    def send(self, src: str, dst: str, payload: bytes,
             at: Optional[float] = None) -> None:
        """Queue a message; local (src == dst) delivery has zero latency."""
        self._check_node(src)
        self._check_node(dst)
        when = self.clock if at is None else at
        if src == dst:
            arrival = when
        else:
            arrival = when + self._transit_latency(src, dst)
            # FIFO per link: never deliver before an earlier send on the link.
            previous = self._last_sent.get((src, dst), 0.0)
            arrival = max(arrival, previous)
            self._last_sent[(src, dst)] = arrival
        envelope = _Envelope(arrival, next(self._seq), src, dst, payload)
        heapq.heappush(self._queue, envelope)
        link = self.stats.setdefault((src, dst), LinkStats())
        link.messages += 1
        link.bytes += len(payload)
        self.total.messages += 1
        self.total.bytes += len(payload)

    def pending(self) -> int:
        return len(self._queue)

    def deliver_next(self) -> Optional[tuple[str, str, bytes]]:
        """Pop the earliest message, advancing the virtual clock."""
        if not self._queue:
            return None
        envelope = heapq.heappop(self._queue)
        self.clock = max(self.clock, envelope.arrival)
        return envelope.src, envelope.dst, envelope.payload

    def deliver_all(self) -> list[tuple[str, str, bytes]]:
        """Drain the queue in arrival order (senders may not re-enqueue)."""
        out = []
        while self._queue:
            delivered = self.deliver_next()
            if delivered is not None:
                out.append(delivered)
        return out

    def link_stats(self, src: str, dst: str) -> LinkStats:
        """The *stored* counters of a link (created empty on first use).

        Always returns the entry held in :attr:`stats`, so callers that
        accumulate into the returned object mutate the shared counters
        instead of silently losing counts into a throwaway copy.
        """
        return self.stats.setdefault((src, dst), LinkStats())

    def reset_stats(self) -> None:
        """Zero the traffic counters for a fresh measurement.

        When no message is in flight this also clears the per-link FIFO
        watermarks and rewinds the virtual clock, so a back-to-back run
        starts genuinely fresh instead of inheriting the previous run's
        per-link delivery floor (messages would otherwise never arrive
        before the old watermarks).  With messages still queued the
        timing state is kept — rewinding mid-flight would corrupt their
        arrival ordering.
        """
        self.stats.clear()
        self.total = LinkStats()
        if not self._queue:
            self._last_sent.clear()
            self.clock = 0.0

    def reset(self) -> None:
        """Full reset: drop queued messages, watermarks, clock and stats."""
        self._queue.clear()
        self.reset_stats()
