"""Real socket transport: the simulated network's surface over TCP.

:class:`SocketNetwork` implements the same duck-typed interface the
:class:`~repro.cluster.scheduler.ExecutionRuntime` consumes from
:class:`~repro.net.network.SimulatedNetwork` — ``add_node`` / ``send`` /
``deliver_next`` / ``deliver_all`` / ``pending`` / ``link_stats`` /
``clock`` — but every message actually crosses an OS socket as a
length-prefixed TCP frame.  ``Cluster(mode="bsp"|"async")`` and
:class:`~repro.core.system.LBTrustSystem` therefore run unchanged over
real sockets; wall-clock seconds replace the virtual clock in reports.

Design notes:

* **Framing** — ``!I`` payload-frame length, then ``!H``-prefixed source
  and destination node names (UTF-8), then the raw payload bytes.  TCP
  guarantees per-connection FIFO, and each ``(src, dst)`` link owns one
  connection, so the simulated network's per-link FIFO contract holds on
  the wire for free.

* **Local vs remote nodes** — ``add_node`` opens a loopback listener for
  a node hosted *in this process*; ``add_remote`` registers the address
  of a node hosted elsewhere (another OS process — see
  :mod:`repro.cluster.launch`).  A single-process cluster simply adds
  every node locally and the whole exchange rides the loopback.

* **Exact pending/deliver semantics** — a frame written to a loopback
  socket is not instantly readable, so the transport counts its own
  local→local sends in flight and blocks ``deliver_next`` (bounded by
  ``delivery_timeout``) until the frames it *knows* were sent have
  arrived.  That keeps the scheduler's termination conditions
  (``pending() == 0``, ``deliver_next() is None``) exact in-process —
  the same guarantee the virtual-clock queue gave — while frames from
  *remote* processes are waited for explicitly via :meth:`receive`.

* **No latency model** — real links have real latency; ``set_latency``
  raises.  The per-link/total byte counters measure payload bytes (not
  framing overhead), matching the simulated network's accounting so
  traffic reports stay comparable across transports.
"""

from __future__ import annotations

import selectors
import socket
import struct
import time
from collections import deque
from typing import Optional

from ..datalog.errors import NetworkError
from .network import LinkStats

_LEN = struct.Struct("!I")
_NAME = struct.Struct("!H")

#: Hard cap on a single frame's body (names + payload); a peer sending a
#: larger length prefix is treated as corrupt rather than ballooning RAM.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def _pack_frame(src: str, dst: str, payload: bytes) -> bytes:
    src_b = src.encode("utf-8")
    dst_b = dst.encode("utf-8")
    body = b"".join((
        _NAME.pack(len(src_b)), src_b,
        _NAME.pack(len(dst_b)), dst_b,
        payload,
    ))
    return _LEN.pack(len(body)) + body


def _unpack_body(body: bytes) -> tuple[str, str, bytes]:
    offset = 0
    names = []
    for _ in range(2):
        if offset + _NAME.size > len(body):
            raise NetworkError("truncated socket frame header")
        (length,) = _NAME.unpack_from(body, offset)
        offset += _NAME.size
        if offset + length > len(body):
            raise NetworkError("truncated socket frame name")
        names.append(body[offset:offset + length].decode("utf-8"))
        offset += length
    return names[0], names[1], bytes(body[offset:])


class SocketNetwork:
    """FIFO links between named nodes, over real loopback/LAN TCP.

    ``clock`` is wall-clock seconds since construction (monotonic), so
    reports built against the virtual clock read as real elapsed time.
    """

    def __init__(self, host: str = "127.0.0.1",
                 delivery_timeout: float = 10.0) -> None:
        self.host = host
        #: how long deliver_next()/receive() may wait for a frame known
        #: (or expected) to be in flight before declaring it lost
        self.delivery_timeout = delivery_timeout
        self._selector = selectors.DefaultSelector()
        self._listeners: dict[str, socket.socket] = {}
        #: node -> (host, port) — local listeners and registered remotes
        self._addresses: dict[str, tuple[str, int]] = {}
        self._remote: set[str] = set()
        self._outgoing: dict[tuple[str, str], socket.socket] = {}
        self._buffers: dict[socket.socket, bytearray] = {}
        self._arrived: deque[tuple[str, str, bytes]] = deque()
        #: local→local frames written but not yet parsed out of a buffer
        self._inflight = 0
        self._epoch = time.monotonic()
        self._closed = False
        self.stats: dict[tuple[str, str], LinkStats] = {}
        self.total = LinkStats()

    # -- topology -----------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Host ``name`` in this process: open its loopback listener."""
        if name in self._listeners:
            return
        if name in self._remote:
            raise NetworkError(f"node {name!r} is already remote")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen()
        listener.setblocking(False)
        self._listeners[name] = listener
        self._addresses[name] = listener.getsockname()[:2]
        self._selector.register(listener, selectors.EVENT_READ,
                                ("accept", name))

    def add_remote(self, name: str, host: str, port: int) -> None:
        """Register a node hosted by another process at ``host:port``."""
        if name in self._listeners:
            raise NetworkError(f"node {name!r} is already local")
        self._remote.add(name)
        self._addresses[name] = (host, port)

    def nodes(self) -> set[str]:
        return set(self._addresses)

    def port_of(self, name: str) -> int:
        """The listening port of a locally hosted node."""
        if name not in self._listeners:
            raise NetworkError(f"node {name!r} has no local listener")
        return self._addresses[name][1]

    def set_latency(self, src: str, dst: str, latency: float,
                    symmetric: bool = True) -> None:
        raise NetworkError(
            "SocketNetwork links have real latency; set_latency applies "
            "to SimulatedNetwork only")

    def _check_node(self, name: str) -> None:
        if name not in self._addresses:
            raise NetworkError(f"unknown node {name!r}")

    # -- clock --------------------------------------------------------------

    @property
    def clock(self) -> float:
        """Wall-clock seconds since the network came up."""
        return time.monotonic() - self._epoch

    # -- traffic ------------------------------------------------------------

    def send(self, src: str, dst: str, payload: bytes,
             at: Optional[float] = None) -> None:
        """Write one length-prefixed frame on the ``src -> dst`` link.

        ``at`` is accepted for interface parity with the simulated
        network and ignored: a socket cannot send in the past.
        """
        self._check_node(src)
        self._check_node(dst)
        if src in self._remote:
            raise NetworkError(f"cannot send as remote node {src!r}")
        conn = self._outgoing.get((src, dst))
        if conn is None:
            conn = socket.create_connection(self._addresses[dst],
                                            timeout=self.delivery_timeout)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(self.delivery_timeout)
            self._outgoing[(src, dst)] = conn
        try:
            conn.sendall(_pack_frame(src, dst, payload))
        except OSError as exc:
            raise NetworkError(
                f"send {src!r} -> {dst!r} failed: {exc}") from exc
        if dst in self._listeners:
            self._inflight += 1
        link = self.stats.setdefault((src, dst), LinkStats())
        link.messages += 1
        link.bytes += len(payload)
        self.total.messages += 1
        self.total.bytes += len(payload)

    # -- receive path -------------------------------------------------------

    def _poll(self, timeout: float) -> None:
        """Accept connections and parse every readable frame."""
        for key, _events in self._selector.select(timeout):
            kind, name = key.data
            if kind == "accept":
                try:
                    conn, _addr = key.fileobj.accept()
                except OSError:
                    continue
                conn.setblocking(False)
                self._buffers[conn] = bytearray()
                self._selector.register(conn, selectors.EVENT_READ,
                                        ("read", name))
            else:
                self._read_frames(key.fileobj)

    def _read_frames(self, conn: socket.socket) -> None:
        buffer = self._buffers.get(conn)
        if buffer is None:
            return
        try:
            chunk = conn.recv(1 << 16)
        except BlockingIOError:
            return
        except OSError:
            chunk = b""
        if not chunk:
            self._selector.unregister(conn)
            self._buffers.pop(conn, None)
            conn.close()
            if buffer:
                raise NetworkError("peer closed mid-frame")
            return
        buffer.extend(chunk)
        while True:
            if len(buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise NetworkError(f"socket frame of {length} bytes "
                                   f"exceeds the {MAX_FRAME_BYTES} cap")
            if len(buffer) < _LEN.size + length:
                break
            body = bytes(buffer[_LEN.size:_LEN.size + length])
            del buffer[:_LEN.size + length]
            src, dst, payload = _unpack_body(body)
            self._arrived.append((src, dst, payload))
            if src in self._listeners and dst in self._listeners:
                # one of our own local→local frames has landed
                self._inflight = max(0, self._inflight - 1)

    def pending(self) -> int:
        """Frames arrived but undelivered, plus local sends in flight."""
        self._poll(0)
        return len(self._arrived) + self._inflight

    def deliver_next(self) -> Optional[tuple[str, str, bytes]]:
        """Pop the next arrived frame in arrival order.

        Blocks (bounded by ``delivery_timeout``) while local sends are
        known to be in flight, so in-process callers observe the exact
        queue semantics of the simulated network; returns ``None`` only
        when nothing was sent that has not been delivered.
        """
        if not self._arrived:
            deadline = time.monotonic() + self.delivery_timeout
            while self._inflight and not self._arrived:
                if time.monotonic() > deadline:
                    raise NetworkError(
                        f"{self._inflight} local frame(s) in flight but "
                        f"nothing arrived within {self.delivery_timeout}s")
                self._poll(0.05)
        if not self._arrived:
            return None
        return self._arrived.popleft()

    def deliver_all(self) -> list[tuple[str, str, bytes]]:
        """Drain every arrived and in-flight frame, in arrival order."""
        out = []
        while self.pending():
            delivered = self.deliver_next()
            if delivered is None:  # pragma: no cover - pending() raced
                break
            out.append(delivered)
        return out

    def receive(self, timeout: Optional[float] = None
                ) -> Optional[tuple[str, str, bytes]]:
        """Wait up to ``timeout`` seconds for one frame from anywhere.

        Unlike :meth:`deliver_next` this also waits for frames from
        *remote* processes, whose sends this transport cannot count; a
        quiet wire returns ``None`` instead of raising.  This is the
        multiprocess launcher's receive primitive.
        """
        if self._arrived:
            return self._arrived.popleft()
        budget = self.delivery_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        # Always poll at least once: receive(0) is a non-blocking check
        # and must still harvest frames already sitting in the kernel.
        self._poll(0)
        while not self._arrived:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            self._poll(min(remaining, 0.05))
        return self._arrived.popleft()

    # -- stats / teardown ---------------------------------------------------

    def link_stats(self, src: str, dst: str) -> LinkStats:
        """The stored counters of a link (created empty on first use)."""
        return self.stats.setdefault((src, dst), LinkStats())

    def reset_stats(self) -> None:
        """Zero the traffic counters; wall time cannot be rewound."""
        self.stats.clear()
        self.total = LinkStats()

    def close(self) -> None:
        """Close every socket this network owns."""
        if self._closed:
            return
        self._closed = True
        for conn in list(self._buffers):
            try:
                self._selector.unregister(conn)
            except (KeyError, ValueError):
                pass
            conn.close()
        self._buffers.clear()
        for conn in self._outgoing.values():
            conn.close()
        self._outgoing.clear()
        for listener in self._listeners.values():
            try:
                self._selector.unregister(listener)
            except (KeyError, ValueError):
                pass
            listener.close()
        self._listeners.clear()
        self._selector.close()

    def __enter__(self) -> "SocketNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SocketNetwork(local={sorted(self._listeners)}, "
                f"remote={sorted(self._remote)})")
