"""Wire format for inter-principal messages.

Distribution in LBTrust moves *facts of partitioned predicates* between
nodes (paper section 3.5); the interesting payload values are rules
(Binder certificates are rules + signatures).  The codec below is a small
tagged-JSON format:

* rules travel as their registry-canonical source text — the same bytes
  that signatures cover, so a message cannot be re-signed "for free" by
  reserializing;
* the receiver re-parses and re-interns, which makes transfer work even
  across registries (different LBTrust systems), not just within one.

Byte counts reported by the network statistics are the encoded payload
lengths, giving benchmarks a representation-independent traffic measure.
"""

from __future__ import annotations

import json
from typing import Any

from ..datalog.errors import NetworkError
from ..datalog.parser import parse_statements, parse_term
from ..datalog.pretty import format_pattern
from ..datalog.terms import PatternValue, PredPartition, Quote, RuleRef


def encode_value(value: Any, registry) -> Any:
    """Encode one ground value into a JSON-able tagged form."""
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        return {"t": "float", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if isinstance(value, bytes):
        return {"t": "bytes", "v": value.hex()}
    if isinstance(value, RuleRef):
        return {"t": "rule", "v": registry.canonical_text(value)}
    if isinstance(value, PatternValue):
        return {"t": "pattern", "v": f"[| {format_pattern(value.pattern)} |]"}
    if isinstance(value, PredPartition):
        return {"t": "part", "p": value.pred,
                "k": [encode_value(k, registry) for k in value.keys]}
    if isinstance(value, tuple):
        return {"t": "list", "v": [encode_value(v, registry) for v in value]}
    raise NetworkError(f"cannot serialize value of type {type(value).__name__}")


def decode_value(encoded: Any, registry) -> Any:
    tag = encoded.get("t")
    if tag in ("bool", "int", "float", "str"):
        return encoded["v"]
    if tag == "bytes":
        return bytes.fromhex(encoded["v"])
    if tag == "rule":
        statements = parse_statements(encoded["v"])
        if len(statements) != 1:
            raise NetworkError("rule payload must contain exactly one statement")
        return registry.intern(statements[0])
    if tag == "pattern":
        term = parse_term(encoded["v"])
        if not isinstance(term, Quote):
            raise NetworkError("pattern payload is not a quote")
        return PatternValue(term.pattern)
    if tag == "part":
        return PredPartition(encoded["p"],
                             tuple(decode_value(k, registry) for k in encoded["k"]))
    if tag == "list":
        return tuple(decode_value(v, registry) for v in encoded["v"])
    raise NetworkError(f"unknown value tag {tag!r}")


def encode_fact_message(pred: str, fact: tuple, registry,
                        to: str = "") -> bytes:
    """Serialize one partitioned-predicate fact as a wire message.

    ``to`` names the destination *principal* (several principals may share
    one physical node, so node addressing alone is not enough).
    """
    payload = {
        "to": to,
        "pred": pred,
        "fact": [encode_value(v, registry) for v in fact],
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_fact_message(blob: bytes, registry) -> tuple[str, str, tuple]:
    """Decode a message: ``(to_principal, pred, fact)``."""
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable message: {exc}") from exc
    return _decode_item(payload, registry)


def _decode_item(payload: Any, registry) -> tuple[str, str, tuple]:
    if not isinstance(payload, dict):
        raise NetworkError("malformed message payload")
    pred = payload.get("pred")
    fact = payload.get("fact")
    to = payload.get("to", "")
    if not isinstance(pred, str) or not isinstance(fact, list) \
            or not isinstance(to, str):
        raise NetworkError("malformed message payload")
    return to, pred, tuple(decode_value(v, registry) for v in fact)


# ---------------------------------------------------------------------------
# Batched messages (one envelope per destination node per round)
# ---------------------------------------------------------------------------

def encode_batch_item(pred: str, fact: tuple, registry,
                      to: str = "") -> dict:
    """One fact as a JSON-able batch entry (same shape as a single
    fact message, minus the envelope)."""
    return {
        "to": to,
        "pred": pred,
        "fact": [encode_value(v, registry) for v in fact],
    }


def encode_batch_message(items: list, round_stamp: int = 0) -> bytes:
    """Serialize pre-encoded batch items into one wire message.

    ``items`` are :func:`encode_batch_item` dicts; ``round_stamp`` is the
    sender's evaluation round, used by the quiescence protocol's ticket
    ledger (see :mod:`repro.cluster.quiescence`).
    """
    payload = {"round": round_stamp, "batch": items}
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def encode_batch_message_parts(encoded_items: list, round_stamp: int = 0) -> bytes:
    """Assemble a batch envelope from *already serialized* item texts.

    Byte-identical to :func:`encode_batch_message` over the decoded
    items (same compact separators), but lets the batcher reuse the
    serialization it already did for size accounting instead of
    re-dumping every fact at flush.
    """
    body = ",".join(encoded_items)
    return f'{{"round":{int(round_stamp)},"batch":[{body}]}}'.encode("utf-8")


def decode_batch_message(blob: bytes, registry) -> tuple[int, list]:
    """Decode a batch message: ``(round_stamp, [(to, pred, fact), ...])``.

    Single-fact messages (no ``batch`` key) decode as a one-item batch
    with round stamp 0, so mixed traffic stays readable.
    """
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable message: {exc}") from exc
    if not isinstance(payload, dict):
        raise NetworkError("malformed message payload")
    batch = payload.get("batch")
    if batch is None:
        return 0, [_decode_item(payload, registry)]
    round_stamp = payload.get("round", 0)
    if not isinstance(batch, list) or not isinstance(round_stamp, int):
        raise NetworkError("malformed batch payload")
    return round_stamp, [_decode_item(item, registry) for item in batch]
