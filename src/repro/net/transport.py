"""Wire format for inter-principal messages.

Distribution in LBTrust moves *facts of partitioned predicates* between
nodes (paper section 3.5); the interesting payload values are rules
(Binder certificates are rules + signatures).  The codec below is a small
tagged-JSON format:

* rules travel as their registry-canonical source text — the same bytes
  that signatures cover, so a message cannot be re-signed "for free" by
  reserializing;
* the receiver re-parses and re-interns, which makes transfer work even
  across registries (different LBTrust systems), not just within one.

Byte counts reported by the network statistics are the encoded payload
lengths, giving benchmarks a representation-independent traffic measure.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..datalog.errors import NetworkError
from ..datalog.parser import parse_statements, parse_term
from ..datalog.pretty import format_pattern
from ..datalog.terms import PatternValue, PredPartition, Quote, RuleRef


def encode_value(value: Any, registry) -> Any:
    """Encode one ground value into a JSON-able tagged form."""
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        return {"t": "float", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if isinstance(value, bytes):
        return {"t": "bytes", "v": value.hex()}
    if isinstance(value, RuleRef):
        return {"t": "rule", "v": registry.canonical_text(value)}
    if isinstance(value, PatternValue):
        return {"t": "pattern", "v": f"[| {format_pattern(value.pattern)} |]"}
    if isinstance(value, PredPartition):
        return {"t": "part", "p": value.pred,
                "k": [encode_value(k, registry) for k in value.keys]}
    if isinstance(value, tuple):
        return {"t": "list", "v": [encode_value(v, registry) for v in value]}
    raise NetworkError(f"cannot serialize value of type {type(value).__name__}")


def decode_value(encoded: Any, registry) -> Any:
    tag = encoded.get("t")
    if tag in ("bool", "int", "float", "str"):
        return encoded["v"]
    if tag == "bytes":
        return bytes.fromhex(encoded["v"])
    if tag == "rule":
        statements = parse_statements(encoded["v"])
        if len(statements) != 1:
            raise NetworkError("rule payload must contain exactly one statement")
        return registry.intern(statements[0])
    if tag == "pattern":
        term = parse_term(encoded["v"])
        if not isinstance(term, Quote):
            raise NetworkError("pattern payload is not a quote")
        return PatternValue(term.pattern)
    if tag == "part":
        return PredPartition(encoded["p"],
                             tuple(decode_value(k, registry) for k in encoded["k"]))
    if tag == "list":
        return tuple(decode_value(v, registry) for v in encoded["v"])
    raise NetworkError(f"unknown value tag {tag!r}")


def encode_fact_message(pred: str, fact: tuple, registry,
                        to: str = "") -> bytes:
    """Serialize one partitioned-predicate fact as a wire message.

    ``to`` names the destination *principal* (several principals may share
    one physical node, so node addressing alone is not enough).
    """
    payload = {
        "to": to,
        "pred": pred,
        "fact": [encode_value(v, registry) for v in fact],
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_fact_message(blob: bytes, registry) -> tuple[str, str, tuple]:
    """Decode a message: ``(to_principal, pred, fact)``."""
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable message: {exc}") from exc
    return _decode_item(payload, registry)


def _decode_item(payload: Any, registry) -> tuple[str, str, tuple]:
    if not isinstance(payload, dict):
        raise NetworkError("malformed message payload")
    pred = payload.get("pred")
    fact = payload.get("fact")
    to = payload.get("to", "")
    if not isinstance(pred, str) or not isinstance(fact, list) \
            or not isinstance(to, str):
        raise NetworkError("malformed message payload")
    return to, pred, tuple(decode_value(v, registry) for v in fact)


# ---------------------------------------------------------------------------
# Batched messages (one envelope per destination node per round)
# ---------------------------------------------------------------------------

def encode_batch_item(pred: str, fact: tuple, registry,
                      to: str = "") -> dict:
    """One fact as a JSON-able batch entry (same shape as a single
    fact message, minus the envelope)."""
    return {
        "to": to,
        "pred": pred,
        "fact": [encode_value(v, registry) for v in fact],
    }


def encode_batch_message(items: list, round_stamp: int = 0) -> bytes:
    """Serialize pre-encoded batch items into one wire message.

    ``items`` are :func:`encode_batch_item` dicts; ``round_stamp`` is the
    sender's evaluation round, used by the quiescence protocol's ticket
    ledger (see :mod:`repro.cluster.quiescence`).
    """
    payload = {"round": round_stamp, "batch": items}
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def encode_batch_message_parts(encoded_items: list, round_stamp: int = 0) -> bytes:
    """Assemble a batch envelope from *already serialized* item texts.

    Byte-identical to :func:`encode_batch_message` over the decoded
    items (same compact separators), but lets the batcher reuse the
    serialization it already did for size accounting instead of
    re-dumping every fact at flush.
    """
    body = ",".join(encoded_items)
    return f'{{"round":{int(round_stamp)},"batch":[{body}]}}'.encode("utf-8")


def encode_batch_message_compressed(name_texts: list, value_texts: list,
                                    row_texts: list,
                                    round_stamp: int = 0) -> bytes:
    """Assemble a dictionary-compressed envelope from pre-serialized parts.

    The batcher keeps each link's dictionaries as already-serialized JSON
    texts (the same texts it used for size accounting), so flush is pure
    splicing: ``name_texts`` are JSON string literals (to/pred names),
    ``value_texts`` are tagged-value objects, ``row_texts`` are int-array
    literals ``[to_idx,pred_idx,value_idx...]`` indexing into them.
    """
    names = ",".join(name_texts)
    values = ",".join(value_texts)
    rows = ",".join(row_texts)
    return (f'{{"round":{int(round_stamp)},"names":[{names}],'
            f'"dict":[{values}],"rows":[{rows}]}}').encode("utf-8")


def encode_batch_message_dict(items: list, registry,
                              round_stamp: int = 0) -> bytes:
    """Serialize ``(to, pred, fact)`` triples as one compressed envelope.

    The canonical (non-spliced) definition of the dictionary-compressed
    format: every distinct to/pred name and every distinct encoded value
    is stored once, rows reference them by index.  Byte-identical to what
    a ``wire_format="dict"`` batcher emits for the same items in the same
    order.
    """
    names: dict[str, int] = {}
    name_texts: list[str] = []
    values: dict[str, int] = {}
    value_texts: list[str] = []
    row_texts: list[str] = []
    for to, pred, fact in items:
        row = []
        for name in (to, pred):
            idx = names.get(name)
            if idx is None:
                idx = names[name] = len(name_texts)
                name_texts.append(json.dumps(name, separators=(",", ":")))
            row.append(idx)
        for value in fact:
            text = json.dumps(encode_value(value, registry),
                              separators=(",", ":"))
            idx = values.get(text)
            if idx is None:
                idx = values[text] = len(value_texts)
                value_texts.append(text)
            row.append(idx)
        row_texts.append("[" + ",".join(map(str, row)) + "]")
    return encode_batch_message_compressed(name_texts, value_texts,
                                           row_texts, round_stamp)


def _decode_compressed(payload: Any, registry) -> tuple[int, list]:
    round_stamp = payload.get("round", 0)
    names = payload.get("names")
    dictionary = payload.get("dict")
    rows = payload["rows"]
    if not isinstance(round_stamp, int) or not isinstance(names, list) \
            or not isinstance(dictionary, list) or not isinstance(rows, list) \
            or not all(isinstance(n, str) for n in names):
        raise NetworkError("malformed compressed batch payload")
    if not all(isinstance(e, dict) for e in dictionary):
        raise NetworkError("malformed compressed batch dictionary")
    values = [decode_value(entry, registry) for entry in dictionary]
    items = []
    for row in rows:
        if not isinstance(row, list) or len(row) < 2 or not all(
                isinstance(i, int) and not isinstance(i, bool) and i >= 0
                for i in row):
            raise NetworkError("malformed compressed batch row")
        try:
            to = names[row[0]]
            pred = names[row[1]]
            fact = tuple(values[i] for i in row[2:])
        except IndexError as exc:
            raise NetworkError(
                "compressed batch row index out of range") from exc
        items.append((to, pred, fact))
    return round_stamp, items


def decode_batch_message(blob: bytes, registry) -> tuple[int, list]:
    """Decode a batch message: ``(round_stamp, [(to, pred, fact), ...])``.

    Accepts both wire formats — the dictionary-compressed envelope
    (``rows`` key) and the legacy per-item form (``batch`` key) — so a
    node upgraded to the compressed encoder still reads batches from
    mixed-version peers, and vice versa via the batcher's
    ``wire_format="legacy"`` fallback.  Single-fact messages (neither
    key) decode as a one-item batch with round stamp 0, so mixed traffic
    stays readable.  Serve-plane frames (the request/reply kind below)
    are rejected loudly: a request arriving on a delta-exchange path is
    a routing bug, and decoding it as a corrupt fact would silently
    swallow the client's call.
    """
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable message: {exc}") from exc
    if not isinstance(payload, dict):
        raise NetworkError("malformed message payload")
    if payload.get("kind") in (REQUEST_KIND, REPLY_KIND):
        raise NetworkError(
            f"serve-plane {payload['kind']} frame in batch traffic")
    if "rows" in payload:
        return _decode_compressed(payload, registry)
    batch = payload.get("batch")
    if batch is None:
        return 0, [_decode_item(payload, registry)]
    round_stamp = payload.get("round", 0)
    if not isinstance(batch, list) or not isinstance(round_stamp, int):
        raise NetworkError("malformed batch payload")
    return round_stamp, [_decode_item(item, registry) for item in batch]


# ---------------------------------------------------------------------------
# Request/reply frames (the serve plane, next to the batch frames above)
# ---------------------------------------------------------------------------
#
# The online authorization service (repro.serve) exchanges point requests
# and their replies over the same transports the delta exchange uses —
# length-prefixed TCP frames on SocketNetwork, virtual-clock envelopes on
# SimulatedNetwork — so per-link FIFO ordering covers serve traffic for
# free.  A frame is a JSON object tagged with ``kind`` ("request" or
# "reply"); batch envelopes have no ``kind`` key, so the two families can
# never be confused (frame_kind classifies, decode_batch_message rejects).

REQUEST_KIND = "request"
REPLY_KIND = "reply"


def frame_kind(blob: bytes) -> str:
    """Classify a wire frame: ``request`` / ``reply`` / ``batch`` / ``fact``.

    Raises :class:`NetworkError` for frames that are not JSON objects or
    that carry an unknown ``kind`` tag.
    """
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise NetworkError("malformed frame payload")
    kind = payload.get("kind")
    if kind is None:
        if "batch" in payload or "rows" in payload:
            return "batch"
        return "fact"
    if kind in (REQUEST_KIND, REPLY_KIND):
        return kind
    raise NetworkError(f"unknown frame kind {kind!r}")


def encode_request_frame(request_id: int, op: str,
                         body: Optional[dict] = None) -> bytes:
    """Serialize one serve-plane request: an operation plus its body.

    ``body`` must already be JSON-safe — fact values travel through
    :func:`encode_value` at the serve layer, which owns the registry.
    """
    payload = {"kind": REQUEST_KIND, "id": int(request_id), "op": op,
               "body": body if body is not None else {}}
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_request_frame(blob: bytes) -> tuple[int, str, dict]:
    """Decode a request frame: ``(request_id, op, body)``."""
    payload = _decode_serve_frame(blob, REQUEST_KIND)
    op = payload.get("op")
    body = payload.get("body")
    if not isinstance(op, str) or not isinstance(body, dict):
        raise NetworkError("malformed request frame")
    return payload["id"], op, body


def encode_reply_frame(request_id: int, ok: bool = True,
                       body: Optional[dict] = None, error: str = "") -> bytes:
    """Serialize one serve-plane reply, echoing the request's id."""
    payload = {"kind": REPLY_KIND, "id": int(request_id), "ok": bool(ok),
               "body": body if body is not None else {}, "error": error}
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_reply_frame(blob: bytes) -> tuple[int, bool, dict, str]:
    """Decode a reply frame: ``(request_id, ok, body, error)``."""
    payload = _decode_serve_frame(blob, REPLY_KIND)
    ok = payload.get("ok")
    body = payload.get("body")
    error = payload.get("error", "")
    if not isinstance(ok, bool) or not isinstance(body, dict) \
            or not isinstance(error, str):
        raise NetworkError("malformed reply frame")
    return payload["id"], ok, body, error


def _decode_serve_frame(blob: bytes, expected_kind: str) -> dict:
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("kind") != expected_kind:
        raise NetworkError(f"expected a {expected_kind} frame")
    request_id = payload.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise NetworkError(f"malformed {expected_kind} frame id")
    return payload
