"""Online authorization serving (ROADMAP item 1).

A long-lived :class:`~repro.core.system.LBTrustSystem` behind a
request/reply protocol: credential updates apply through DRed incremental
maintenance, point queries answer from the cached magic-sets rewrite.
See :mod:`repro.serve.server` for the protocol and
:mod:`repro.serve.cli` for the ``repro serve`` command.
"""

from .client import ServeClient, ServeRouter
from .server import SERVE_OPS, TrustServer

__all__ = ["ServeClient", "ServeRouter", "TrustServer", "SERVE_OPS"]
