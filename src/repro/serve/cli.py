"""``repro serve`` — run the online authorization service end to end.

Starts a long-lived :class:`TrustServer` over the chosen transport, drives
a scripted update+query session through :class:`ServeClient` instances,
and verifies three things before reporting latency figures:

* every point query answered exactly the expected fact set (the same
  answers a batch fixpoint read would give);
* retractions went through DRed incremental maintenance — the server's
  ``dred_strata`` counter grew while ``full_recomputes`` did not;
* repeated query shapes hit the magic-program cache
  (``magic_cache_hits`` grew).

Exit status 0 means all checks passed and the server shut down cleanly;
1 means a check failed — which is what the CI ``serve-smoke`` job gates
on.  ``--procs N`` runs N client OS processes against a real socket
server (one process per client, spawn context), mirroring the cluster
launcher's deployment shape.
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import threading
import time
from typing import Optional, TextIO

from ..core.system import LBTrustSystem
from ..net.network import SimulatedNetwork
from ..net.socket_transport import SocketNetwork
from .client import ServeClient, ServeRouter
from .metrics import latency_summary
from .server import TrustServer

#: The served policy: two objects and one derived authorization rule, so
#: every query exercises a join and every retraction exercises DRed.
POLICY = """
object("f1"). object("f2").
access(P,O,"read") <- good(P), object(O).
"""

SERVE_PRINCIPAL = "srv"

#: EvalStats counters the session asserts over (delta across the run).
CHECKED_COUNTERS = ("dred_strata", "full_recomputes", "magic_cache_hits")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Online authorization service: scripted update+query "
                    "session with self-checked answers and latency summary",
    )
    parser.add_argument("--transport", choices=["simulated", "socket"],
                        default="simulated",
                        help="simulated: in-process virtual clock; socket: "
                             "real TCP frames (default simulated)")
    parser.add_argument("--procs", type=int, default=0,
                        help="with --transport socket: run N client OS "
                             "processes, one per client (0 = in-process)")
    parser.add_argument("--clients", type=int, default=2,
                        help="number of scripted clients (default 2; "
                             "--procs overrides)")
    parser.add_argument("--steps", type=int, default=6,
                        help="scripted steps per client; each step is an "
                             "assert + query, every 4th (and the last) "
                             "also retract + re-query (default 6)")
    parser.add_argument("--auth", default="plaintext",
                        choices=["plaintext", "hmac", "rsa", "mixed"],
                        help="authentication scheme for the served system")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-call client timeout in seconds")
    return parser


def run_session(client: ServeClient, index: int, steps: int) -> dict:
    """One client's scripted session: assert, query, periodically retract.

    Subjects are namespaced by client index, so concurrent sessions never
    touch each other's facts and every expectation is exact.
    """
    latencies: list = []
    failures: list = []
    updates = queries = 0

    def timed(call):
        start = time.monotonic()
        result = call()
        latencies.append(time.monotonic() - start)
        return result

    for k in range(steps):
        subject = f"u{index}_{k}"
        timed(lambda: client.assert_fact("good", (subject,)))
        updates += 1
        want = {(subject, "f1", "read"), (subject, "f2", "read")}
        got = set(timed(lambda: client.query(f'access("{subject}",O,"read")')))
        queries += 1
        if got != want:
            failures.append(f"client {index} step {k}: got {sorted(got)!r}")
        if k % 4 == 3 or k == steps - 1:  # always exercise DRed at least once
            timed(lambda: client.retract_fact("good", (subject,)))
            updates += 1
            got = set(timed(
                lambda: client.query(f'access("{subject}",O,"read")')))
            queries += 1
            if got:
                failures.append(f"client {index} step {k}: "
                                f"{sorted(got)!r} after retract")
    return {"index": index, "ok": not failures, "failures": failures,
            "latencies": latencies, "updates": updates, "queries": queries}


def _client_worker(index: int, host: str, port: int, steps: int,
                   timeout: float, queue) -> None:
    """One OS process = one scripted client (spawn-context entry point)."""
    network = SocketNetwork()
    try:
        client = ServeClient(network, f"client{index}", timeout=timeout)
        client.connect(server_host=host, server_port=port)
        result = run_session(client, index, steps)
    except Exception as exc:  # surface, don't hang the coordinator
        result = {"index": index, "ok": False,
                  "failures": [f"{type(exc).__name__}: {exc}"],
                  "latencies": [], "updates": 0, "queries": 0}
    finally:
        network.close()
    queue.put(result)


def _build_system(auth: str) -> LBTrustSystem:
    system = LBTrustSystem(auth=auth, seed=7)
    system.create_principal(SERVE_PRINCIPAL).load(POLICY)
    return system


def _stats_delta(before: dict, after: dict) -> dict:
    return {key: after.get(key, 0) - before.get(key, 0)
            for key in CHECKED_COUNTERS}


def main(argv: Optional[list] = None, out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    def emit(line: str = "") -> None:
        print(line, file=out)

    if args.procs and args.transport != "socket":
        emit("error: --procs requires --transport socket")
        return 2
    if args.clients < 1 or args.steps < 1 or args.procs < 0:
        emit("error: --clients and --steps must be positive")
        return 2
    clients = args.procs if args.procs else args.clients

    system = _build_system(args.auth)
    results: list = []
    started = time.monotonic()

    if args.transport == "simulated":
        network = SimulatedNetwork()
        server = TrustServer(system, network)
        router = ServeRouter(network, server)
        control = ServeClient(network, "control", router=router,
                              timeout=args.timeout)
        control.connect()
        before = control.stats()
        for index in range(clients):
            client = ServeClient(network, f"client{index}", router=router,
                                 timeout=args.timeout)
            client.connect()
            results.append(run_session(client, index, args.steps))
        elapsed = time.monotonic() - started
        after = control.stats()
        control.shutdown()
    else:
        server_net = SocketNetwork()
        server = TrustServer(system, server_net, poll_interval=0.01)
        port = server_net.port_of(server.node)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        control_net = SocketNetwork()
        control = ServeClient(control_net, "control", timeout=args.timeout)
        control.connect(server_host="127.0.0.1", server_port=port)
        before = control.stats()
        started = time.monotonic()
        if args.procs:
            context = multiprocessing.get_context("spawn")
            queue = context.Queue()
            workers = [context.Process(
                target=_client_worker,
                args=(index, "127.0.0.1", port, args.steps,
                      args.timeout, queue))
                for index in range(clients)]
            for worker in workers:
                worker.start()
            for _ in workers:
                results.append(queue.get(timeout=args.timeout * clients))
            for worker in workers:
                worker.join(timeout=args.timeout)
        else:
            for index in range(clients):
                client_net = SocketNetwork()
                client = ServeClient(client_net, f"client{index}",
                                     timeout=args.timeout)
                client.connect(server_host="127.0.0.1", server_port=port)
                results.append(run_session(client, index, args.steps))
                client_net.close()
        elapsed = time.monotonic() - started
        after = control.stats()
        control.shutdown()
        thread.join(timeout=args.timeout)
        control_net.close()
        server_net.close()
        if thread.is_alive():
            emit("error: server did not shut down cleanly")
            return 1

    delta = _stats_delta(before, after)
    latencies = [value for result in results
                 for value in result["latencies"]]
    summary = latency_summary(latencies, elapsed)
    updates = sum(result["updates"] for result in results)
    queries = sum(result["queries"] for result in results)

    emit(f"serve session: transport={args.transport} clients={clients} "
         f"steps={args.steps} procs={args.procs or 'in-process'}")
    emit(f"requests={summary['requests']} updates={updates} "
         f"queries={queries} elapsed={elapsed:.3f}s qps={summary['qps']:.1f}")
    emit(f"latency p50={summary['p50_ms']:.3f}ms "
         f"p99={summary['p99_ms']:.3f}ms max={summary['max_ms']:.3f}ms")
    emit(f"maintenance: dred_strata=+{delta['dred_strata']} "
         f"full_recomputes=+{delta['full_recomputes']} "
         f"magic_cache_hits=+{delta['magic_cache_hits']}")

    ok = all(result["ok"] for result in results)
    for result in results:
        for failure in result["failures"]:
            emit(f"FAIL: {failure}")
    if delta["full_recomputes"] != 0:
        emit("FAIL: updates triggered a full recompute")
        ok = False
    if delta["dred_strata"] <= 0:
        emit("FAIL: retractions bypassed DRed maintenance")
        ok = False
    if delta["magic_cache_hits"] <= 0:
        emit("FAIL: queries never hit the magic-program cache")
        ok = False
    emit("session checks: OK" if ok else "session checks: FAILED")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
