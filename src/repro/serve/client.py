"""Client side of the serve plane: router + synchronous RPC client.

Two wiring shapes, matching the two transports:

* **Shared in-process network** (``SimulatedNetwork``, or one
  ``SocketNetwork`` hosting both ends): a :class:`ServeRouter` owns the
  single delivery queue, feeding server-bound request frames into
  :meth:`TrustServer.handle` and parking replies in per-client inboxes.
  ``deliver_next`` interleaving means a client waiting for *its* reply
  may deliver other clients' traffic first — the router preserves that
  work instead of dropping it.

* **Own network per client** (cross-process sockets): the client listens
  on its own ``SocketNetwork``, announces ``(host, port)`` in its
  ``hello`` (the cluster rendezvous idiom), and blocks on
  ``network.receive`` for replies.

Replies are matched by request id; per-link FIFO makes an id mismatch a
protocol error rather than something to buffer around.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Optional

from ..datalog.errors import ServeError
from ..meta.registry import RuleRegistry
from ..net.transport import (
    decode_reply_frame,
    decode_value,
    encode_request_frame,
    encode_value,
    frame_kind,
)


class ServeRouter:
    """Pump a shared in-process network for one server and its clients."""

    def __init__(self, network, server) -> None:
        self.network = network
        self.server = server
        self.inboxes: dict[str, deque] = {}

    def register(self, client_name: str) -> None:
        self.inboxes[client_name] = deque()

    def pump_one(self) -> bool:
        """Deliver one pending frame; ``False`` when the queue is empty."""
        item = self.network.deliver_next()
        if item is None:
            return False
        src, dst, blob = item
        if dst == self.server.node:
            self.server.handle(src, blob)
        elif dst in self.inboxes:
            self.inboxes[dst].append(blob)
        else:
            raise ServeError(f"serve frame for unknown client {dst!r}")
        return True

    def wait_reply(self, client_name: str, timeout: float) -> bytes:
        inbox = self.inboxes[client_name]
        deadline = time.monotonic() + timeout
        while not inbox:
            if self.pump_one():
                continue
            # Nothing queued: on a simulated network that is final; a
            # socket network may still have frames in flight.
            receive = getattr(self.network, "receive", None)
            if receive is None:
                raise ServeError(
                    f"no reply for {client_name!r} and no pending frames")
            if time.monotonic() > deadline:
                raise ServeError(f"timed out waiting for {client_name!r} reply")
            receive(timeout=0.05)  # parks arrivals for deliver_next
        return inbox.popleft()


class ServeClient:
    """Synchronous RPC client for :class:`~repro.serve.server.TrustServer`.

    ``principal`` is the default workspace updates and queries address;
    every call accepts a ``principal=`` override.  Values cross the wire
    through the tagged-value codec; the client re-parses rule payloads
    into its own registry, so it works against a foreign system.
    """

    def __init__(self, network, name: str, server: str = "server",
                 principal: str = "srv", router: Optional[ServeRouter] = None,
                 timeout: float = 10.0) -> None:
        self.network = network
        self.name = name
        self.server = server
        self.principal = principal
        self.router = router
        self.timeout = timeout
        self.registry = RuleRegistry()
        self.requests_sent = 0
        self._next_id = 1
        if name not in network.nodes():
            network.add_node(name)
        if router is not None:
            router.register(name)

    # -- connection --------------------------------------------------------

    def connect(self, server_host: Optional[str] = None,
                server_port: Optional[int] = None,
                advertise_host: str = "127.0.0.1") -> dict:
        """Say hello; over sockets, first learn the server's address and
        advertise our own listener so replies can come back."""
        hello: dict = {"client": self.name}
        if server_host is not None and server_port is not None:
            self.network.add_remote(self.server, server_host, server_port)
            hello["host"] = advertise_host
            hello["port"] = self.network.port_of(self.name)
        return self.call("hello", hello)

    # -- operations --------------------------------------------------------

    def assert_fact(self, pred: str, fact: tuple,
                    principal: Optional[str] = None) -> None:
        self.call("assert", self._update_body(pred, fact, principal))

    def retract_fact(self, pred: str, fact: tuple,
                     principal: Optional[str] = None) -> None:
        self.call("retract", self._update_body(pred, fact, principal))

    def load(self, source: str, principal: Optional[str] = None) -> None:
        self.call("load", {"principal": principal or self.principal,
                           "source": source})

    def query(self, source: str,
              principal: Optional[str] = None) -> list[tuple]:
        body = self.call("query", {"principal": principal or self.principal,
                                   "query": source})
        return [tuple(decode_value(v, self.registry) for v in fact)
                for fact in body["answers"]]

    def stats(self, principal: Optional[str] = None) -> dict:
        return self.call("stats",
                         {"principal": principal or self.principal})["stats"]

    def sync(self, max_rounds: int = 100) -> dict:
        return self.call("sync", {"max_rounds": max_rounds})

    def ping(self) -> float:
        return self.call("ping")["clock"]

    def shutdown(self) -> None:
        self.call("shutdown")

    def close(self) -> None:
        close = getattr(self.network, "close", None)
        if close is not None and self.router is None:
            close()

    # -- plumbing ----------------------------------------------------------

    def call(self, op: str, body: Optional[dict] = None) -> dict:
        """One request/reply round trip; raises :class:`ServeError` on a
        server-side failure or a protocol violation."""
        request_id = self._next_id
        self._next_id += 1
        frame = encode_request_frame(request_id, op, body)
        self.network.send(self.name, self.server, frame)
        self.requests_sent += 1
        blob = self._await_reply()
        reply_id, ok, reply_body, error = decode_reply_frame(blob)
        if reply_id != request_id:
            raise ServeError(
                f"reply id {reply_id} for request {request_id} (FIFO broken?)")
        if not ok:
            raise ServeError(error or "server rejected the request")
        return reply_body

    def _update_body(self, pred: str, fact: tuple,
                     principal: Optional[str]) -> dict:
        return {"principal": principal or self.principal, "pred": pred,
                "fact": [encode_value(v, self.registry) for v in fact]}

    def _await_reply(self) -> bytes:
        if self.router is not None:
            return self.router.wait_reply(self.name, self.timeout)
        deadline = time.monotonic() + self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(f"timed out waiting for {self.server} reply")
            item = self.network.receive(timeout=min(remaining, 0.25))
            if item is None:
                continue
            src, dst, blob = item
            if dst != self.name or frame_kind(blob) != "reply":
                raise ServeError(f"unexpected frame for {dst!r} from {src!r}")
            return blob

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServeClient(name={self.name!r}, server={self.server!r})"
