"""Latency accounting shared by ``repro serve`` and the benchmark driver.

Percentiles use linear interpolation between closest ranks (the numpy
default), so p50 of an even-length sample is the midpoint average — small
smoke runs get stable numbers instead of rank-truncation jitter.
"""

from __future__ import annotations


def percentile(values, fraction: float) -> float:
    """The ``fraction``-quantile (0..1) of ``values``, interpolated."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


def latency_summary(latencies: list, elapsed: float = 0.0) -> dict:
    """Summarize per-request wall latencies (seconds) into the metric
    shape the artifact schema carries: milliseconds + achieved QPS."""
    count = len(latencies)
    return {
        "requests": count,
        "p50_ms": percentile(latencies, 0.50) * 1000.0,
        "p99_ms": percentile(latencies, 0.99) * 1000.0,
        "max_ms": (max(latencies) * 1000.0) if latencies else 0.0,
        "mean_ms": (sum(latencies) / count * 1000.0) if count else 0.0,
        "qps": (count / elapsed) if elapsed > 0 else 0.0,
    }
