"""The online authorization server.

:class:`TrustServer` wraps a long-lived :class:`~repro.core.system.LBTrustSystem`
and answers serve-plane frames (:mod:`repro.net.transport` request/reply
kind) over any transport with the standard duck type:

* **updates** (``assert`` / ``retract`` / ``load``) run through the
  workspace transaction machinery — semi-naive insertion deltas and DRed
  deletions — so each update is incremental maintenance, never a
  from-scratch fixpoint;
* **queries** (``query``) go through :meth:`Workspace.point_query`, which
  serves bound queries from the cached magic-sets program on a COW
  overlay — repeated query shapes reuse the rewrite
  (``EvalStats.magic_cache_hits``) instead of replanning.

The server is deliberately transport-agnostic: :meth:`handle` consumes one
frame and sends one reply.  For real sockets, :meth:`serve_forever` polls
``network.receive``; for a shared in-process network (simulated or
loopback sockets), a :class:`~repro.serve.client.ServeRouter` pumps
``deliver_next`` and calls :meth:`handle` directly.  The serve plane uses
its own network instance, separate from the system's delta-exchange
network, so request frames can never be misread as batch traffic.
"""

from __future__ import annotations

from typing import Optional

from ..datalog.errors import NetworkError, ReproError, ServeError
from ..net.transport import (
    decode_request_frame,
    decode_value,
    encode_reply_frame,
    encode_value,
    frame_kind,
)

#: Operations the server understands, for help texts and tests.
SERVE_OPS = ("hello", "ping", "assert", "retract", "load", "query",
             "sync", "stats", "shutdown")


class TrustServer:
    """Serve point updates and authorization queries for one system.

    ``network`` is the serve-plane transport (NOT ``system.network``, which
    carries the delta exchange).  ``node`` is the server's address on it.
    """

    def __init__(self, system, network, node: str = "server",
                 poll_interval: float = 0.05) -> None:
        self.system = system
        self.network = network
        self.node = node
        self.poll_interval = poll_interval
        self.requests_served = 0
        self._stopping = False
        if node not in network.nodes():
            network.add_node(node)

    # -- frame entry point -------------------------------------------------

    def handle(self, src: str, blob: bytes) -> str:
        """Process one request frame from ``src`` and send the reply.

        Returns the operation name (used by drivers for accounting).
        Application failures travel back as ``ok=False`` replies; only a
        frame that is not a request at all raises here.
        """
        if frame_kind(blob) != "request":
            raise NetworkError("serve plane received a non-request frame")
        request_id, op, body = decode_request_frame(blob)
        try:
            reply_body = self._dispatch(src, op, body)
            frame = encode_reply_frame(request_id, True, reply_body)
        except ReproError as exc:
            frame = encode_reply_frame(request_id, False, {}, str(exc))
        self.network.send(self.node, src, frame)
        self.requests_served += 1
        return op

    def serve_forever(self, max_requests: Optional[int] = None) -> int:
        """Blocking receive loop for socket transports.

        Runs until a ``shutdown`` request arrives (or ``max_requests``
        frames were served); returns the number of requests handled.
        """
        served = 0
        while not self._stopping:
            item = self.network.receive(timeout=self.poll_interval)
            if item is None:
                continue
            src, dst, blob = item
            if dst != self.node:  # pragma: no cover - misrouted frame
                continue
            self.handle(src, blob)
            served += 1
            if max_requests is not None and served >= max_requests:
                break
        return served

    def stop(self) -> None:
        self._stopping = True

    @property
    def stopping(self) -> bool:
        return self._stopping

    # -- operations --------------------------------------------------------

    def _dispatch(self, src: str, op: str, body: dict) -> dict:
        if op == "hello":
            return self._op_hello(src, body)
        if op == "ping":
            clock = self.network.clock  # method on sockets, float simulated
            return {"clock": clock() if callable(clock) else clock}
        if op == "assert":
            principal, pred, fact = self._update_args(body)
            principal.assert_fact(pred, fact)
            return {}
        if op == "retract":
            principal, pred, fact = self._update_args(body)
            principal.retract_fact(pred, fact)
            return {}
        if op == "load":
            principal = self._principal(body)
            source = body.get("source")
            if not isinstance(source, str):
                raise ServeError("load needs a source string")
            principal.load(source)
            warnings = [
                d.to_json() for d in principal.workspace.last_check
                if d.severity == "warning"
            ]
            suppressed = [
                d.to_json()
                for d in principal.workspace.last_check_suppressed
            ]
            return {"warnings": warnings, "suppressed": suppressed}
        if op == "query":
            return self._op_query(body)
        if op == "sync":
            report = self.system.run(max_rounds=int(body.get("max_rounds", 100)))
            return {"rounds": report.rounds, "delivered": report.delivered,
                    "rejected": report.rejected}
        if op == "stats":
            stats = self._principal(body).workspace.stats
            return {"stats": stats.as_dict()}
        if op == "shutdown":
            self._stopping = True
            return {}
        raise ServeError(f"unknown serve operation {op!r}")

    def _op_hello(self, src: str, body: dict) -> dict:
        """Register the caller; a socket client advertises its listener so
        replies can be routed back (the cluster rendezvous idiom)."""
        host = body.get("host")
        port = body.get("port")
        if isinstance(host, str) and isinstance(port, int) \
                and hasattr(self.network, "add_remote") \
                and src not in self.network.nodes():
            self.network.add_remote(src, host, port)
        return {"node": self.node,
                "principals": sorted(self.system.principals)}

    def _op_query(self, body: dict) -> dict:
        workspace = self._principal(body).workspace
        source = body.get("query")
        if not isinstance(source, str):
            raise ServeError("query needs an atom string")
        answers = workspace.point_query(source)
        registry = self.system.registry
        encoded = [[encode_value(value, registry) for value in fact]
                   for fact in sorted(answers, key=repr)]
        return {"answers": encoded}

    def _principal(self, body: dict):
        name = body.get("principal")
        if not isinstance(name, str) or not name:
            raise ServeError("request body names no principal")
        return self.system.principal(name)

    def _update_args(self, body: dict) -> tuple:
        principal = self._principal(body)
        pred = body.get("pred")
        fact = body.get("fact")
        if not isinstance(pred, str) or not isinstance(fact, list):
            raise ServeError("update needs a pred and a fact list")
        registry = self.system.registry
        return principal, pred, tuple(decode_value(v, registry) for v in fact)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TrustServer(node={self.node!r}, "
                f"served={self.requests_served})")
