"""The workspace: a LogicBlox-style database instance with active rules."""

from .catalog import Catalog, PredInfo
from .workspace import AuditEvent, Workspace

__all__ = ["AuditEvent", "Catalog", "PredInfo", "Workspace"]
