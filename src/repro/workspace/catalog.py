"""Predicate catalog: declarations, arities, partition keys, types.

A LogicBlox predicate definition (paper footnote 1) carries logical
attributes — name, arity — plus physical ones.  Our catalog records:

* arity (checked on every assertion and rule head),
* partition-key arity for curried predicates ``p[K](X,...)``,
* declared argument types (unary predicates, from declaration constraints
  like ``access(P,O,M) -> principal(P), object(O), mode(M).``), feeding
  the static type checker.

Predicates auto-declare on first use; an explicit declaration constraint
refines them.  Arity clashes are errors — they are almost always typos in
policies, and LogicBlox's static checking would reject them too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..datalog.errors import WorkspaceError
from ..datalog.terms import Atom, Constraint, Literal, Rule, Variable

#: Builtin unary "type" predicates that are always satisfied dynamically.
PRIMITIVE_TYPES = frozenset({"int", "string", "float", "bool", "any"})


@dataclass
class PredInfo:
    """Catalog entry for one predicate."""

    name: str
    arity: int
    key_arity: int = 0
    declared: bool = False
    arg_types: list = field(default_factory=list)  # Optional[str] per position

    @property
    def value_arity(self) -> int:
        return self.arity - self.key_arity


class Catalog:
    """Name → :class:`PredInfo`, with consistency checking."""

    def __init__(self) -> None:
        self._preds: dict[str, PredInfo] = {}

    def get(self, name: str) -> Optional[PredInfo]:
        return self._preds.get(name)

    def info(self, name: str) -> PredInfo:
        info = self._preds.get(name)
        if info is None:
            raise WorkspaceError(f"unknown predicate {name!r}")
        return info

    def __contains__(self, name: str) -> bool:
        return name in self._preds

    def names(self) -> list[str]:
        return sorted(self._preds)

    def observe_atom(self, atom: Atom, declared: bool = False) -> PredInfo:
        """Record (or check) a predicate's shape from one atom occurrence."""
        info = self._preds.get(atom.pred)
        if info is None:
            info = PredInfo(
                name=atom.pred,
                arity=atom.arity,
                key_arity=len(atom.keys),
                declared=declared,
                arg_types=[None] * atom.arity,
            )
            self._preds[atom.pred] = info
            return info
        if info.arity != atom.arity:
            raise WorkspaceError(
                f"arity clash for {atom.pred!r}: declared {info.arity}, "
                f"used with {atom.arity}"
            )
        if atom.keys and info.key_arity != len(atom.keys):
            raise WorkspaceError(
                f"partition-key clash for {atom.pred!r}: declared "
                f"{info.key_arity} keys, used with {len(atom.keys)}"
            )
        if declared:
            info.declared = True
        return info

    def declare_tuple_pred(self, name: str, arity: int, key_arity: int = 0) -> PredInfo:
        """Programmatic declaration (used by machinery installers)."""
        info = self._preds.get(name)
        if info is None:
            info = PredInfo(name, arity, key_arity, declared=True,
                            arg_types=[None] * arity)
            self._preds[name] = info
            return info
        if info.arity != arity or info.key_arity != key_arity:
            raise WorkspaceError(
                f"conflicting declaration for {name!r}: have "
                f"({info.arity},{info.key_arity}), asked ({arity},{key_arity})"
            )
        info.declared = True
        return info

    # -- harvesting from statements -------------------------------------------

    def observe_rule(self, rule: Rule) -> None:
        for head in rule.heads:
            self.observe_atom(head)
        for item in rule.body:
            if isinstance(item, Literal):
                self.observe_atom(item.atom)

    def observe_constraint(self, constraint: Constraint) -> None:
        """Harvest declarations; type-declaration shapes record arg types.

        A *type declaration* is a constraint whose LHS is a single atom
        with all-distinct variable arguments and whose RHS alternatives are
        conjunctions of unary atoms over those variables::

            access(P,O,M) -> principal(P), object(O), mode(M).
        """
        for alternative in constraint.lhs:
            for item in alternative:
                if isinstance(item, Literal) and not item.negated:
                    self.observe_atom(item.atom, declared=True)
        for alternative in constraint.rhs:
            for item in alternative:
                if isinstance(item, Literal) and not item.negated:
                    self.observe_atom(item.atom)
        self._harvest_types(constraint)

    def _harvest_types(self, constraint: Constraint) -> None:
        if len(constraint.lhs) != 1 or len(constraint.lhs[0]) != 1:
            return
        item = constraint.lhs[0][0]
        if not isinstance(item, Literal) or item.negated:
            return
        atom = item.atom
        var_positions: dict[str, int] = {}
        for index, term in enumerate(atom.all_args):
            if not isinstance(term, Variable):
                return
            if term.name in var_positions:
                return
            var_positions[term.name] = index
        if len(constraint.rhs) != 1:
            return
        info = self.observe_atom(atom, declared=True)
        for rhs_item in constraint.rhs[0]:
            if not isinstance(rhs_item, Literal) or rhs_item.negated:
                continue
            rhs_atom = rhs_item.atom
            if rhs_atom.arity != 1:
                continue
            term = rhs_atom.all_args[0]
            if isinstance(term, Variable) and term.name in var_positions:
                info.arg_types[var_positions[term.name]] = rhs_atom.pred

    def check_fact_arity(self, pred: str, fact: tuple) -> None:
        info = self._preds.get(pred)
        if info is not None and info.arity != len(fact):
            raise WorkspaceError(
                f"fact {fact!r} has {len(fact)} columns but {pred!r} has "
                f"arity {info.arity}"
            )


def harvest_catalog(statements: Iterable, catalog: Optional[Catalog] = None) -> Catalog:
    """Build (or extend) a catalog from parsed statements."""
    catalog = catalog or Catalog()
    for statement in statements:
        if isinstance(statement, Rule):
            catalog.observe_rule(statement)
        elif isinstance(statement, Constraint):
            catalog.observe_constraint(statement)
    return catalog
