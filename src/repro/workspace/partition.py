"""Partitioning by currying (paper section 3.4).

``p(X1,…,Xn)`` partitioned on its first attribute becomes the
higher-order ``p'[X1](X2,…,Xn)``: same data, grouped into per-key subsets
that the ``predNode`` placement relation can then distribute (section
3.5).  The paper initializes partitions with the regular rule
``p'[X1](X2,…,Xn) <- p(X1,…,Xn)`` — this module generates exactly that
rule (and its declaration) for any predicate and key width, plus small
query helpers for inspecting one partition.
"""

from __future__ import annotations

from ..datalog.errors import WorkspaceError
from .workspace import Workspace


def curried_name(pred: str) -> str:
    """The conventional name for the curried version of ``pred``."""
    return pred + "'"


def currying_rule(pred: str, arity: int, key_arity: int = 1,
                  curried: str | None = None) -> str:
    """Source text of the partition-initialization rule.

    >>> currying_rule("p", 3)
    "p'[X1](X2,X3) <- p(X1,X2,X3)."
    """
    if not 0 < key_arity < arity:
        raise WorkspaceError(
            f"key arity must be between 1 and {arity - 1}, got {key_arity}"
        )
    curried = curried or curried_name(pred)
    variables = [f"X{i + 1}" for i in range(arity)]
    keys = ",".join(variables[:key_arity])
    values = ",".join(variables[key_arity:])
    all_vars = ",".join(variables)
    return f"{curried}[{keys}]({values}) <- {pred}({all_vars})."


def install_partition(workspace: Workspace, pred: str, arity: int,
                      key_arity: int = 1, curried: str | None = None) -> str:
    """Declare and populate a curried partition of ``pred``.

    Returns the curried predicate name.  Incremental maintenance comes for
    free: the currying rule is an active rule like any other.
    """
    curried = curried or curried_name(pred)
    workspace.catalog.declare_tuple_pred(curried, arity, key_arity)
    workspace.add_rule(currying_rule(pred, arity, key_arity, curried))
    return curried


def partition_contents(workspace: Workspace, curried: str, key: tuple) -> set:
    """The value tuples stored under one partition key."""
    info = workspace.catalog.get(curried)
    if info is None:
        raise WorkspaceError(f"unknown partitioned predicate {curried!r}")
    width = info.key_arity
    if width != len(key):
        raise WorkspaceError(
            f"{curried!r} has {width} key columns, got key {key!r}"
        )
    return {
        fact[width:] for fact in workspace.tuples(curried)
        if fact[:width] == tuple(key)
    }


def partition_keys(workspace: Workspace, curried: str) -> set:
    """All partition keys currently populated."""
    info = workspace.catalog.get(curried)
    if info is None:
        raise WorkspaceError(f"unknown partitioned predicate {curried!r}")
    width = info.key_arity
    return {fact[:width] for fact in workspace.tuples(curried)}
