"""Static type checking from type-declaration constraints.

Paper section 3.2: *"The use of types and type-checking (statically, and
dynamically when rules are added to workspaces) ensures that only
type-safe LogicBlox programs are executed."*  The *dynamic* half is the
constraint checker.  This module is the *static* half: it infers, for
every variable of a rule, the set of declared types implied by the
positions the variable occupies, and reports variables pinned to two
different concrete types.

Primitive types (``int``, ``string``, …) are compatible with themselves
only; user types (unary predicates like ``principal``) are nominal — two
different user types on one variable are reported, since nothing declares
a subtyping relation.  Findings are warnings by design: the dynamic
constraints remain authoritative, matching LogicBlox's layering.

The inference itself lives in :mod:`repro.analysis.passes`
(:func:`~repro.analysis.passes.infer_type_clashes`), where the unified
static analyzer reports it as code ``R202``; this module keeps the
original :class:`TypeIssue` API as a thin wrapper so workspace callers
and existing tests are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..datalog.terms import Rule
from .catalog import Catalog


@dataclass(frozen=True)
class TypeIssue:
    """One static finding: a variable used at incompatibly-typed positions."""

    rule_label: str
    variable: str
    types: tuple

    def __str__(self) -> str:
        return (f"rule {self.rule_label}: variable {self.variable} is used "
                f"at positions typed {', '.join(self.types)}")


def _compatible(a: str, b: str) -> bool:
    from ..analysis.passes import compatible_types
    return compatible_types(a, b)


def typecheck_rule(rule: Rule, catalog: Catalog) -> list[TypeIssue]:
    """Static issues for one rule against the catalog's declarations."""
    from ..analysis.passes import infer_type_clashes
    label = rule.label or "<unlabeled>"
    return [TypeIssue(label, name, types)
            for name, types in infer_type_clashes(rule, catalog)]


def typecheck_program(rules: Iterable[Rule], catalog: Catalog) -> list[TypeIssue]:
    issues = []
    for rule in rules:
        if isinstance(rule, Rule):
            issues.extend(typecheck_rule(rule, catalog))
    return issues
