"""Static type checking from type-declaration constraints.

Paper section 3.2: *"The use of types and type-checking (statically, and
dynamically when rules are added to workspaces) ensures that only
type-safe LogicBlox programs are executed."*  The *dynamic* half is the
constraint checker.  This module is the *static* half: it infers, for
every variable of a rule, the set of declared types implied by the
positions the variable occupies, and reports variables pinned to two
different concrete types.

Primitive types (``int``, ``string``, …) are compatible with themselves
only; user types (unary predicates like ``principal``) are nominal — two
different user types on one variable are reported, since nothing declares
a subtyping relation.  Findings are warnings by design: the dynamic
constraints remain authoritative, matching LogicBlox's layering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..datalog.terms import Literal, Rule, Variable
from .catalog import PRIMITIVE_TYPES, Catalog


@dataclass(frozen=True)
class TypeIssue:
    """One static finding: a variable used at incompatibly-typed positions."""

    rule_label: str
    variable: str
    types: tuple

    def __str__(self) -> str:
        return (f"rule {self.rule_label}: variable {self.variable} is used "
                f"at positions typed {', '.join(self.types)}")


_COMPATIBLE = {
    frozenset({"int", "number"}),
    frozenset({"float", "number"}),
}


def _compatible(a: str, b: str) -> bool:
    if a == b or "any" in (a, b):
        return True
    return frozenset({a, b}) in _COMPATIBLE


def typecheck_rule(rule: Rule, catalog: Catalog) -> list[TypeIssue]:
    """Static issues for one rule against the catalog's declarations."""
    var_types: dict[str, set] = {}

    def observe(atom) -> None:
        info = catalog.get(atom.pred)
        if info is None or not info.declared:
            return
        for position, term in enumerate(atom.all_args):
            if not isinstance(term, Variable):
                continue
            declared = info.arg_types[position] if position < len(info.arg_types) else None
            if declared is None:
                continue
            var_types.setdefault(term.name, set()).add(declared)

    for head in rule.heads:
        observe(head)
    for item in rule.body:
        if isinstance(item, Literal):
            observe(item.atom)

    issues = []
    label = rule.label or "<unlabeled>"
    for name, types in sorted(var_types.items()):
        concrete = sorted(types)
        clash = any(
            not _compatible(a, b)
            for i, a in enumerate(concrete)
            for b in concrete[i + 1:]
        )
        if clash:
            issues.append(TypeIssue(label, name, tuple(concrete)))
    return issues


def typecheck_program(rules: Iterable[Rule], catalog: Catalog) -> list[TypeIssue]:
    issues = []
    for rule in rules:
        if isinstance(rule, Rule):
            issues.extend(typecheck_rule(rule, catalog))
    return issues
