"""The workspace: a LogicBlox-style database instance with active rules.

Paper section 3.1: *"A workspace in LogicBlox is essentially a database
instance which contains a set of predicate definitions and a set of active
rules (similar to continuous queries). … When predicate data is modified,
the active rules are incrementally recomputed."*

This class provides exactly that, plus the meta-programming loop of
section 3.3:

* facts are asserted/retracted transactionally; active rules are
  maintained incrementally (semi-naive insertion deltas, DRed deletions,
  selective stratum recompute for non-monotone strata);
* every rule is interned in the shared :class:`RuleRegistry` and reflected
  into the local meta-model relations (Figure 1);
* after every fixpoint the ``active`` relation is scanned: newly derived
  ``active(R)`` facts activate rule R — code generation — and the loop
  continues until quiescence (bounded by ``max_activation_rounds``);
* schema constraints and meta-constraints are checked at commit; a
  violation rolls the whole transaction back and raises
  :class:`ConstraintViolation`, leaving an audit record.

``me`` appearing in loaded source resolves to the owning principal before
interning, so rules-as-data are always context-independent.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from ..datalog.builtins import BuiltinRegistry, standard_registry
from ..datalog.constraints import Violation, check_constraints
from ..datalog.database import Database
from ..datalog.engine import (
    EngineRule,
    EvalStats,
    FactSet,
    ProvenanceStore,
    apply_rule,
    normalize_rules,
    propagate_insertions,
)
from ..datalog.errors import (
    ActivationLimitError,
    ConstraintViolation,
    WorkspaceError,
)
from ..datalog.incremental import propagate_deletions
from ..datalog.parser import parse_statements
from ..datalog.runtime import EvalContext, eval_term, solve
from ..datalog.stratify import stratify
from ..datalog.terms import (
    Atom,
    Constant,
    Constraint,
    Literal,
    Quote,
    Rule,
    RuleRef,
    Statement,
    Variable,
)
from ..meta.model import ACTIVE_PRED
from ..meta.quote import compile_constraint, compile_rule
from ..meta.registry import RuleRegistry
from .catalog import Catalog


@dataclass
class AuditEvent:
    """One security-relevant occurrence (kept across rollbacks)."""

    kind: str
    detail: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"AuditEvent({self.kind}, {self.detail})"


@dataclass
class _Snapshot:
    db: Database
    edb: dict
    activated: dict
    constraints: list
    reified: set
    catalog: dict


class Workspace:
    """One principal's context: predicates, active rules, constraints."""

    def __init__(self, name: str, me: Optional[str] = None,
                 registry: Optional[RuleRegistry] = None,
                 builtins: Optional[BuiltinRegistry] = None,
                 enable_provenance: bool = False,
                 max_activation_rounds: int = 500) -> None:
        self.name = name
        self.me = me if me is not None else name
        self.registry = registry if registry is not None else RuleRegistry()
        self.builtins = builtins if builtins is not None else standard_registry().child()
        self.db = Database()
        self.edb: dict[str, set] = {}
        self.catalog = Catalog()
        self.constraints: list[Constraint] = []
        self.audit: list[AuditEvent] = []
        #: diagnostics from the most recent :meth:`load` static check
        #: (errors raise instead; this holds the warnings/infos).
        self.last_check: list = []
        #: findings pragma-suppressed during that check — kept so a
        #: ``%# check: ignore[...]`` never silently hides a diagnostic.
        self.last_check_suppressed: list = []
        self.stats = EvalStats()
        self.max_activation_rounds = max_activation_rounds
        self.provenance: Optional[ProvenanceStore] = (
            ProvenanceStore() if enable_provenance else None
        )
        self._activated: dict[RuleRef, list[EngineRule]] = {}
        self._strata: Optional[list] = None
        self._reified: set[RuleRef] = set()
        self._pending_template_refs: list[RuleRef] = []
        self._txn_depth = 0
        self._txn_snapshot: Optional[_Snapshot] = None
        self._txn_fresh: FactSet = {}
        self._txn_deleted: FactSet = {}
        # EDB fact sets are shared with the transaction snapshot
        # copy-on-write; preds in this set are owned by the current
        # transaction and safe to mutate in place.
        self._txn_edb_owned: set[str] = set()
        # Compiled constraint-check plans, keyed by constraint identity;
        # must be dropped whenever the constraint list changes (including
        # rollback, which can free constraints added during the txn).
        self._constraint_plans: dict = {}
        self.context = EvalContext(
            builtins=self.builtins,
            instantiate_quote=self._instantiate_quote,
            payload=self,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Public API: loading programs
    # ------------------------------------------------------------------

    def load(self, source: str) -> None:
        """Parse, statically check, and install a program.

        The static analyzer (:mod:`repro.analysis`) gates installation:
        error diagnostics reject the load by raising the exception type
        the engine itself would raise (``SafetyError``,
        ``StratificationError``, ``WorkspaceError``); warnings and infos
        land in :attr:`last_check` and, for warnings, the audit log.
        """
        statements = parse_statements(source)
        self._static_check(statements, source)
        with self.transaction():
            for statement in statements:
                self._install(statement)

    def _static_check(self, statements: list, source: str) -> None:
        from ..analysis.diagnostics import WARNING
        from ..analysis.pipeline import (
            GATE_PASSES,
            analyze_statements,
            raise_for_errors,
        )

        suppressed: list = []
        report = analyze_statements(statements, source=source,
                                    builtins=self.builtins,
                                    passes=GATE_PASSES,
                                    collect_suppressed=suppressed)
        raise_for_errors(report)
        self.last_check = report
        self.last_check_suppressed = suppressed
        warnings = [d for d in report if d.severity == WARNING]
        if warnings:
            self.audit.append(AuditEvent("static_check_warnings", {
                "workspace": self.name,
                "warnings": [f"{d.location()}: [{d.code}] {d.message}"
                             for d in warnings],
            }))

    def _install(self, statement: Statement) -> None:
        if isinstance(statement, Constraint):
            self.add_constraint(statement)
        elif isinstance(statement, Rule):
            if statement.is_fact():
                for head in statement.heads:
                    self.assert_atom(head)
            else:
                self.add_rule(statement)
        else:  # pragma: no cover - parser yields only the two kinds
            raise WorkspaceError(f"cannot install {statement!r}")

    def add_rule(self, rule: Union[str, Rule]) -> RuleRef:
        """Intern and activate a rule in this context."""
        if isinstance(rule, str):
            statements = parse_statements(rule)
            refs = []
            with self.transaction():
                for statement in statements:
                    if not isinstance(statement, Rule):
                        raise WorkspaceError("add_rule expects rules only")
                    refs.append(self.add_rule(statement))
            return refs[-1]
        from ..meta.quote import resolve_me_rule
        resolved = resolve_me_rule(rule, self.me)
        ref = self.registry.intern(resolved)
        with self.transaction():
            self._assert_edb(ACTIVE_PRED, (ref,))
        return ref

    def add_constraint(self, constraint: Union[str, Constraint]) -> None:
        """Install a (meta-)constraint, checked on every commit."""
        if isinstance(constraint, str):
            statements = parse_statements(constraint)
            with self.transaction():
                for statement in statements:
                    if not isinstance(statement, Constraint):
                        raise WorkspaceError("add_constraint expects constraints")
                    self.add_constraint(statement)
            return
        from ..datalog.pretty import canonical_constraint
        compiled = compile_constraint(constraint, self.me, self.builtins)
        with self.transaction():
            self.catalog.observe_constraint(compiled)
            key = (compiled.label, canonical_constraint(compiled))
            duplicate = any(
                (existing.label, canonical_constraint(existing)) == key
                for existing in self.constraints
            )
            if not duplicate:
                self.constraints.append(compiled)

    # ------------------------------------------------------------------
    # Public API: facts
    # ------------------------------------------------------------------

    def assert_fact(self, pred: str, fact: tuple) -> None:
        self.assert_facts(pred, [fact])

    def assert_facts(self, pred: str, facts: Iterable[tuple]) -> None:
        with self.transaction():
            for fact in facts:
                self.catalog.check_fact_arity(pred, fact)
                self._assert_edb(pred, tuple(fact))

    def assert_atom(self, atom: Atom) -> None:
        """Assert a ground fact given as an atom (quotes become rule refs)."""
        resolved = compile_rule(Rule((atom,)), self.me, builtins=None).head
        values = tuple(
            eval_term(term, {}, self.context) for term in resolved.all_args
        )
        with self.transaction():
            self.catalog.observe_atom(resolved)
            self._assert_edb(resolved.pred, values)

    def retract_fact(self, pred: str, fact: tuple) -> None:
        self.retract_facts(pred, [fact])

    def retract_facts(self, pred: str, facts: Iterable[tuple]) -> None:
        with self.transaction():
            for fact in facts:
                fact = tuple(fact)
                base = self.edb.get(pred)
                if base is None or fact not in base:
                    raise WorkspaceError(
                        f"cannot retract {pred}{fact!r}: not an asserted fact"
                    )
                self._edb_for_write(pred).discard(fact)
                self.db.discard(pred, fact)
                self._txn_deleted.setdefault(pred, set()).add(fact)

    def deactivate_rule(self, ref: RuleRef) -> None:
        """Retract an API-activated rule (derived activations re-derive)."""
        self.retract_fact(ACTIVE_PRED, (ref,))

    def remove_constraints(self, label: str) -> int:
        """Remove every installed constraint carrying ``label``."""
        with self.transaction():
            before = len(self.constraints)
            self.constraints = [
                c for c in self.constraints if c.label != label
            ]
            self._constraint_plans = {}
            return before - len(self.constraints)

    # ------------------------------------------------------------------
    # Public API: queries
    # ------------------------------------------------------------------

    def tuples(self, pred: str) -> set:
        return set(self.db.tuples(pred))

    def query(self, source: str) -> list[dict]:
        """Solve a body formula, e.g. ``"access(P,O,M), !revoked(P)"``.

        Accepts anything a rule body accepts (negation, comparisons,
        quotes, disjunction).  Returns a list of variable bindings,
        anonymous variables omitted; duplicates are collapsed.
        """
        text = source.rstrip().rstrip(".")
        statements = parse_statements(f"queryresult() <- {text}.")
        results: list[dict] = []
        seen: set = set()
        for statement in statements:
            if not isinstance(statement, Rule):  # pragma: no cover
                raise WorkspaceError("query expects a body formula")
            compiled = compile_rule(statement, self.me, self.builtins)
            for bindings in solve(tuple(compiled.body), self.db, self.context):
                row = {
                    name: value for name, value in bindings.items()
                    if not name.startswith("_")
                }
                key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
                if key not in seen:
                    seen.add(key)
                    results.append(row)
        return results

    def holds(self, source: str) -> bool:
        return bool(self.query(source))

    def point_query(self, query: Union[str, Atom]) -> set:
        """Answer one atom query, preferring the cached magic-sets program.

        ``query`` is a single atom whose constant arguments are the bound
        ones (e.g. ``'access("carol","f1",M)'``); the result is the set of
        matching fact tuples.  This is the online-serving entry point: a
        bound query over a derived predicate runs the goal-directed
        magic-sets rewrite on a COW overlay — and because the rewrite is
        cached per binding *shape* (:mod:`repro.datalog.magic`), repeated
        point queries reuse the normalized program and its join plans
        (``EvalStats.magic_cache_hits`` grows instead of replanning).

        Queries the rewrite cannot serve — EDB-only predicates, unbound
        queries, or predicates whose reachable rule set uses negation or
        aggregation — fall back to reading the incrementally maintained
        database directly, which is always bit-identical to the fixpoint.
        """
        if isinstance(query, str):
            statements = parse_statements(f"{query.rstrip().rstrip('.')}.")
            if len(statements) != 1 or not isinstance(statements[0], Rule) \
                    or not statements[0].is_fact():
                raise WorkspaceError("point_query expects a single atom")
            atom = statements[0].heads[0]
        else:
            atom = query
        from ..meta.quote import resolve_me_rule
        resolved = resolve_me_rule(Rule((atom,)), self.me).heads[0]
        pred = resolved.pred
        bound = [(i, term.value)
                 for i, term in enumerate(resolved.all_args)
                 if isinstance(term, Constant)]

        def matching(facts) -> set:
            return {fact for fact in facts
                    if all(fact[i] == value for i, value in bound)}

        rules = self._magic_rules_for(pred)
        if rules is None or not bound:
            return matching(self.db.tuples(pred))
        from ..datalog.magic import query_magic
        answers = query_magic(rules, self.db, resolved, self.context)
        # A head predicate may also hold directly asserted EDB facts the
        # adorned program never re-derives; union them back in so the
        # answer equals a fixpoint read exactly.
        base = self.edb.get(pred)
        if base:
            answers |= matching(base)
        return answers

    def _magic_rules_for(self, pred: str) -> Optional[list]:
        """Engine rules reachable from ``pred``, or ``None`` if the magic
        rewrite cannot serve it (no rules / negation / aggregation).

        The returned list holds the *live* activated :class:`EngineRule`
        objects in activation order, so its identity signature — the
        magic program cache's key — is stable across repeated queries.
        """
        by_head: dict[str, list] = {}
        for rule in self._all_engine_rules():
            by_head.setdefault(rule.head.pred, []).append(rule)
        if pred not in by_head:
            return None
        reachable: list = []
        seen: set[str] = set()
        frontier = [pred]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for rule in by_head[current]:
                if rule.agg is not None:
                    return None
                for item in rule.body:
                    if isinstance(item, Literal):
                        if item.negated:
                            return None
                        callee = item.atom.pred
                        if callee in by_head and callee not in seen:
                            frontier.append(callee)
                reachable.append(rule)
        return reachable

    def active_refs(self) -> set:
        return set(self._activated)

    def rule_text(self, ref: RuleRef) -> str:
        return self.registry.canonical_text(ref)

    def typecheck(self) -> list:
        """Static type issues for every active rule (section 3.2).

        Returns :class:`repro.workspace.typecheck.TypeIssue` warnings;
        the dynamic constraints remain authoritative.
        """
        from .typecheck import typecheck_program

        rules = [
            compile_rule(self.registry.rule_of(ref), principal=None,
                         builtins=self.builtins)
            for ref in self._activated
        ]
        return typecheck_program(rules, self.catalog)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self):
        """Group mutations; fixpoint + constraint check happen at exit.

        Nested transactions flatten into the outermost one.  On a
        constraint violation (or any error) the workspace state rolls back
        to the transaction start; the audit log keeps the rejection event.
        """
        if self._txn_depth == 0:
            self._txn_snapshot = self._take_snapshot()
            self._txn_fresh = {}
            self._txn_deleted = {}
            self._txn_edb_owned = set()
        self._txn_depth += 1
        try:
            yield self
        except Exception:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._rollback()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                try:
                    self._commit()
                except Exception:
                    self._rollback()
                    raise

    def _take_snapshot(self) -> _Snapshot:
        """O(changed state), not O(total facts): the derived database is a
        COW snapshot and the EDB dict is shared shallowly — per-pred fact
        sets are copied lazily by :meth:`_edb_for_write` on first mutation.
        """
        from dataclasses import replace
        catalog_copy = {
            name: replace(info, arg_types=list(info.arg_types))
            for name, info in self.catalog._preds.items()
        }
        return _Snapshot(
            db=self.db.snapshot(),
            edb=dict(self.edb),
            activated=dict(self._activated),
            constraints=list(self.constraints),
            reified=set(self._reified),
            catalog=catalog_copy,
        )

    def _edb_for_write(self, pred: str) -> set:
        """The EDB fact set for ``pred``, unshared from the txn snapshot."""
        base = self.edb.get(pred)
        if base is None:
            base = set()
            self.edb[pred] = base
            self._txn_edb_owned.add(pred)
        elif pred not in self._txn_edb_owned:
            base = set(base)
            self.edb[pred] = base
            self._txn_edb_owned.add(pred)
        return base

    def _rollback(self) -> None:
        snapshot = self._txn_snapshot
        if snapshot is None:  # pragma: no cover - defensive
            return
        # restore() keeps the live Relation objects (and their indexes)
        # wherever the transaction never touched them.
        self.db.restore(snapshot.db)
        self.edb = snapshot.edb
        self._activated = snapshot.activated
        if (len(self.constraints) != len(snapshot.constraints)
                or any(live is not saved for live, saved
                       in zip(self.constraints, snapshot.constraints))):
            # Constraints added in the rolled-back txn are being freed;
            # their identity-keyed plans must not survive id() reuse.
            self._constraint_plans = {}
        self.constraints = snapshot.constraints
        self._reified = snapshot.reified
        self.catalog._preds = snapshot.catalog
        self._strata = None
        self._pending_template_refs = []
        self._txn_snapshot = None
        self._txn_fresh = {}
        self._txn_deleted = {}
        self._txn_edb_owned = set()

    def _commit(self) -> None:
        deleted = self._txn_deleted
        self._txn_deleted = {}
        if deleted:
            self._handle_deletions(deleted)
        self._run_loop()
        violations = check_constraints(self.constraints, self.db, self.context,
                                       plan_cache=self._constraint_plans)
        if violations:
            violation = violations[0]
            self.audit.append(AuditEvent("constraint_violation", {
                "workspace": self.name,
                "constraint": repr(violation.constraint),
                "bindings": dict(violation.bindings),
                "total": len(violations),
            }))
            raise ConstraintViolation(violation.constraint, violation.bindings)
        self._txn_snapshot = None

    # ------------------------------------------------------------------
    # Internals: assertion, reification, activation
    # ------------------------------------------------------------------

    def _assert_edb(self, pred: str, fact: tuple) -> bool:
        if self._txn_snapshot is None:
            raise WorkspaceError("EDB mutation outside a transaction")
        base = self.edb.get(pred)
        if base is not None and fact in base:
            return False
        base = self._edb_for_write(pred)
        base.add(fact)
        if self.db.add(pred, fact):
            self._txn_fresh.setdefault(pred, set()).add(fact)
            if self.provenance is not None:
                self.provenance.record_edb(pred, fact)
        for value in fact:
            for ref in self.registry.refs_in_value(value):
                self._ensure_reified(ref)
        return True

    def _ensure_reified(self, ref: RuleRef) -> None:
        if ref in self._reified:
            return
        self._reified.add(ref)
        for pred, fact in self.registry.meta_facts(ref):
            self._assert_edb(pred, fact)

    def _instantiate_quote(self, quote: Quote, bindings: dict):
        from ..datalog.terms import PatternValue
        from ..meta.registry import _substitute_pattern, is_open_fact_pattern

        def eval_with_context(term, local_bindings):
            return eval_term(term, local_bindings, self.context)

        substituted = _substitute_pattern(quote.pattern, bindings,
                                          eval_with_context)
        if is_open_fact_pattern(substituted):
            # Still a pattern after substitution: yield it as a value
            # (pull requests, delegated permission patterns) rather than
            # generating a non-ground rule.
            return PatternValue(substituted)
        ref = self.registry.instantiate_template(quote, bindings, eval_with_context)
        self._pending_template_refs.append(ref)
        return ref

    def _edb_facts(self, pred: str) -> set:
        return self.edb.get(pred, set())

    def _compile_ref(self, ref: RuleRef) -> list[EngineRule]:
        from ..datalog.runtime import check_rule_safety

        rule = self.registry.rule_of(ref)
        compiled = compile_rule(rule, principal=None, builtins=self.builtins)
        check_rule_safety(compiled, self.builtins)
        self.catalog.observe_rule(compiled)
        engine_rules = normalize_rules([compiled])
        label = compiled.label or f"r{ref.rid}"
        for engine_rule in engine_rules:
            engine_rule.label = label
        return engine_rules

    def _all_engine_rules(self) -> list[EngineRule]:
        rules: list[EngineRule] = []
        for engine_rules in self._activated.values():
            rules.extend(engine_rules)
        return rules

    def _volatile_rules(self) -> list[EngineRule]:
        from ..datalog.terms import BuiltinCall as _BuiltinCall

        volatile: list[EngineRule] = []
        for engine_rule in self._all_engine_rules():
            for item in engine_rule.body:
                if isinstance(item, _BuiltinCall):
                    definition = self.builtins.lookup(item.name)
                    if definition is not None and definition.volatile:
                        volatile.append(engine_rule)
                        break
        return volatile

    def _current_strata(self) -> list:
        if self._strata is None:
            self._strata = stratify(self._all_engine_rules())
        return self._strata

    def _sync_predicate_facts(self) -> None:
        """Mirror catalog-defined predicates into the meta-model.

        Paper section 3.3: ``predicate`` "contains a unique entry for each
        predicate defined in the workspace (including predicate)".
        Reification covers predicates appearing in interned rules; this
        covers the ones only declarations or facts mention, plus the
        populated meta relations themselves ("including predicate").
        """
        from ..meta.model import ALL_META_PREDS

        names = set(self.catalog.names()) | {"predicate", "pname"}
        for meta_pred in ALL_META_PREDS | {ACTIVE_PRED}:
            relation = self.db.relations.get(meta_pred)
            if relation is not None and len(relation):
                names.add(meta_pred)
        for name in sorted(names):
            self._assert_edb("predicate", (name,))
            self._assert_edb("pname", (name, name))

    def _run_loop(self) -> None:
        """The activation/propagation loop: run until quiescent."""
        self._sync_predicate_facts()
        fresh = self._txn_fresh
        self._txn_fresh = {}
        for _ in range(self.max_activation_rounds):
            progressed = False

            # 1. Activate rules newly present in `active`.
            active_now: set[RuleRef] = set()
            for fact in self.db.tuples(ACTIVE_PRED):
                if fact and isinstance(fact[0], RuleRef):
                    active_now.add(fact[0])
            new_refs = [ref for ref in active_now if ref not in self._activated]
            new_rules: list[EngineRule] = []
            for ref in new_refs:
                self._ensure_reified(ref)
                engine_rules = self._compile_ref(ref)
                self._activated[ref] = engine_rules
                new_rules.extend(engine_rules)
                progressed = True
            if new_rules:
                self._strata = None

            # 2. Fully apply the new rules once; their results seed deltas.
            for engine_rule in new_rules:
                if engine_rule.agg is not None:
                    continue  # aggregates are evaluated inside strata
                derived = apply_rule(engine_rule, self.db, self.context,
                                     provenance=self.provenance,
                                     stats=self.stats)
                for fact in derived:
                    if self.db.add(engine_rule.head.pred, fact):
                        fresh.setdefault(engine_rule.head.pred, set()).add(fact)
            if new_rules and any(r.agg is not None for r in new_rules):
                # Aggregate rules need their stratum machinery; easiest
                # correct seed is a full propagation pass over their inputs.
                for engine_rule in new_rules:
                    if engine_rule.agg is None:
                        continue
                    for pred in engine_rule.body_preds():
                        facts = self.db.tuples(pred)
                        if facts:
                            fresh.setdefault(pred, set()).update(facts)

            # 3. Drain template-created rules (their meta facts are EDB).
            pending = self._pending_template_refs
            self._pending_template_refs = []
            for ref in pending:
                self._ensure_reified(ref)
                progressed = True

            # Meta facts asserted by reification land in _txn_fresh.
            for pred, facts in self._txn_fresh.items():
                fresh.setdefault(pred, set()).update(facts)
            self._txn_fresh = {}

            # 3b. Volatile-builtin rules (their dependencies are hidden
            # from the delta machinery) re-run in full each round.
            for engine_rule in self._volatile_rules():
                derived = apply_rule(engine_rule, self.db, self.context,
                                     provenance=self.provenance,
                                     stats=self.stats)
                for fact in derived:
                    if self.db.add(engine_rule.head.pred, fact):
                        fresh.setdefault(engine_rule.head.pred, set()).add(fact)

            # 4. Propagate all fresh facts through the strata.
            if fresh:
                added = propagate_insertions(
                    self._current_strata(), self.db, self.context, fresh,
                    edb_facts=self._edb_facts, provenance=self.provenance,
                    stats=self.stats,
                )
                progressed = True
                fresh = {}
                for pred, facts in added.items():
                    for fact in facts:
                        for value in fact:
                            for ref in self.registry.refs_in_value(value):
                                self._ensure_reified(ref)
                for pred, facts in self._txn_fresh.items():
                    fresh.setdefault(pred, set()).update(facts)
                self._txn_fresh = {}

            if not progressed and not fresh and not self._pending_template_refs:
                return
        raise ActivationLimitError(
            f"workspace {self.name!r} did not quiesce within "
            f"{self.max_activation_rounds} activation rounds"
        )

    def _handle_deletions(self, deleted: FactSet) -> None:
        """DRed the deletions; deactivations force a full recompute."""
        active_before = set(self._activated)
        propagate_deletions(self._current_strata(), self.db, self.context,
                            deleted, edb_facts=self._edb_facts,
                            provenance=self.provenance, stats=self.stats)
        active_now = {
            fact[0] for fact in self.db.tuples(ACTIVE_PRED)
            if fact and isinstance(fact[0], RuleRef)
        }
        deactivated = active_before - active_now
        if deactivated:
            for ref in deactivated:
                self._activated.pop(ref, None)
            self._strata = None
            self._full_recompute()

    def _full_recompute(self) -> None:
        """Reset all derived state and re-derive from the EDB."""
        self.stats.full_recomputes += 1
        self.db = Database()
        for pred, facts in self.edb.items():
            for fact in facts:
                self.db.add(pred, fact)
        if self.provenance is not None:
            self.provenance.derivations.clear()
            for pred, facts in self.edb.items():
                for fact in facts:
                    self.provenance.record_edb(pred, fact)
        self._activated = {}
        self._strata = None
        # Seed propagation with every EDB fact; the activation loop will
        # re-activate rules from the `active` relation as it goes.
        for pred, facts in self.edb.items():
            if facts:
                self._txn_fresh.setdefault(pred, set()).update(facts)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Workspace({self.name!r}, {self.db.total_facts()} facts, "
                f"{len(self._activated)} active rules)")
