"""``repro check``: formats, exit codes, .py extraction, placement flags."""

import io
import json

import pytest

from repro.analysis.cli import extract_programs, looks_like_program, main
from repro.cli import main as repro_main


def run(args):
    out = io.StringIO()
    code = main(args, out=out)
    return code, out.getvalue()


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.dl"
    path.write_text("p(X,Y) <- q(X).\n")
    return path


@pytest.fixture
def warn_file(tmp_path):
    path = tmp_path / "warn.dl"
    path.write_text("r(X) <- s(X), !t(X,Y).\ns(1). t(1,2).\n")
    return path


def test_error_exits_one_with_caret(bad_file):
    code, text = run([str(bad_file)])
    assert code == 1
    assert f"{bad_file}:1:1: error [R001]" in text
    assert "  ^" in text  # caret excerpt under the offending line
    assert "1 error(s)" in text


def test_warnings_pass_unless_strict(warn_file):
    code, _ = run([str(warn_file)])
    assert code == 0
    code, text = run(["--strict", str(warn_file)])
    assert code == 1
    assert "[R002]" in text


def test_json_format_is_schema_versioned(bad_file):
    code, text = run(["--format", "json", str(bad_file)])
    assert code == 1
    report = json.loads(text)
    assert report["schema"] == "repro-check/v1"
    assert report["ok"] is False
    assert report["summary"]["errors"] == 1
    [diag] = [d for d in report["diagnostics"] if d["code"] == "R001"]
    assert diag["file"] == str(bad_file)
    assert diag["line"] == 1 and diag["column"] == 1


def test_python_file_extraction_shifts_spans(tmp_path):
    host = tmp_path / "host.py"
    host.write_text(
        '"""doc"""\n'
        "POLICY = \"\"\"\n"
        "p(X,Y) <- q(X).\n"
        "\"\"\"\n"
        "def setup(ws):\n"
        "    ws.load('r(1,2).')\n"
    )
    code, text = run([str(host)])
    assert code == 1
    # the program's line 2 lands on the file's line 3
    assert f"{host}:3:1: error [R001]" in text


def test_extract_programs_heuristics():
    source = (
        "RULES = 'p(X) <- q(X).'\n"
        "lowercase = 'ignored(X) <- y(X).'\n"
        "note = 'not a program'\n"
        "ws.load('f(1).')\n"
        "ws.assert_fact('says', ('a', 'b'))\n"
    )
    programs = extract_programs(source)
    assert [(label, text) for label, _, text in programs] == [
        ("RULES", "p(X) <- q(X)."),
        ("load", "f(1)."),
    ]
    assert looks_like_program("access(P) :- good(P).")
    assert not looks_like_program("alice")
    assert not looks_like_program("ends with period.")


def test_paper_listings_flag_is_strict_clean():
    code, text = run(["--strict", "--paper-listings"])
    assert code == 0
    assert "0 error(s), 0 warning(s)" in text


def test_usage_errors_exit_two(tmp_path):
    assert run([])[0] == 2                      # no input
    assert run(["missing.dl"])[0] == 2          # no such file
    assert run(["--partition", "a=0"])[0] == 2  # placement without --nodes
    bad_pass = tmp_path / "p.dl"
    bad_pass.write_text("p(1).")
    assert run(["--passes", "vibes", str(bad_pass)])[0] == 2


def test_placement_dry_run_flags(tmp_path):
    program = tmp_path / "join.dl"
    program.write_text("j(X,Y) <- a(X,K), b(Y,Z).\n")
    code, text = run(["--nodes", "2", "--partition", "a=0",
                      "--partition", "b", str(program)])
    assert code == 1
    assert "[R501]" in text
    # replicating one side makes the join co-locatable
    code, _ = run(["--nodes", "2", "--partition", "a=0",
                   "--replicate", "b", str(program)])
    assert code == 0


def test_dispatch_from_top_level_cli(bad_file, capsys):
    assert repro_main(["check", str(bad_file)]) == 1
    assert "[R001]" in capsys.readouterr().out


def test_pragma_suppression_in_program_and_py_levels(tmp_path):
    path = tmp_path / "emb.py"
    path.write_text(
        'PROGRAM = """\n'
        'z(X) <- w(X,Y), v(X). %# check: ignore[R302]\n'
        'w(1,2). v(1).\n'
        '"""\n'
        'OTHER = "a(X) <- b(X,Y), c(X).\\nb(1,2). c(1)."'
        '  # check: ignore[R302]\n')
    code, text = run(["--format", "json", str(path)])
    report = json.loads(text)
    assert code == 0
    assert report["summary"]["suppressed"] == 2
    assert [d["code"] for d in report["diagnostics"]] == []
    # both levels land in the suppressed list, relocated to the .py file
    assert [(d["code"], d["line"]) for d in report["suppressed"]] == [
        ("R302", 2), ("R302", 5)]


def test_pragma_must_name_the_right_code(tmp_path):
    path = tmp_path / "wrong.dl"
    path.write_text("p(X) <- q(X,Y), r(X). %# check: ignore[R301]\n"
                    "q(1,2). r(1).\n")
    code, text = run(["--format", "json", str(path)])
    report = json.loads(text)
    assert report["summary"]["suppressed"] == 0
    assert "R302" in [d["code"] for d in report["diagnostics"]]


def test_suppressed_count_in_text_rendering(tmp_path):
    path = tmp_path / "sup.dl"
    path.write_text("p(X) <- q(X,Y), r(X). %# check: ignore[]\n"
                    "q(1,2). r(1).\n")
    code, text = run([str(path)])
    assert code == 0
    assert "1 suppressed" in text


def test_python_report_is_sorted_regardless_of_extraction_order(tmp_path):
    # the later call site embeds a program whose finding lands *above*
    # the ALL_CAPS assignment's finding; the report must still be in
    # (file, line, col, code) order.
    path = tmp_path / "order.py"
    path.write_text(
        'LATE = "p(X) <- q(X,Y), r(X).\\nq(1,2). r(1)."\n'
        '\n'
        'def setup(ws):\n'
        '    ws.load("a(X) <- b(X,Y), c(X).\\nb(1,2). c(1).")\n')
    code, text = run(["--format", "json", str(path)])
    report = json.loads(text)
    lines = [d["line"] for d in report["diagnostics"]]
    assert lines == sorted(lines)
    assert len(lines) >= 2
