"""The paper-listing corpus must stay strict-clean under the analyzer."""

import pytest

from repro.analysis import analyze_source
from repro.analysis.corpus import (
    BINDER_LISTINGS,
    LISTINGS,
    SENDLOG_LISTINGS,
    iter_corpus,
)


def test_corpus_covers_all_surfaces():
    entries = list(iter_corpus())
    dialects = {dialect for _, dialect, _ in entries}
    assert dialects == {"core", "binder", "sendlog"}
    assert len(entries) == (len(LISTINGS) + len(BINDER_LISTINGS)
                            + len(SENDLOG_LISTINGS))


@pytest.mark.parametrize("name,dialect,source",
                         list(iter_corpus()),
                         ids=[n for n, _, _ in iter_corpus()])
def test_listing_is_strict_clean(name, dialect, source):
    """No errors, no warnings — info findings (benign singletons) allowed."""
    diags = analyze_source(source, file=name, dialect=dialect)
    problems = [d for d in diags if d.severity in ("error", "warning")]
    assert not problems, [f"{d.location()}: [{d.code}] {d.message}"
                          for d in problems]
