"""Dataflow engine and its three pass families: exact codes and spans.

Mirrors ``test_passes.py``: every new family (R60x authority taint, R61x
delegation depth, R70x static cost) must fire with a stable code and a
precise ``file:line:col`` span on a program seeded with exactly that
defect — and must stay silent on the says/delegation machinery the
runtime installs and on the paper-listing corpus.
"""

from repro.analysis import analyze_source
from repro.analysis.cli import build_placement
from repro.analysis.dataflow import (
    CardinalityLattice,
    FlowEdge,
    FlowEquation,
    TaintLattice,
    is_auth_sink,
    is_delegation_pred,
    solve,
)


def check(source, **kwargs):
    return analyze_source(source, file="t.dl", **kwargs)


def by_code(diags, code):
    return [d for d in diags if d.code == code]


def only(diags, code):
    found = by_code(diags, code)
    assert len(found) == 1, f"expected one {code}, got {diags}"
    return found[0]


# -- the monotone framework itself ------------------------------------------

def test_solve_propagates_taint_through_a_chain():
    lattice = TaintLattice()
    equations = [
        FlowEquation("a", (FlowEdge(seed=frozenset({"unattributed"})),),
                     kind="seed"),
        FlowEquation("b", (FlowEdge(pred="a"),)),
        FlowEquation("c", (FlowEdge(pred="b"),
                           FlowEdge(seed=frozenset({"edb"})))),
    ]
    solution = solve(equations, lattice)
    assert solution.value("a") == frozenset({"unattributed"})
    assert solution.value("b") == frozenset({"unattributed"})
    assert solution.value("c") == frozenset({"unattributed", "edb"})
    assert not solution.unstable  # powerset lattice converges exactly


def test_solve_reaches_fixpoint_on_a_cycle():
    lattice = TaintLattice()
    equations = [
        FlowEquation("p", (FlowEdge(pred="q"),
                           FlowEdge(seed=frozenset({"attributed"})),)),
        FlowEquation("q", (FlowEdge(pred="p"),)),
    ]
    solution = solve(equations, lattice)
    assert solution.value("p") == solution.value("q") == \
        frozenset({"attributed"})
    assert not solution.unstable


def test_solve_widens_nonconverging_components():
    lattice = CardinalityLattice(cap=1000.0)
    equation = FlowEquation("p", (FlowEdge(pred="p"),))

    def transfer(eq, values):
        return values.get("p", 0.0) * 2 + 1  # strictly growing

    solution = solve([equation], lattice, transfer=transfer, max_rounds=4)
    assert solution.value("p") == 1000.0  # widened to the cap
    assert "p" in solution.unstable


def test_sink_and_delegation_heuristics():
    assert is_auth_sink("authorize")
    assert is_auth_sink("mayRead")
    assert is_auth_sink("accessControl")
    assert not is_auth_sink("maybe")  # "may" needs an uppercase follower
    assert not is_auth_sink("route")
    assert is_delegation_pred("delegates")
    assert is_delegation_pred("inferredDelDepth")
    assert not is_delegation_pred("delWidth")  # width is not a depth chain
    assert not is_delegation_pred("reach")


# -- R60x: authority flow ---------------------------------------------------

def test_r601_unattributed_input_reaches_authorization():
    source = ("authorize(P,O) <- active(R), request(P,O).\n"
              "active(R) <- says(_,me,R).")
    d = only(check(source), "R601")
    assert d.severity == "warning"
    assert d.location() == "t.dl:1:1"
    assert d.pred == "authorize"
    # the witness chain names the source and the path
    assert "unattributed says import -> active -> authorize" in d.message


def test_r601_fires_on_plain_read_of_shipped_predicate():
    # cred is only ever says-shipped (R401 territory); reading it plainly
    # feeds the decision from unattributed input too.
    source = ("ok(U,C) <- says(U,me,[| cred(C). |]).\n"
              "mayRead(U,F) <- cred(U), file(F).\n"
              "file(1).")
    diags = check(source)
    d = only(diags, "R601")
    assert d.pred == "mayRead"
    assert by_code(diags, "R401")  # the local symptom is still reported


def test_r602_says_export_derived_from_unattributed_input():
    source = ('says(me,P,[| grant(U). |]) <- active(U), peer(P).\n'
              'active(U) <- says(_,me,[| activeReq(U). |]).\n'
              'peer("bob").')
    d = only(check(source), "R602")
    assert d.severity == "warning"
    assert d.location() == "t.dl:1:1"
    assert d.pred == "grant"
    assert "unattributed says import -> active -> grant" in d.message


def test_r603_decision_ignores_every_speaker():
    source = ("authorize(P,O) <- owner(P,O).\n"
              "heard(R) <- says(U,me,R).\n"
              "owner(1,2).")
    d = only(check(source), "R603")
    assert d.severity == "info"
    assert d.location() == "t.dl:1:1"
    assert d.pred == "authorize"


def test_attributed_authorization_is_clean():
    source = ("authorize(P,O) <- active(R), owner(P,O).\n"
              'active(R) <- says("alice",me,R).\n'
              "owner(1,2).")
    diags = check(source)
    assert not [d for d in diags if d.code.startswith("R6")]


# -- R61x: delegation depth -------------------------------------------------

def test_r611_unbounded_delegation_recursion():
    d = only(check("delegates(U1,U3,P) <- delegates(U1,U2,P), "
                   "delegates(U2,U3,P)."), "R611")
    assert d.severity == "warning"
    assert d.location() == "t.dl:1:1"
    assert d.pred == "delegates"
    assert "delegates -> delegates" in d.message
    assert "dd2b" in d.message  # points at the paper's own fix


def test_r612_guard_that_never_decreases():
    source = ("delDepth(U1,U3,P,N) <- delDepth(U1,U2,P,N), "
              "delDepth(U2,U3,P,N), N > 0.")
    d = only(check(source), "R612")
    assert d.severity == "warning"
    assert d.location() == "t.dl:1:1"
    assert "never decreases" in d.message


def test_r613_cycle_crossing_the_says_boundary():
    source = (
        "delegates(A,C,P) <- says(_,me,[| delegates(A,B,P). |]), "
        "link(B,C).\n"
        "says(me,P2,[| delegates(A,C,P). |]) <- delegates(A,B,P), "
        "link(B,C), peer(P2).\n"
        'link(1,2). peer("bob").')
    diags = check(source)
    d = only(diags, "R613")
    assert d.severity == "warning"
    assert d.location() == "t.dl:1:1"
    assert "says boundary" in d.message
    assert not by_code(diags, "R611")  # R613 subsumes, no double report


def test_dd2b_style_decreasing_guard_is_clean():
    # the paper's own fix: guard N > 0, head rewrites N to N - 1
    source = ("delDepth(U1,U3,P,N) <- delDepth(U1,U2,P,M), "
              "link(U2,U3), M > 0, N = M - 1.\n"
              "link(1,2).")
    diags = check(source)
    assert not [d for d in diags if d.code.startswith("R61")]


# -- R70x: static cost ------------------------------------------------------

def test_r701_cartesian_explosion():
    d = only(check("blowup(X,Y,Z,W) <- pair(X,Y), other(Z,W)."), "R701")
    assert d.severity == "warning"
    assert d.location() == "t.dl:1:31"  # the literal with no shared var
    assert d.pred == "blowup"
    assert "~1e+08" in d.message


def test_r703_small_cartesian_is_info_only():
    source = ("m(X,Y) <- a(X), b(Y).\n"
              "a(X) -> mode(X).\n"
              "b(Y) -> mode(Y).")
    diags = check(source)
    d = only(diags, "R703")
    assert d.severity == "info"
    assert d.location() == "t.dl:1:17"
    assert not by_code(diags, "R701")  # 8 * 8 rows is not an explosion


def test_r702_and_r704_on_partitioned_recursion():
    placement = build_placement(4, ["edge=0"], [])
    source = ("reach(X,Y) <- edge(X,Y).\n"
              "reach(X,Y) <- reach(X,Z), edge(Z,Y).")
    diags = check(source, placement=placement, passes=("cost",))
    d702 = only(diags, "R702")
    assert d702.severity == "warning"
    assert d702.location() == "t.dl:2:1"
    assert "'edge'" in d702.message and "4-node" in d702.message
    d704 = only(diags, "R704")
    assert d704.severity == "info"
    assert d704.pred == "reach"


def test_cost_pass_without_placement_skips_r702():
    source = ("reach(X,Y) <- edge(X,Y).\n"
              "reach(X,Y) <- reach(X,Z), edge(Z,Y).")
    diags = check(source, passes=("cost",))
    assert not by_code(diags, "R702")


def test_shared_variable_join_is_clean():
    diags = check("j(X,Z) <- l(X,Y), r(Y,Z).\nl(1,2). r(2,3).")
    assert not [d for d in diags if d.code.startswith("R7")]


# -- the installed machinery must stay silent -------------------------------

def test_machinery_fragments_are_clean_of_new_codes():
    from repro.core import delegation, says

    fragments = [
        says.SAYS1,
        says.EXP2,
        says.DECLARATIONS,
        says.HEARD_DECLARATION,
        delegation.SPEAKS_FOR_TEMPLATE.format(who="alice"),
        delegation.DELEGATION_RULES,
        delegation.DEPTH_RULES,
        delegation.WIDTH_RULES,
    ]
    for fragment in fragments:
        diags = analyze_source(fragment)
        new = [d for d in diags
               if d.code.startswith("R6") or d.code.startswith("R7")]
        assert not new, f"{fragment[:40]!r}: {new}"


def test_corpus_stays_strict_clean_with_all_passes():
    from repro.analysis.corpus import iter_corpus

    for name, dialect, source in iter_corpus():
        diags = analyze_source(source, file=name, dialect=dialect)
        noisy = [d for d in diags if d.severity != "info"]
        assert not noisy, f"{name}: {noisy}"


# -- R302 underscore exemption (regression pins) ----------------------------

def test_r302_exempts_underscore_prefixed_singletons():
    diags = check("p(X) <- q(X,_Ignored), r(X).\nq(1,2). r(1).")
    assert not by_code(diags, "R302")


def test_r302_still_fires_on_plain_singletons():
    d = only(check("p(X) <- q(X,Y), r(X).\nq(1,2). r(1)."), "R302")
    assert "Y" in d.message


def test_r302_underscore_exemption_holds_across_dialects():
    binder = "p(X) :- q(X,_Skip), r(X)."
    assert not by_code(check(binder, dialect="binder"), "R302")
    sendlog = "At alice:\n  p(X) <- q(X,_Skip), r(X).\n"
    assert not by_code(check(sendlog, dialect="sendlog"), "R302")
